#!/usr/bin/env bash
# The gate every change must pass (see README, "Performance tracking").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Static pass: determinism/safety lint over every crate (see DESIGN §11).
# Writes LINT_report.json; exits non-zero on any unsuppressed violation.
cargo run --release -p ppc-lint -- --workspace --json

# Dynamic pass: same seed must yield bit-identical journals and traces
# across worker-pool widths — the replay-determinism contract.
cargo run --release -p ppc-bench --bin determinism_gate

cargo run --release -p ppc-bench --bin ext_faults -- --smoke
