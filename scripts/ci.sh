#!/usr/bin/env bash
# The gate every change must pass (see README, "Performance tracking").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo run --release -p ppc-bench --bin ext_faults -- --smoke
