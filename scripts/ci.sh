#!/usr/bin/env bash
# The gate every change must pass (see README, "Performance tracking").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
