#!/usr/bin/env bash
# The gate every change must pass (see README, "Performance tracking").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Static pass: determinism/safety lint over every crate (see DESIGN §11
# and §16 for the call-graph taint pass). Writes LINT_report.json; exits
# non-zero on any unsuppressed violation, and --deny turns stale allow
# directives into errors too. The runtime line lands in the CI log via
# the tool's stderr (`lint-runtime: ...`).
cargo run --release -p ppc-lint -- --workspace --json --deny
grep -q '"schema": "ppc-lint/v2"' LINT_report.json \
    || { echo "LINT_report.json is not ppc-lint/v2" >&2; exit 1; }

# Dynamic pass: same seed must yield bit-identical journals, power
# traces, span trees and metrics registries across worker-pool widths —
# the replay-determinism contract.
cargo run --release -p ppc-bench --bin determinism_gate

# What-if service smoke: a short query stream against a snapshot of the
# paper-scale cluster must replay bit-identically (answers and engine
# fingerprints) when served twice.
cargo run --release -p ppc-bench --bin whatif_serve -- --smoke >/dev/null

cargo run --release -p ppc-bench --bin ext_faults -- --smoke

# Bench smoke + perf guard: quick per-tick medians, then fail if the
# managed 128-node step regressed >25% vs the committed baseline (the
# guard takes the best of three medians to ride out shared-box noise).
cargo run --release -p ppc-bench --bin bench_ppc -- --smoke --guard BENCH_ppc.json >/dev/null

# Observability smoke: a faulted managed run must emit a schema-valid
# JSONL trace stream through --trace-out (see DESIGN §12) and a
# schema-valid health stream through --health-out (see DESIGN §17).
trace_tmp="$(mktemp -t ppc-trace.XXXXXX.jsonl)"
health_tmp="$(mktemp -t ppc-health.XXXXXX.jsonl)"
trap 'rm -f "$trace_tmp" "$health_tmp"' EXIT
./target/release/ppc run --nodes 8 --provision 0.6 --faults 6 \
    --training-mins 1 --measure-mins 5 --trace-out "$trace_tmp" \
    --health-out "$health_tmp" >/dev/null
cargo run --release -p ppc-obs --bin validate_trace -- "$trace_tmp"
cargo run --release -p ppc-obs --bin validate_health -- "$health_tmp"
