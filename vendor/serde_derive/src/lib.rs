//! Offline stand-in for `serde_derive`.
//!
//! Generates `to_value`/`from_value` impls for the vendored value-tree serde
//! model. Supports the shapes this workspace actually uses: named-field
//! structs, single-field (newtype) tuple structs, and enums with unit /
//! named-field / newtype variants, plus the `#[serde(skip)]` and
//! `#[serde(from = "Type")]` attributes. Anything else panics at compile
//! time with a clear message so the gap is obvious rather than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemShape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: ItemShape,
    /// `#[serde(from = "Type")]` on the container, if present.
    from_type: Option<String>,
}

/// Attributes found while scanning: serde helper knobs we understand.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    from_type: Option<String>,
}

fn parse_serde_attr_group(stream: TokenStream, out: &mut SerdeAttrs) {
    // Content of the parens in `#[serde(...)]`: e.g. `skip` or `from = "X"`.
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "skip" || word == "skip_serializing" || word == "skip_deserializing" {
                    out.skip = true;
                    i += 1;
                } else if word == "from" {
                    // expect `= "Type"`
                    if let (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        if p.as_char() == '=' {
                            let raw = lit.to_string();
                            out.from_type = Some(raw.trim_matches('"').to_string());
                        }
                    }
                    i += 3;
                } else {
                    panic!("serde_derive stand-in: unsupported serde attribute `{word}`");
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive stand-in: unexpected token in serde attr: {other}"),
        }
    }
}

/// Consume attributes at `toks[*i]`; returns serde knobs found.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                            (inner.first(), inner.get(1))
                        {
                            if id.to_string() == "serde" {
                                parse_serde_attr_group(args.stream(), &mut attrs);
                            }
                        }
                        *i += 2;
                        continue;
                    }
                }
                panic!("serde_derive stand-in: `#` not followed by bracket group");
            }
            _ => break,
        }
    }
    attrs
}

/// Skip a `pub` / `pub(crate)` visibility marker if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse named fields from the stream of a `{ ... }` group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stand-in: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stand-in: expected `:` after field name, got {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    fields
}

/// Count top-level (comma-separated) elements of a tuple field list.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut arity = 1;
    let mut saw_trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == toks.len() {
                    saw_trailing_comma = true;
                } else {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stand-in: expected variant name, got {other}"),
        };
        i += 1;
        let mut shape = VariantShape::Unit;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    shape = VariantShape::Named(parse_named_fields(g.stream()));
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    let arity = tuple_arity(g.stream());
                    if arity != 1 {
                        panic!(
                            "serde_derive stand-in: tuple variant `{name}` has arity {arity}; \
                             only newtype variants are supported"
                        );
                    }
                    shape = VariantShape::Newtype;
                    i += 1;
                }
                _ => {}
            }
        }
        // Skip an optional `= discriminant` then the trailing comma.
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive stand-in: tuple struct `{name}` has arity {arity}; \
                         only newtype structs are supported"
                    );
                }
                ItemShape::NewtypeStruct
            }
            _ => panic!("serde_derive stand-in: unit struct `{name}` is not supported"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive stand-in: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    };
    Item {
        name,
        shape,
        from_type: attrs.from_type,
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                 ::serde::Value::Object(entries)"
            )
        }
        ItemShape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemShape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(x) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(x))]),\n"
                    )),
                    VariantShape::Named(fields) => {
                        let bind: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(inner))])\n}},\n",
                            binds = bind.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive stand-in: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = if let Some(from_ty) = &item.from_type {
        format!(
            "let wire: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
             Ok(<{name} as ::std::convert::From<{from_ty}>>::from(wire))"
        )
    } else {
        match &item.shape {
            ItemShape::NamedStruct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{n}: ::serde::Deserialize::from_value(v.get(\"{n}\").unwrap_or(&::serde::Value::Null))?,\n",
                            n = f.name
                        ));
                    }
                }
                format!("Ok({name} {{\n{inits}}})")
            }
            ItemShape::NewtypeStruct => {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            ItemShape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}),\n"
                        )),
                        VariantShape::Newtype => payload_arms.push_str(&format!(
                            "if let Some(inner) = v.get(\"{vn}\") {{\n\
                             return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?));\n}}\n"
                        )),
                        VariantShape::Named(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                if f.skip {
                                    inits.push_str(&format!(
                                        "{}: ::std::default::Default::default(),\n",
                                        f.name
                                    ));
                                } else {
                                    inits.push_str(&format!(
                                        "{n}: ::serde::Deserialize::from_value(inner.get(\"{n}\").unwrap_or(&::serde::Value::Null))?,\n",
                                        n = f.name
                                    ));
                                }
                            }
                            payload_arms.push_str(&format!(
                                "if let Some(inner) = v.get(\"{vn}\") {{\n\
                                 return Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                            ));
                        }
                    }
                }
                format!(
                    "if let ::serde::Value::String(s) = v {{\n\
                     match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                     {payload_arms}\
                     Err(::serde::DeError::new(format!(\"no variant of {name} matches {{v:?}}\")))"
                )
            }
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive stand-in: generated Deserialize impl parses")
}
