//! Offline stand-in for `criterion`.
//!
//! Lets the workspace's `harness = false` benches compile and run without a
//! registry. Each benchmark executes a short timed loop and prints a
//! mean-per-iteration line; there is no statistical analysis, HTML report,
//! or comparison machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (accepted, not analyzed).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs closures in a timed loop.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= MEASURE_TARGET {
                break;
            }
        }
        self.iters_done = iters;
        self.total = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < MEASURE_TARGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.total = total;
    }
}

/// Batch sizing hint (accepted, not used).
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done > 0 {
        let per_iter = b.total.as_nanos() as f64 / b.iters_done as f64;
        println!(
            "bench {name:<48} {per_iter:>12.1} ns/iter ({} iters)",
            b.iters_done
        );
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
