//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this crate uses a simple
//! value-tree model: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] reconstructs a type from one. `serde_json` (the sibling
//! stand-in) renders and parses that tree. The derive macros in
//! `serde_derive` generate field-by-field `to_value`/`from_value` impls and
//! understand the `#[serde(skip)]` and `#[serde(from = "...")]` attributes
//! used in this workspace.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number, kept wide enough that `u64` seeds round-trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }
}

/// The serialized form: a JSON-like tree.
///
/// Maps preserve insertion order (field order of the deriving type) so the
/// rendered JSON is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization failure: a path-less description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| DeError::new("expected single-char string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(vec).map_err(|_| DeError::new("array length mismatch"))
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )+};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord + Clone> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort for stable output; HashSet iteration order is unspecified.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
