//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's tests rely on: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), range / tuple / `any` /
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Generation is fully deterministic (seeded
//! SplitMix64/xoshiro per test case); there is no shrinking — the failing
//! case's inputs are printed instead.

use std::ops::Range;

// ---- deterministic generator ----------------------------------------------

/// Per-case RNG: xoshiro256++ seeded via SplitMix64, same construction the
/// workspace's `simkit` uses, so test behavior is reproducible everywhere.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- errors / config -------------------------------------------------------

/// Why a test case did not pass: assertion failure or `prop_assume!` reject.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration. Only `cases` matters to this stand-in; the other
/// fields exist so `..ProptestConfig::default()` struct updates compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

// ---- strategies ------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy::prop_filter` adapter: rejection-samples, bounded retries.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest stand-in: prop_filter rejected 1024 candidates in a row");
    }
}

/// `Strategy::prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (clonable via `Rc`).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full-domain floats are rarely useful; mirror proptest's default-ish
        // behavior with a wide but finite distribution.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` ~25% of the time, `Some(inner)` otherwise
    /// (matching proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector strategy: length drawn from `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic base seed for a named test function.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut s = h ^ ((case as u64) << 32 | 0x9E37);
    splitmix(&mut s)
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---- macros ----------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// The test-harness macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a regular test function that runs `cases` deterministic
/// iterations, regenerating inputs from the listed strategies each time.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            let mut attempt: u32 = 0;
            while case < cfg.cases {
                let seed = $crate::seed_for(stringify!($name), attempt);
                attempt += 1;
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                let __inputs = ($($crate::Strategy::generate(&$strat, &mut rng),)*);
                let __desc = format!("{:?}", __inputs);
                let ($($arg,)*) = __inputs;
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => case += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > cfg.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case} (seed {seed:#x}):\n{msg}\ninputs: {}",
                            stringify!($name),
                            __desc
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}
