//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! value-tree model: renders [`Value`] trees as JSON text and parses JSON
//! text back into them. Covers the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], the [`json!`] macro,
//! and [`Value`] indexing/accessors.

use std::fmt::Write as _;

pub use serde::DeError as Error;
pub use serde::{Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

// ---- rendering -------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep integral floats readable and round-trippable.
                    let _ = write!(out, "{:.1}", v);
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn render(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                render(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T> {
    T::from_value(&v)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.parse_lit("null", Value::Null),
            b't' => self.parse_lit("true", Value::Bool(true)),
            b'f' => self.parse_lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape `{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let num = if is_float {
            Number::F(text.parse::<f64>().map_err(|_| self.err("invalid float"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(|_| self.err("invalid int"))?)
        } else {
            Number::U(text.parse::<u64>().map_err(|_| self.err("invalid uint"))?)
        };
        Ok(Value::Number(num))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value)
}

// ---- json! macro -----------------------------------------------------------

/// Build a [`Value`] from JSON-shaped syntax: objects, arrays, literals,
/// and interpolated expressions (anything implementing `Serialize`). A
/// trimmed port of serde_json's token-muncher.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////// array ////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// object ////////////////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    //////////////////// primary ////////////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::value_of(&$other)
    };
}

/// Helper used by [`json!`] to serialize interpolated expressions.
pub fn value_of<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}
