//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors the handful of items it actually uses (the
//! [`RngCore`] trait and its error type) so builds never touch a registry.
//! The deterministic generators themselves live in `ppc-simkit`; this crate
//! only provides the trait surface they plug into.

use std::fmt;

/// Error type for fallible RNG operations (never produced by our
/// deterministic generators, but required by the trait signature).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG trait: infallible 32/64-bit output plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
