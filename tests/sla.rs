//! SLA-critical jobs: the dynamic privileged set protects them absolutely.

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::core::PolicyKind;
use ppc::workload::JobPriority;

fn cfg(critical_fraction: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Some(PolicyKind::MpcC), 12);
    cfg.spec.provision_fraction = 0.62; // heavy, sustained capping pressure
    cfg.spec.critical_job_fraction = critical_fraction;
    cfg
}

#[test]
fn critical_jobs_are_never_throttled() {
    let out = run_experiment(&cfg(0.25));
    let critical: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.priority == JobPriority::Critical)
        .collect();
    let normal: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.priority == JobPriority::Normal)
        .collect();
    assert!(
        critical.len() >= 3,
        "workload must include critical jobs, got {}",
        critical.len()
    );
    for r in &critical {
        assert_eq!(
            r.throttled_secs, 0.0,
            "critical job {} was throttled for {}s",
            r.id, r.throttled_secs
        );
        assert!(
            r.is_lossless(0.01),
            "critical job {} lost performance",
            r.id
        );
    }
    // Under this much pressure, normal jobs must have absorbed throttling.
    assert!(
        normal.iter().any(|r| r.throttled_secs > 0.0),
        "pressure should have throttled some normal job"
    );
}

#[test]
fn privileged_set_returns_nodes_after_critical_jobs_finish() {
    // With critical jobs present the manager still issues commands —
    // the candidate pool shrinks and grows but never empties for long.
    let out = run_experiment(&cfg(0.25));
    let stats = out.manager_stats.expect("managed");
    assert!(
        stats.commands_issued > 0,
        "capping must still function alongside SLA protection"
    );
    // And the overall experiment keeps the usual shape.
    assert!(out.metrics.performance > 0.6);
    assert!(out.metrics.jobs_finished > 20);
}

#[test]
fn zero_fraction_behaves_identically_to_baseline_feature_off() {
    let a = run_experiment(&cfg(0.0));
    let mut plain = ExperimentConfig::quick(Some(PolicyKind::MpcC), 12);
    plain.spec.provision_fraction = 0.62;
    let b = run_experiment(&plain);
    assert_eq!(a.metrics.p_max_w.to_bits(), b.metrics.p_max_w.to_bits());
    assert_eq!(a.records.len(), b.records.len());
}
