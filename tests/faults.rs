//! Node-lifecycle state machine under deterministic fault injection:
//! crash → evict → requeue → reboot → rejoin-at-lowest-level, the requeue
//! cap, frozen-actuator command failures, and the conservative
//! degraded-telemetry fallback.

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
use ppc::node::{Level, NodeId};
use ppc::simkit::{SimDuration, SimTime};

fn managed_t_g(
    nodes: u32,
    provision_fraction: f64,
    faults: FaultInjection,
    t_g_cycles: u64,
) -> ClusterSim {
    let mut spec = ClusterSpec::mini(nodes);
    spec.provision_fraction = provision_fraction;
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        t_g_cycles,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).unwrap();
    ClusterSim::new(spec)
        .with_manager(manager)
        .with_faults(faults)
}

fn managed(nodes: u32, provision_fraction: f64, faults: FaultInjection) -> ClusterSim {
    managed_t_g(nodes, provision_fraction, faults, 10)
}

fn crash(at: u64, node: u32, reboot: u64) -> FaultEvent {
    FaultEvent {
        at: SimTime::from_secs(at),
        node: NodeId(node),
        kind: FaultKind::Crash {
            reboot: SimDuration::from_secs(reboot),
        },
    }
}

#[test]
fn crash_walks_the_full_lifecycle() {
    let schedule = FaultSchedule::new(vec![crash(60, 2, 40)]);
    // A huge T_g freezes green recovery so the rejoin level is observable
    // (with the default T_g the long green streak promotes the node one
    // level on the very next cycle).
    let mut sim = managed_t_g(4, 0.80, FaultInjection::new(schedule), 100_000);

    // Saturate, then crash: the hosted job is evicted and requeued, the
    // node leaves scheduling, telemetry, and the candidate set.
    sim.run_for(SimDuration::from_secs(70));
    let engine = sim.fault_engine().unwrap();
    assert!(engine.is_down(NodeId(2)));
    assert_eq!(
        sim.jobs_requeued(),
        1,
        "saturated cluster: node 2 hosted a job"
    );
    assert_eq!(sim.jobs_failed(), 0);
    let mgr = sim.manager().unwrap();
    assert!(!mgr.sets().candidates().contains(&NodeId(2)));

    // The tick after reboot: back in the candidate set, at the lowest
    // DVFS level, adopted as degraded for steady-green recovery.
    sim.run_for(SimDuration::from_secs(31));
    assert!(!sim.fault_engine().unwrap().is_down(NodeId(2)));
    let mgr = sim.manager().unwrap();
    assert!(mgr.sets().candidates().contains(&NodeId(2)));
    assert_eq!(
        sim.node_levels()[2],
        Level::LOWEST,
        "rejoins at lowest level"
    );
    assert!(mgr.capping_degraded().contains(&NodeId(2)));

    // The requeued job restarts from scratch and the cluster keeps
    // finishing work after the outage.
    let finished_now = sim.finished().len();
    sim.run_for(SimDuration::from_secs(120));
    assert!(
        sim.finished().len() > finished_now,
        "work continues after reboot"
    );
    let report = sim.availability_report().unwrap();
    assert_eq!((report.crashes, report.jobs_requeued), (1, 1));
    assert!((report.mttr_secs - 40.0).abs() < 1.0);
}

#[test]
fn requeue_cap_zero_fails_the_evicted_job() {
    let schedule = FaultSchedule::new(vec![crash(60, 0, 30), crash(60, 1, 30)]);
    let injection = FaultInjection {
        requeue_cap: 0,
        ..FaultInjection::new(schedule)
    };
    let mut sim = managed(4, 0.80, injection);
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(sim.jobs_requeued(), 0, "cap 0 never requeues");
    assert!(sim.jobs_failed() >= 1, "evicted jobs are dropped as failed");
    assert_eq!(
        sim.availability_report().unwrap().jobs_failed,
        sim.jobs_failed()
    );
}

#[test]
fn frozen_actuator_fails_commands_until_it_thaws() {
    // Tight provisioning guarantees throttling commands; freezing every
    // actuator makes them fail and enter the retry path, and the control
    // loop reconciles once the hang ends.
    let events = (0..4)
        .map(|n| FaultEvent {
            at: SimTime::from_secs(15),
            node: NodeId(n),
            kind: FaultKind::Hang {
                duration: SimDuration::from_secs(90),
            },
        })
        .collect();
    let mut sim = managed(4, 0.55, FaultInjection::new(FaultSchedule::new(events)));
    sim.run_for(SimDuration::from_secs(240));
    assert!(
        sim.commands_failed() > 0,
        "commands against frozen actuators fail"
    );
    assert!(
        sim.commands_applied() > 0,
        "capping recovers after the thaw"
    );
    assert!(
        sim.node_levels().iter().any(|&l| l < Level::new(9)),
        "throttling eventually lands"
    );
}

#[test]
fn telemetry_silence_trips_the_conservative_fallback() {
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: SimTime::from_secs(20),
        node: NodeId(0),
        kind: FaultKind::SubtreePartition {
            width: 4,
            duration: SimDuration::from_secs(120),
        },
    }]);
    let mut sim = managed(4, 0.60, FaultInjection::new(schedule));
    sim.run_for(SimDuration::from_secs(200));
    let stats = sim.manager().unwrap().stats();
    assert!(
        stats.conservative_cycles > 0,
        "zero coverage must force conservative cycles"
    );
    let report = sim.availability_report().unwrap();
    assert_eq!(report.silences, 4, "the partition darkens all four nodes");
    assert!(report.conservative_fraction > 0.0);
    assert_eq!(report.crashes, 0);
}
