//! End-to-end integration: the full experiment pipeline across all crates.

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::core::PolicyKind;

fn quick(policy: Option<PolicyKind>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(policy, 8);
    cfg.spec.provision_fraction = 0.72;
    cfg
}

#[test]
fn uncapped_baseline_is_lossless_and_unthrottled() {
    let out = run_experiment(&quick(None));
    assert_eq!(out.label, "uncapped");
    assert!(
        out.metrics.jobs_finished > 10,
        "workload must make progress"
    );
    assert!(out.metrics.performance > 0.9999);
    assert_eq!(out.metrics.cplj, out.metrics.jobs_finished);
    assert!(out.records.iter().all(|r| r.throttled_secs == 0.0));
    assert!(out.manager_stats.is_none());
}

#[test]
fn capped_run_respects_paper_shape() {
    let base = run_experiment(&quick(None));
    let mpc = run_experiment(&quick(Some(PolicyKind::Mpc)));

    // Peak is reduced, overspend not increased, performance bounded.
    assert!(mpc.metrics.p_max_w < base.metrics.p_max_w);
    assert!(mpc.metrics.overspend <= base.metrics.overspend + 1e-12);
    assert!(mpc.metrics.performance <= 1.0);
    assert!(
        mpc.metrics.performance > 0.80,
        "throttling must not devastate performance: {}",
        mpc.metrics.performance
    );

    // Thresholds carry the paper margins relative to the learned peak.
    let (pl, ph) = mpc.thresholds_w;
    assert!((pl / mpc.p_peak_w - 0.84).abs() < 1e-9);
    assert!((ph / mpc.p_peak_w - 0.93).abs() < 1e-9);

    // The manager actually worked.
    let stats = mpc.manager_stats.expect("managed run");
    assert!(
        stats.yellow_cycles > 0,
        "capping must engage on this provision"
    );
    assert!(stats.commands_issued > 0);
}

#[test]
fn capped_peak_stays_under_learned_envelope() {
    let mpc = run_experiment(&quick(Some(PolicyKind::Mpc)));
    // After training, spikes get clipped: the measured peak must stay
    // within a small overshoot of P_H (control latency allows a little).
    let (_, ph) = mpc.thresholds_w;
    assert!(
        mpc.metrics.p_max_w <= ph * 1.10,
        "peak {:.0} must stay near P_H {:.0}",
        mpc.metrics.p_max_w,
        ph
    );
}

#[test]
fn performance_and_cplj_are_consistent() {
    let out = run_experiment(&quick(Some(PolicyKind::MpcC)));
    let m = &out.metrics;
    // CPLJ counts a subset of jobs; lossless fraction and mean ratio agree
    // directionally.
    assert!(m.cplj <= m.jobs_finished);
    assert!((0.0..=1.0).contains(&m.cplj_fraction));
    if m.cplj == m.jobs_finished {
        assert!(m.performance > 0.97);
    }
    // Every record's ratio is within (0, 1].
    for r in &out.records {
        let ratio = r.performance_ratio();
        assert!(ratio > 0.0 && ratio <= 1.0, "{ratio}");
    }
}

#[test]
fn frozen_thresholds_protect_the_provision() {
    let mut cfg = quick(Some(PolicyKind::Mpc));
    cfg.frozen_thresholds = true;
    let out = run_experiment(&cfg);
    let (pl, ph) = out.thresholds_w;
    assert!((pl / out.provision_w - 0.84).abs() < 1e-9);
    assert!((ph / out.provision_w - 0.93).abs() < 1e-9);
    // With thresholds under the provision, overspend all but vanishes.
    assert!(out.metrics.overspend < 0.01);
}

#[test]
fn outcome_serializes_to_json() {
    let out = run_experiment(&quick(Some(PolicyKind::Hri)));
    let json = ppc::cluster::output::outcome_to_json(&out);
    assert!(json.contains("\"label\""));
    assert!(json.contains("HRI"));
    // And parses back as a generic value with the expected fields.
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert!(v["metrics"]["performance"].as_f64().unwrap() > 0.0);
}
