//! Reproducibility: identical seeds produce bit-identical experiments,
//! different seeds produce different ones — across the whole stack,
//! including the worker-pool node updates, at any pool width.

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc::simkit::{RngFactory, SimDuration, WorkerPool};
use std::sync::Arc;

#[test]
fn same_seed_same_everything() {
    let cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 8);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.metrics.p_max_w.to_bits(), b.metrics.p_max_w.to_bits());
    assert_eq!(
        a.metrics.performance.to_bits(),
        b.metrics.performance.to_bits()
    );
    assert_eq!(a.metrics.overspend.to_bits(), b.metrics.overspend.to_bits());
    assert_eq!(a.metrics.cplj, b.metrics.cplj);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra, rb);
    }
    assert_eq!(a.manager_stats, b.manager_stats);
    assert_eq!(a.trace.values(), b.trace.values());
}

#[test]
fn same_seed_same_journal_hash() {
    // The journal fingerprint is what CI's dynamic determinism gate
    // compares; prove here (fast, tier-1) that a same-seed double run is
    // journal-identical and that the journal actually recorded events.
    let run = || {
        let mut spec = ClusterSpec::mini(6);
        spec.provision_fraction = 0.65; // capping engages → commands journaled
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        sim.run_for(SimDuration::from_secs(300));
        (sim.journal().fingerprint(), sim.journal().len())
    };
    let (hash_a, len_a) = run();
    let (hash_b, _) = run();
    assert!(
        len_a > 0,
        "journal must record events for the hash to mean anything"
    );
    assert_eq!(
        hash_a, hash_b,
        "same seed must replay to an identical journal"
    );
}

#[test]
fn different_seed_different_trace() {
    let cfg_a = ExperimentConfig::quick(None, 8);
    let mut cfg_b = cfg_a.clone();
    cfg_b.spec.seed = cfg_a.spec.seed + 1;
    let a = run_experiment(&cfg_a);
    let b = run_experiment(&cfg_b);
    assert_ne!(
        a.trace.values(),
        b.trace.values(),
        "different seeds must produce different workloads"
    );
}

#[test]
fn stepping_granularity_does_not_change_results() {
    // Running 600 single steps equals two 300-step batches.
    let spec = ClusterSpec::mini(6);
    let mut one = ClusterSim::new(spec.clone());
    for _ in 0..600 {
        one.step();
    }
    let mut batched = ClusterSim::new(spec);
    batched.run_for(SimDuration::from_secs(300));
    batched.run_for(SimDuration::from_secs(300));
    assert_eq!(one.now(), batched.now());
    assert_eq!(one.true_power().values(), batched.true_power().values());
    assert_eq!(one.finished().len(), batched.finished().len());
}

#[test]
fn power_trace_is_invariant_across_worker_counts() {
    // The worker pool's static chunking must make parallel execution
    // bit-identical to sequential, whatever the pool width. Run the same
    // managed experiment under pools of width 1, 2 and 8 (inline
    // threshold zero forces even the 8-node cluster through the parallel
    // path) and under the default global pool, and demand the exact same
    // bits everywhere.
    let run = |pool: Option<Arc<WorkerPool>>| {
        let mut spec = ClusterSpec::mini(8);
        spec.provision_fraction = 0.60; // tight: capping engages
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        if let Some(pool) = pool {
            sim = sim.with_worker_pool(pool);
        }
        sim.run_for(SimDuration::from_secs(400));
        let bits: Vec<u64> = sim
            .true_power()
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (bits, sim.finished().len(), sim.commands_applied())
    };
    let baseline = run(None);
    assert!(baseline.2 > 0, "capping must engage for a meaningful check");
    for workers in [1, 2, 8] {
        let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
        let got = run(Some(pool));
        assert_eq!(
            got, baseline,
            "worker count {workers} changed the power trace"
        );
    }
}

#[test]
fn faulted_run_is_invariant_across_worker_counts() {
    // Fault injection must preserve the pool-width determinism contract:
    // the same seeded schedule replays to bit-identical power traces and
    // the identical availability report at any worker count.
    let run = |pool: Option<Arc<WorkerPool>>| {
        let mut spec = ClusterSpec::mini(8);
        spec.provision_fraction = 0.60;
        let rates = FaultRates {
            crash_per_node_hour: 6.0,
            reboot_mean_secs: 45.0,
            hang_per_node_hour: 6.0,
            silence_per_node_hour: 8.0,
            partition_per_hour: 10.0,
            partition_width: 4,
            ..FaultRates::default()
        };
        let schedule = FaultSchedule::generate(
            &rates,
            8,
            SimDuration::from_secs(400),
            &RngFactory::new(spec.seed),
        );
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec)
            .with_manager(manager)
            .with_faults(FaultInjection::new(schedule));
        if let Some(pool) = pool {
            sim = sim.with_worker_pool(pool);
        }
        sim.run_for(SimDuration::from_secs(400));
        let bits: Vec<u64> = sim
            .true_power()
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let report = sim.availability_report().expect("faults attached");
        (bits, sim.finished().len(), sim.commands_applied(), report)
    };
    let baseline = run(None);
    assert!(baseline.3.crashes > 0, "schedule must actually strike");
    for workers in [1, 2, 8] {
        let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
        let got = run(Some(pool));
        assert_eq!(
            got, baseline,
            "worker count {workers} changed the faulted run"
        );
    }
}

#[test]
fn noise_streams_are_independent_of_policy() {
    // The workload (arrivals, phases) must be identical across policies —
    // only node speeds differ. Compare job id → app/nprocs streams.
    let a = run_experiment(&ExperimentConfig::quick(Some(PolicyKind::Mpc), 8));
    let b = run_experiment(&ExperimentConfig::quick(Some(PolicyKind::Lpc), 8));
    let key = |r: &ppc::workload::JobRecord| (r.id, r.app, r.nprocs, r.baseline_secs.to_bits());
    let ids_a: Vec<_> = a.records.iter().map(key).collect();
    let ids_b: Vec<_> = b.records.iter().map(key).collect();
    // Completion order/timing may differ; compare the common prefix of
    // generated jobs by id.
    let n = ids_a.len().min(ids_b.len()).min(20);
    let mut sa = ids_a;
    let mut sb = ids_b;
    sa.sort();
    sb.sort();
    assert_eq!(&sa[..n], &sb[..n], "job stream must not depend on policy");
}
