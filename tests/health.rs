//! Fleet health plane end-to-end: hierarchical rollups, quantile
//! sketches and SLO alerting must be bit-identical across pool widths,
//! control-plane architectures and what-if branches, and the alert
//! journal must match the golden `ALERTS` fixture (see DESIGN §17).

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{HierarchicalManager, ManagerConfig, NodeSets, PolicyKind, PowerManager, Topology};
use ppc::faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc::obs::render_alerts;
use ppc::simkit::{RngFactory, SimDuration, WorkerPool};
use ppc::whatif::ClusterSnapshot;
use std::collections::BTreeSet;
use std::sync::Arc;

const NODES: u32 = 8;
const RUN_SECS: u64 = 400;

/// The determinism gate's scenario: tight provision, aggressive faults.
fn gate_spec() -> (ClusterSpec, FaultSchedule, ManagerConfig) {
    let mut spec = ClusterSpec::mini(NODES);
    spec.provision_fraction = 0.60;
    let rates = FaultRates {
        crash_per_node_hour: 6.0,
        reboot_mean_secs: 45.0,
        hang_per_node_hour: 6.0,
        silence_per_node_hour: 8.0,
        partition_per_hour: 10.0,
        partition_width: 4,
        ..FaultRates::default()
    };
    let schedule = FaultSchedule::generate(
        &rates,
        NODES,
        SimDuration::from_secs(RUN_SECS),
        &RngFactory::new(spec.seed),
    );
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    (spec, schedule, config)
}

fn flat(workers: usize) -> ClusterSim {
    let (spec, schedule, config) = gate_spec();
    let sets = NodeSets::new(spec.node_ids(), []);
    let manager = PowerManager::new(config, sets).expect("valid manager");
    ClusterSim::new(spec)
        .with_manager(manager)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(Arc::new(WorkerPool::new(workers).with_inline_threshold(0)))
}

/// Hierarchical control plane over `topology` (multi-rack unless the
/// single-rack topology is passed), same spec and fault schedule.
fn hier(workers: usize, topology: Topology) -> ClusterSim {
    let (spec, schedule, config) = gate_spec();
    let h = HierarchicalManager::new(config, topology, &BTreeSet::new(), spec.node_weights_w())
        .expect("valid hierarchy");
    ClusterSim::new(spec)
        .with_hierarchy(h)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(Arc::new(WorkerPool::new(workers).with_inline_threshold(0)))
}

/// 2 rows × 2 racks of 2 nodes: real delegation, real rollup tree.
fn three_level() -> Topology {
    Topology::new(NODES, 2, 2).expect("valid topology")
}

#[test]
fn health_fingerprints_pin_across_worker_widths() {
    let mut digests = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut sim = hier(workers, three_level());
        sim.run_for(SimDuration::from_secs(RUN_SECS));
        let hp = sim.health();
        // Vacuity: the plane must have folded real cycles, per-rack
        // zones, and at least one fleet node-power sample.
        assert!(hp.rollup().facility().cycles > 100, "width {workers}");
        assert_eq!(hp.rollup().racks().len(), 4);
        assert_eq!(hp.rollup().rows().len(), 2);
        assert!(hp.node_power().count() > 0, "width {workers}");
        digests.push((workers, sim.health_fingerprints()));
    }
    let (_, base) = digests[0];
    for (workers, d) in &digests[1..] {
        assert_eq!(
            *d, base,
            "health fingerprints diverged at pool width {workers}"
        );
    }
}

#[test]
fn flat_and_single_rack_hierarchy_agree_on_health() {
    let mut a = flat(1);
    a.run_for(SimDuration::from_secs(RUN_SECS));
    let topo = Topology::single_rack(NODES).expect("valid topology");
    let mut b = hier(8, topo);
    b.run_for(SimDuration::from_secs(RUN_SECS));
    assert_eq!(
        a.health_fingerprints(),
        b.health_fingerprints(),
        "a single-rack hierarchy must observe the same health stream as the flat manager"
    );
    // Not just the hashes: the whole plane.
    assert_eq!(a.health(), b.health());
}

#[test]
fn whatif_branch_replays_health_bit_for_bit() {
    // Fresh full run vs snapshot-at-half + branch-to-end: the branch
    // carries the health plane and must land on identical fingerprints.
    let mut fresh = hier(1, three_level());
    fresh.run_for(SimDuration::from_secs(RUN_SECS));

    let half = RUN_SECS / 2;
    let mut sim = hier(1, three_level());
    sim.run_for(SimDuration::from_secs(half));
    let snapshot = ClusterSnapshot::capture(&sim);
    // Perturb the original past the capture point: a branch secretly
    // sharing health state with it would diverge.
    sim.run_for(SimDuration::from_secs(30));
    let mut branch = snapshot.branch();
    branch.run_for(SimDuration::from_secs(RUN_SECS - half));

    assert_eq!(fresh.health_fingerprints(), branch.health_fingerprints());
}

/// The golden-fixture scenario: an unfaulted 55%-provisioned mini
/// cluster dwells Red long enough to burn through the dual-window rule
/// and trip cap-overshoot — a deterministic, readable alert timeline.
fn fixture_sim() -> ClusterSim {
    let mut spec = ClusterSpec::mini(6);
    spec.provision_fraction = 0.55;
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid manager");
    let mut sim = ClusterSim::new(spec).with_manager(manager);
    sim.run_for(SimDuration::from_mins(15));
    sim
}

#[test]
fn alert_journal_matches_golden_fixture() {
    let sim = fixture_sim();
    let rendered = render_alerts(sim.health().alerts());
    assert!(
        !rendered.is_empty(),
        "the fixture scenario must produce alert edges"
    );
    // `PPC_REGEN_FIXTURES=1 cargo test --test health` rewrites the
    // golden file instead of comparing (then rerun without the env).
    if std::env::var_os("PPC_REGEN_FIXTURES").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/ALERTS.txt"),
            &rendered,
        )
        .expect("fixture write");
        return;
    }
    let golden = include_str!("fixtures/ALERTS.txt");
    assert_eq!(
        rendered, golden,
        "alert timeline diverged from tests/fixtures/ALERTS.txt — if the \
         change is intentional, regenerate the fixture (see its header note \
         in DESIGN §17)"
    );
}

#[test]
fn slo_alert_firing_trips_the_flight_recorder() {
    let sim = fixture_sim();
    let opens = sim
        .health()
        .alerts()
        .iter()
        .filter(|e| e.edge == ppc::obs::AlertEdge::Open)
        .count();
    assert!(opens > 0, "fixture scenario must open alerts");
    let report = sim.obs().report();
    let slo_snaps: Vec<_> = report
        .flight
        .iter()
        .filter(|s| s.reason.starts_with("slo:"))
        .collect();
    assert!(
        !slo_snaps.is_empty(),
        "an opening SLO alert must trigger a flight-recorder snapshot"
    );
    // The snapshot names the rule that fired and carries context.
    assert!(slo_snaps.iter().any(|s| !s.spans.is_empty()));
}

#[test]
fn experiment_outcome_carries_health_report() {
    use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
    let out = run_experiment(&ExperimentConfig::quick(Some(PolicyKind::Mpc), 8));
    assert!(out.health.cycles > 0);
    assert!(
        out.health.node_power.count > 0 || out.health.cycles < 64,
        "a run spanning a sampling period must populate the node sketch"
    );
}
