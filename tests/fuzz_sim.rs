//! Property-based fuzzing of whole simulation configurations: random
//! cluster shapes, policies, provisions and workload knobs — with and
//! without random fault schedules — must never panic and must uphold the
//! global invariants (§9 of DESIGN.md): node levels on their ladders,
//! power inside the envelope, privileged nodes never commanded, dead
//! nodes out of `A_candidate` and never re-leveled while down.

use ppc::cluster::spec::NodeGroup;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc::node::spec::NodeSpec;
use ppc::node::{Level, NodeId};
use ppc::simkit::{RngFactory, SimDuration};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FuzzConfig {
    nodes: u32,
    x5650_nodes: u32,
    provision: f64,
    policy_idx: usize,
    think_secs: u64,
    queue_depth: usize,
    backfill: bool,
    critical_frac: f64,
    privileged_first: u32,
    seed: u64,
    thermal: bool,
}

fn arb_config() -> impl Strategy<Value = FuzzConfig> {
    (
        (
            2u32..8,
            0u32..4,
            0.45f64..0.95,
            0usize..PolicyKind::ALL.len(),
        ),
        (0u64..30, 1usize..4, any::<bool>(), 0.0f64..0.4),
        (0u32..2, any::<u64>(), any::<bool>()),
    )
        .prop_map(
            |(
                (nodes, x5650_nodes, provision, policy_idx),
                (think_secs, queue_depth, backfill, critical_frac),
                (privileged_first, seed, thermal),
            )| FuzzConfig {
                nodes,
                x5650_nodes,
                provision,
                policy_idx,
                think_secs,
                queue_depth,
                backfill,
                critical_frac,
                privileged_first,
                seed,
                thermal,
            },
        )
}

fn arb_rates() -> impl Strategy<Value = FaultRates> {
    (
        (0.0f64..8.0, 20.0f64..90.0),
        (0.0f64..8.0, 5.0f64..60.0),
        (0.0f64..10.0, 5.0f64..60.0),
        (0.0f64..6.0, 10.0f64..60.0, 2u32..5),
    )
        .prop_map(
            |(
                (crash_per_node_hour, reboot_mean_secs),
                (hang_per_node_hour, hang_mean_secs),
                (silence_per_node_hour, silence_mean_secs),
                (partition_per_hour, partition_mean_secs, partition_width),
            )| FaultRates {
                crash_per_node_hour,
                reboot_mean_secs,
                hang_per_node_hour,
                hang_mean_secs,
                silence_per_node_hour,
                silence_mean_secs,
                partition_per_hour,
                partition_mean_secs,
                partition_width,
            },
        )
}

fn run_one(cfg: FuzzConfig, rates: Option<FaultRates>) {
    let mut spec = ClusterSpec::mini(cfg.nodes);
    if cfg.thermal {
        spec.node_spec = NodeSpec::tianhe_1a_thermal();
    }
    if cfg.x5650_nodes > 0 {
        spec.extra_groups = vec![NodeGroup {
            spec: NodeSpec::tianhe_1a_x5650(),
            count: cfg.x5650_nodes,
        }];
    }
    spec.provision_fraction = cfg.provision;
    spec.think_time_mean = SimDuration::from_secs(cfg.think_secs);
    spec.queue_depth = cfg.queue_depth;
    spec.backfill = cfg.backfill;
    spec.critical_job_fraction = cfg.critical_frac;
    spec.privileged = (0..cfg.privileged_first.min(cfg.nodes))
        .map(NodeId)
        .collect();
    spec.seed = cfg.seed;

    let policy = PolicyKind::ALL[cfg.policy_idx];
    let sets = NodeSets::new(spec.node_ids(), spec.privileged.iter().copied());
    let config = ManagerConfig {
        training_cycles: 30,
        ..ManagerConfig::paper_defaults(spec.provision_w(), policy)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    let mut sim = ClusterSim::new(spec.clone()).with_manager(manager);
    let faulted = rates.is_some();
    if let Some(rates) = rates {
        // The partition width must fit the smallest fuzzed cluster.
        let width = rates.partition_width.min(spec.total_nodes());
        let schedule = FaultSchedule::generate(
            &FaultRates {
                partition_width: width,
                ..rates
            },
            spec.total_nodes(),
            SimDuration::from_secs(240),
            &RngFactory::new(spec.seed),
        );
        sim = sim.with_faults(FaultInjection::new(schedule));
    }

    let total_nodes = spec.total_nodes();
    let envelope_hi = spec.theoretical_max_w() * 1.25; // thermal leakage headroom
    let mut prev: Option<(Vec<Level>, Vec<bool>)> = None;
    for _ in 0..240 {
        sim.step();
        // Global invariants, every tick.
        let levels = sim.node_levels();
        assert_eq!(levels.len(), total_nodes as usize);
        for (i, level) in levels.iter().enumerate() {
            let top = spec.spec_of(NodeId(i as u32)).ladder.highest();
            assert!(*level <= top, "node {i} above its ladder");
        }
        let p = *sim.true_power().values().last().unwrap();
        if faulted {
            // Crashes can legitimately take the whole machine dark.
            assert!(p >= 0.0 && p <= envelope_hi, "power {p} outside envelope");
        } else {
            assert!(p > 0.0 && p <= envelope_hi, "power {p} outside envelope");
        }
        assert!((0.0..=1.0).contains(&sim.utilization()));
        // Fault invariants: dead nodes leave A_candidate and are never
        // commanded while down (their level is frozen until reboot).
        let down: Vec<bool> = (0..total_nodes)
            .map(|i| sim.fault_engine().is_some_and(|e| e.is_down(NodeId(i))))
            .collect();
        if let Some(m) = sim.manager() {
            for &c in m.sets().candidates() {
                assert!(!down[c.0 as usize], "down node {c:?} still a candidate");
            }
        }
        if let Some((pl, pd)) = &prev {
            for i in 0..total_nodes as usize {
                if down[i] && pd[i] {
                    assert_eq!(levels[i], pl[i], "down node {i} was commanded");
                }
            }
        }
        prev = Some((levels, down));
    }
    // Statically privileged nodes never moved.
    for p in &spec.privileged {
        assert_eq!(
            sim.node_levels()[p.0 as usize],
            spec.spec_of(*p).ladder.highest()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]
    #[test]
    fn random_configurations_uphold_invariants(cfg in arb_config()) {
        run_one(cfg, None);
    }

    #[test]
    fn random_fault_schedules_uphold_invariants(cfg in arb_config(), rates in arb_rates()) {
        run_one(cfg, Some(rates));
    }
}
