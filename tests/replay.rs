//! Trace replay end-to-end: a fixed submission trace drives the cluster
//! instead of the random generator.

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::simkit::SimDuration;
use ppc::workload::{parse_trace, JobPriority};

const TRACE: &str = "\
# three-job regression scenario on 8 nodes (12 cores each)
0    EP  A  48
10   CG  A  24
20   LU  A  12  critical
";

fn spec_with_trace() -> ClusterSpec {
    let mut spec = ClusterSpec::mini(8);
    spec.job_trace = Some(parse_trace(TRACE).expect("valid trace"));
    spec
}

#[test]
fn replay_runs_exactly_the_trace() {
    let mut sim = ClusterSim::new(spec_with_trace());
    sim.run_for(SimDuration::from_mins(30));
    // All three jobs, and only those three, complete.
    assert_eq!(sim.finished().len(), 3);
    let mut apps: Vec<String> = sim.finished().iter().map(|r| r.app.to_string()).collect();
    apps.sort();
    assert_eq!(apps, vec!["CG", "EP", "LU"]);
    let lu = sim
        .finished()
        .iter()
        .find(|r| r.app.to_string() == "LU")
        .unwrap();
    assert_eq!(lu.priority, JobPriority::Critical);
    assert_eq!(lu.nprocs, 12);
    // Submission times honor the trace.
    let ep = sim
        .finished()
        .iter()
        .find(|r| r.app.to_string() == "EP")
        .unwrap();
    assert_eq!(ep.submitted_at.as_millis(), 0);
    let cg = sim
        .finished()
        .iter()
        .find(|r| r.app.to_string() == "CG")
        .unwrap();
    assert_eq!(cg.submitted_at.as_millis(), 10_000);
}

#[test]
fn replay_is_bit_reproducible() {
    let run = || {
        let mut sim = ClusterSim::new(spec_with_trace());
        sim.run_for(SimDuration::from_mins(30));
        (
            sim.true_power().values().to_vec(),
            sim.finished()
                .iter()
                .map(|r| (r.id, r.actual_secs.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn exhausted_trace_leaves_cluster_idle() {
    let mut sim = ClusterSim::new(spec_with_trace());
    sim.run_for(SimDuration::from_mins(45));
    assert_eq!(sim.running_jobs(), 0);
    assert_eq!(sim.utilization(), 0.0);
    // Idle cluster still draws idle power.
    let last = *sim.true_power().values().last().unwrap();
    assert!(
        (8.0 * 140.0..8.0 * 180.0).contains(&last),
        "idle draw {last}"
    );
}
