//! The proportional-budget architecture baseline, end to end.

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ProportionalBudgetController, Thresholds};
use ppc::node::Level;
use ppc::simkit::SimDuration;

fn budget_sim(nodes: u32, p_low_frac: f64) -> ClusterSim {
    let spec = ClusterSpec::mini(nodes);
    let thy = spec.theoretical_max_w();
    let thresholds = Thresholds::new(p_low_frac * thy, (p_low_frac + 0.09) * thy).unwrap();
    ClusterSim::new(spec).with_budget_controller(ProportionalBudgetController::new(thresholds))
}

#[test]
fn budget_controller_caps_energy_against_unmanaged() {
    let mut managed = budget_sim(8, 0.55);
    managed.run_for(SimDuration::from_mins(20));
    let mut unmanaged = ClusterSim::new(ClusterSpec::mini(8));
    unmanaged.run_for(SimDuration::from_mins(20));

    let e_managed = managed
        .true_power()
        .integrate(ppc::simkit::series::Interp::Step);
    let e_unmanaged = unmanaged
        .true_power()
        .integrate(ppc::simkit::series::Interp::Step);
    assert!(
        e_managed < e_unmanaged,
        "budget capping must reduce energy: {e_managed:.0} vs {e_unmanaged:.0}"
    );
    let stats = managed.budget_controller().unwrap().stats();
    assert!(stats.active_cycles > 0, "the tight budget must activate");
    assert!(managed.commands_applied() > 0);
    // Jobs still complete.
    assert!(managed.finished().len() > 20);
}

#[test]
fn budget_levels_stay_on_ladders() {
    let mut sim = budget_sim(6, 0.50);
    for _ in 0..600 {
        sim.step();
        for level in sim.node_levels() {
            assert!(level.index() <= 9);
        }
    }
}

#[test]
fn loose_budget_never_throttles() {
    let mut sim = budget_sim(6, 0.99);
    sim.run_for(SimDuration::from_mins(10));
    assert_eq!(sim.commands_applied(), 0);
    assert!(sim.node_levels().iter().all(|&l| l == Level::new(9)));
    assert_eq!(sim.budget_controller().unwrap().stats().active_cycles, 0);
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn manager_and_budget_controller_conflict() {
    use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
    let spec = ClusterSpec::mini(4);
    let sets = NodeSets::new(spec.node_ids(), []);
    let manager = PowerManager::new(
        ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc),
        sets,
    )
    .unwrap();
    let thresholds = Thresholds::new(100.0, 200.0).unwrap();
    let _ = ClusterSim::new(spec)
        .with_manager(manager)
        .with_budget_controller(ProportionalBudgetController::new(thresholds));
}
