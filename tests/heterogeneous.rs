//! Heterogeneous clusters: Algorithm 1 "is applicable to both
//! heterogeneous and homogeneous systems as far as the power states of a
//! node are discrete" — verified on a mixed X5670 (10-level) / X5650
//! (7-level) partition.

use ppc::cluster::spec::NodeGroup;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::node::spec::NodeSpec;
use ppc::node::Level;
use ppc::simkit::SimDuration;

fn mixed_spec(base: u32, extra: u32) -> ClusterSpec {
    let mut spec = ClusterSpec::mini(base);
    spec.extra_groups = vec![NodeGroup {
        spec: NodeSpec::tianhe_1a_x5650(),
        count: extra,
    }];
    spec.provision_fraction = 0.60; // tight: capping must engage hard
    spec
}

fn managed(spec: ClusterSpec, policy: PolicyKind) -> ClusterSim {
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), policy)
    };
    let manager = PowerManager::new(config, sets).expect("valid");
    ClusterSim::new(spec).with_manager(manager)
}

#[test]
fn spec_accounting_covers_both_groups() {
    let spec = mixed_spec(6, 4);
    spec.validate();
    assert_eq!(spec.total_nodes(), 10);
    assert_eq!(spec.node_ids().count(), 10);
    // Base nodes have the 10-level ladder, group nodes the 7-level one.
    assert_eq!(spec.spec_of(ppc::node::NodeId(0)).ladder.len(), 10);
    assert_eq!(spec.spec_of(ppc::node::NodeId(6)).ladder.len(), 7);
    assert_eq!(spec.spec_of(ppc::node::NodeId(9)).ladder.len(), 7);
    let thy = spec.theoretical_max_w();
    let homog = 10.0 * NodeSpec::tianhe_1a().theoretical_max_w();
    assert!(thy < homog, "X5650 partition draws less: {thy} < {homog}");
}

#[test]
fn capping_respects_each_ladder_height() {
    let mut sim = managed(mixed_spec(6, 4), PolicyKind::MpcC);
    for _ in 0..1_200 {
        sim.step();
        let levels = sim.node_levels();
        for (i, level) in levels.iter().enumerate() {
            let max = if i < 6 { 9 } else { 6 };
            assert!(
                level.index() <= max,
                "node {i} at level {} exceeds its {max}-level ladder",
                level.index()
            );
        }
    }
    assert!(sim.commands_applied() > 0, "capping must engage");
    // Both partitions must have been throttled at some point under this
    // much pressure: check the final state or command history indirectly.
    let levels = sim.node_levels();
    assert!(levels.iter().any(|&l| l < Level::new(9)) || sim.commands_applied() > 100);
}

#[test]
fn recovery_restores_each_node_to_its_own_top() {
    // Loose provision: after any early excursions, a long run should end
    // with every node at (or near) its own ladder's top.
    let mut spec = mixed_spec(4, 4);
    spec.provision_fraction = 0.97;
    let mut sim = managed(spec, PolicyKind::Mpc);
    sim.run_for(SimDuration::from_mins(25));
    let levels = sim.node_levels();
    for (i, level) in levels.iter().enumerate() {
        let top = if i < 4 { 9 } else { 6 };
        assert!(
            level.index() + 1 >= top,
            "node {i} stuck at {} (top {top})",
            level.index()
        );
    }
}

#[test]
fn heterogeneous_runs_are_deterministic() {
    let run = || {
        let mut sim = managed(mixed_spec(5, 3), PolicyKind::Hri);
        sim.run_for(SimDuration::from_mins(10));
        (
            sim.true_power().values().to_vec(),
            sim.commands_applied(),
            sim.finished().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "match the base core count")]
fn mismatched_core_counts_rejected() {
    let mut spec = ClusterSpec::mini(4);
    spec.extra_groups = vec![NodeGroup {
        spec: NodeSpec::mini(), // 4 cores vs the base 12
        count: 2,
    }];
    spec.validate();
}
