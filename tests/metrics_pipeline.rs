//! Cross-crate consistency of the metric pipeline: metrics computed by
//! the experiment runner must equal metrics recomputed from its raw
//! outputs, and basic accounting identities must hold.

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::core::PolicyKind;
use ppc::metrics::{
    cplj::cplj, overspend::overspend_ratio, peak::peak_power_w, performance::performance,
    RunMetrics,
};

#[test]
fn runner_metrics_match_recomputation() {
    let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 8);
    cfg.spec.provision_fraction = 0.70;
    let out = run_experiment(&cfg);

    assert_eq!(out.metrics.p_max_w, peak_power_w(&out.trace));
    assert_eq!(
        out.metrics.overspend,
        overspend_ratio(&out.trace, out.provision_w)
    );
    assert_eq!(out.metrics.performance, performance(&out.records));
    assert_eq!(out.metrics.cplj, cplj(&out.records, cfg.lossless_tolerance));
    assert_eq!(out.metrics.jobs_finished, out.records.len());

    let recomputed = RunMetrics::compute(
        out.label.clone(),
        &out.trace,
        &out.records,
        out.provision_w,
        cfg.lossless_tolerance,
    );
    assert_eq!(recomputed, out.metrics);
}

#[test]
fn job_accounting_identities() {
    let cfg = ExperimentConfig::quick(Some(PolicyKind::Hri), 8);
    let out = run_experiment(&cfg);
    for r in &out.records {
        assert!(r.actual_secs > 0.0);
        assert!(r.baseline_secs > 0.0);
        assert!(r.finished_at > r.started_at);
        assert!(r.started_at >= r.submitted_at);
        // Actual time can never beat the full-speed baseline by more than
        // the millisecond timestamp resolution.
        assert!(r.actual_secs >= r.baseline_secs - 0.002, "{:?}", r.id);
        // Throttled time is bounded by the job's wall time.
        assert!(r.throttled_secs <= r.actual_secs + 1.0);
        assert!(r.node_count > 0 && r.node_count <= 8);
    }
}

#[test]
fn trace_accounting_identities() {
    let cfg = ExperimentConfig::quick(None, 8);
    let out = run_experiment(&cfg);
    let trace = &out.trace;
    assert!(trace.len() > 100);
    // One sample per tick over the measurement window.
    let span = trace.span().unwrap();
    assert_eq!(trace.len() as u64, span.as_millis() / 1000 + 1);
    // Power stays inside the hardware envelope: between all-idle-lowest
    // and the theoretical maximum.
    let floor = 8.0 * 140.0;
    let ceil = cfg.spec.theoretical_max_w();
    for (_, p) in trace.iter() {
        assert!(
            p >= floor && p <= ceil,
            "power {p} outside [{floor}, {ceil}]"
        );
    }
}

#[test]
fn normalization_against_self_is_unity() {
    let cfg = ExperimentConfig::quick(Some(PolicyKind::Bfp), 8);
    let out = run_experiment(&cfg);
    let n = out.metrics.normalize_against(&out.metrics);
    assert!((n.performance - 1.0).abs() < 1e-12);
    assert!((n.p_max - 1.0).abs() < 1e-12);
    assert!((n.energy - 1.0).abs() < 1e-12);
}
