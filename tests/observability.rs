//! Observability extensions end-to-end: the event journal, the thermal
//! model, history-backed windowed rates, and the `ppc-obs` tracing layer
//! (span/metrics fingerprints, flight recorder, exporters).

use ppc::cluster::spec::NodeGroup;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc::node::spec::NodeSpec;
use ppc::simkit::{RngFactory, Severity, SimDuration, WorkerPool};
use ppc::telemetry::{Collector, NodeSample, PowerHistory};
use std::collections::BTreeMap;
use std::sync::Arc;

fn managed(mut spec: ClusterSpec, provision: f64) -> ClusterSim {
    spec.provision_fraction = provision;
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid");
    ClusterSim::new(spec).with_manager(manager)
}

#[test]
fn journal_records_job_lifecycle_and_state_flips() {
    let mut sim = managed(ClusterSpec::mini(6), 0.60);
    sim.run_for(SimDuration::from_mins(15));
    let journal = sim.journal();
    assert!(!journal.is_empty());
    let starts = journal
        .by_category("job")
        .filter(|e| e.message.contains("started"))
        .count();
    let finishes = journal
        .by_category("job")
        .filter(|e| e.message.contains("finished"))
        .count();
    assert!(starts > 10, "starts={starts}");
    assert!(finishes > 5, "finishes={finishes}");
    assert!(
        finishes <= starts,
        "cannot finish more jobs than started ({finishes} > {starts})"
    );
    // Under 60% provision the state must have flipped at least once, and
    // red entries are WARN severity.
    let flips = journal.by_category("state").count();
    assert!(flips >= 1);
    for e in journal.by_category("state") {
        if e.message.contains("red") {
            assert_eq!(e.severity, Severity::Warn);
        }
    }
    // Events are time-ordered.
    let times: Vec<_> = journal.iter().map(|e| e.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn thermal_cluster_tracks_temperature_and_failure_integral() {
    let spec = ClusterSpec {
        node_spec: NodeSpec::tianhe_1a_thermal(),
        ..ClusterSpec::mini(4)
    };
    let mut sim = ClusterSim::new(spec);
    sim.run_for(SimDuration::from_mins(30));
    let peak = sim.peak_temperature_c().expect("thermal enabled");
    assert!(
        (25.0..90.0).contains(&peak),
        "peak temperature {peak} outside the physical envelope"
    );
    let integral = sim.failure_rate_integral().expect("thermal enabled");
    let wall = sim.now().as_secs_f64();
    // Running warmer than ambient ⇒ mean failure rate above 1×; bounded by
    // the 2^((T_max−T_amb)/10) ceiling.
    assert!(integral > wall, "integral {integral} ≤ wall {wall}");
    assert!(integral < wall * 2f64.powf((peak - 25.0) / 10.0) + 1.0);
    // A plain cluster reports None.
    let mut plain = ClusterSim::new(ClusterSpec::mini(4));
    plain.run_for(SimDuration::from_secs(10));
    assert_eq!(plain.peak_temperature_c(), None);
    assert_eq!(plain.failure_rate_integral(), None);
}

#[test]
fn mixed_thermal_and_plain_partitions_account_only_thermal_nodes() {
    let spec = ClusterSpec {
        node_spec: NodeSpec::tianhe_1a(),
        extra_groups: vec![NodeGroup {
            spec: NodeSpec::tianhe_1a_thermal(),
            count: 2,
        }],
        ..ClusterSpec::mini(4)
    };
    let mut sim = ClusterSim::new(spec);
    sim.run_for(SimDuration::from_mins(10));
    // Thermal accounting is live because *some* nodes have the model.
    assert!(sim.peak_temperature_c().is_some());
    assert!(sim.failure_rate_integral().unwrap() > 0.0);
}

#[test]
fn history_backed_windowed_rates_smooth_single_interval_noise() {
    use ppc::node::{Level, NodeId, OperatingState};
    use ppc::simkit::SimTime;
    let mut c = Collector::new().with_history(8);
    // A sawtooth: alternating ±20% around a rising trend.
    let powers = [200.0, 245.0, 230.0, 280.0, 260.0, 320.0];
    for (t, &p) in powers.iter().enumerate() {
        c.ingest(NodeSample {
            node: NodeId(1),
            at: SimTime::from_secs(t as u64),
            state: OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            level: Level::new(9),
            power_w: p,
        });
    }
    let instantaneous = c.power_rate_of(NodeId(1)).unwrap();
    let windowed = c.windowed_rate_of(NodeId(1), 5).unwrap();
    // The 5-interval window sees the clean +60% trend; the single-interval
    // rate is dominated by the last sawtooth swing.
    assert!((windowed - 0.6).abs() < 1e-9, "windowed={windowed}");
    assert!((instantaneous - (320.0 - 260.0) / 260.0).abs() < 1e-9);

    // PowerHistory standalone behaves identically.
    let mut h = PowerHistory::new(8);
    for (t, &p) in powers.iter().enumerate() {
        h.push(SimTime::from_secs(t as u64), p);
    }
    assert_eq!(h.windowed_rate(5), Some(windowed));
}

/// The determinism gate's scenario in miniature: managed, faulted, tight
/// provision, zero inline threshold so the worker pool actually fans out.
fn faulted_managed(workers: usize) -> ClusterSim {
    const NODES: u32 = 8;
    const RUN_SECS: u64 = 400;
    let mut spec = ClusterSpec::mini(NODES);
    spec.provision_fraction = 0.60;
    let rates = FaultRates {
        crash_per_node_hour: 6.0,
        reboot_mean_secs: 45.0,
        hang_per_node_hour: 6.0,
        silence_per_node_hour: 8.0,
        partition_per_hour: 10.0,
        partition_width: 4,
        ..FaultRates::default()
    };
    let schedule = FaultSchedule::generate(
        &rates,
        NODES,
        SimDuration::from_secs(RUN_SECS),
        &RngFactory::new(spec.seed),
    );
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid manager");
    let mut sim = ClusterSim::new(spec)
        .with_manager(manager)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(Arc::new(WorkerPool::new(workers).with_inline_threshold(0)));
    sim.run_for(SimDuration::from_secs(RUN_SECS));
    sim
}

#[test]
fn span_and_metrics_fingerprints_pin_across_worker_widths() {
    let narrow = faulted_managed(1);
    let wide = faulted_managed(8);
    let (rn, rw) = (narrow.obs().report(), wide.obs().report());
    assert!(rn.spans_closed > 0, "tracing must have recorded spans");
    assert!(!rn.metrics.is_empty(), "registry must hold instruments");
    assert_eq!(
        rn.span_fingerprint, rw.span_fingerprint,
        "span tree must be bit-identical at pool widths 1 and 8"
    );
    assert_eq!(
        rn.metrics_fingerprint, rw.metrics_fingerprint,
        "metrics registry must be bit-identical at pool widths 1 and 8"
    );
    // The full reports — every attribute, bucket count and flight
    // snapshot — must agree too, not just the hashes.
    assert_eq!(rn.metrics, rw.metrics);
    assert_eq!(rn.flight, rw.flight);
}

#[test]
fn flight_recorder_dumps_on_first_red_entry() {
    let mut sim = managed(ClusterSpec::mini(6), 0.55);
    sim.run_for(SimDuration::from_mins(15));
    let report = sim.obs().report();
    let red: Vec<_> = report
        .flight
        .iter()
        .filter(|s| s.reason == "red-entry")
        .collect();
    assert!(
        !red.is_empty(),
        "a 55%-provisioned cluster must enter Red and trip the recorder"
    );
    let snap = red[0];
    assert!(!snap.spans.is_empty(), "snapshot must carry recent spans");
    assert!(!snap.metrics.is_empty(), "snapshot must carry the registry");
    // The snapshot includes the cycle that flipped Red: its root span
    // closed before the trigger, so the tail must contain it.
    assert!(
        snap.spans.iter().any(|s| s.name == "cycle"),
        "snapshot tail must include the triggering control cycle"
    );
}

#[test]
fn exports_validate_and_cover_every_cycle_stage() {
    let sim = faulted_managed(1);
    let obs = sim.obs();

    // Every control cycle produced one root span and one span per stage.
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for s in obs.spans.iter() {
        *by_name.entry(s.name).or_insert(0) += 1;
    }
    let cycles = by_name.get("cycle").copied().unwrap_or(0);
    assert!(cycles > 100, "expected hundreds of control cycles");
    for stage in [
        "sample", "ingest", "observe", "classify", "capping", "actuate",
    ] {
        let n = by_name.get(stage).copied().unwrap_or(0);
        assert_eq!(n, cycles, "stage `{stage}`: {n} spans for {cycles} cycles");
    }

    // JSONL round-trips through the CI schema validator.
    let stream = ppc::obs::jsonl(&obs.spans, &obs.metrics);
    let summary = ppc::obs::validate_jsonl(&stream).expect("generated JSONL must validate");
    assert_eq!(summary.meta_lines, 1);
    assert_eq!(summary.span_lines, obs.spans.len());
    assert_eq!(summary.metric_lines, obs.metrics.len());

    // The Chrome trace is one JSON document with a complete ("ph":"X")
    // event per closed span, microsecond-ordered for Perfetto.
    let chrome = ppc::obs::chrome_trace(&obs.spans);
    let parsed: serde_json::Value =
        serde_json::from_str(&chrome).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // One process_name metadata event plus one complete event per span.
    assert_eq!(events.len(), obs.spans.len() + 1);

    // Prometheus text: every instrument surfaced with HELP/TYPE headers.
    let prom = ppc::obs::prometheus(&obs.metrics);
    for m in &obs.metrics.dump() {
        assert!(prom.contains(m.name.as_str()), "missing {}", m.name);
    }
    assert_eq!(
        prom.matches("# TYPE").count(),
        obs.metrics.len(),
        "one TYPE header per instrument"
    );
}
