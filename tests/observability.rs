//! Observability extensions end-to-end: the event journal, the thermal
//! model, and history-backed windowed rates.

use ppc::cluster::spec::NodeGroup;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::node::spec::NodeSpec;
use ppc::simkit::{Severity, SimDuration};
use ppc::telemetry::{Collector, NodeSample, PowerHistory};

fn managed(mut spec: ClusterSpec, provision: f64) -> ClusterSim {
    spec.provision_fraction = provision;
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid");
    ClusterSim::new(spec).with_manager(manager)
}

#[test]
fn journal_records_job_lifecycle_and_state_flips() {
    let mut sim = managed(ClusterSpec::mini(6), 0.60);
    sim.run_for(SimDuration::from_mins(15));
    let journal = sim.journal();
    assert!(!journal.is_empty());
    let starts = journal
        .by_category("job")
        .filter(|e| e.message.contains("started"))
        .count();
    let finishes = journal
        .by_category("job")
        .filter(|e| e.message.contains("finished"))
        .count();
    assert!(starts > 10, "starts={starts}");
    assert!(finishes > 5, "finishes={finishes}");
    assert!(
        finishes <= starts,
        "cannot finish more jobs than started ({finishes} > {starts})"
    );
    // Under 60% provision the state must have flipped at least once, and
    // red entries are WARN severity.
    let flips = journal.by_category("state").count();
    assert!(flips >= 1);
    for e in journal.by_category("state") {
        if e.message.contains("red") {
            assert_eq!(e.severity, Severity::Warn);
        }
    }
    // Events are time-ordered.
    let times: Vec<_> = journal.iter().map(|e| e.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn thermal_cluster_tracks_temperature_and_failure_integral() {
    let spec = ClusterSpec {
        node_spec: NodeSpec::tianhe_1a_thermal(),
        ..ClusterSpec::mini(4)
    };
    let mut sim = ClusterSim::new(spec);
    sim.run_for(SimDuration::from_mins(30));
    let peak = sim.peak_temperature_c().expect("thermal enabled");
    assert!(
        (25.0..90.0).contains(&peak),
        "peak temperature {peak} outside the physical envelope"
    );
    let integral = sim.failure_rate_integral().expect("thermal enabled");
    let wall = sim.now().as_secs_f64();
    // Running warmer than ambient ⇒ mean failure rate above 1×; bounded by
    // the 2^((T_max−T_amb)/10) ceiling.
    assert!(integral > wall, "integral {integral} ≤ wall {wall}");
    assert!(integral < wall * 2f64.powf((peak - 25.0) / 10.0) + 1.0);
    // A plain cluster reports None.
    let mut plain = ClusterSim::new(ClusterSpec::mini(4));
    plain.run_for(SimDuration::from_secs(10));
    assert_eq!(plain.peak_temperature_c(), None);
    assert_eq!(plain.failure_rate_integral(), None);
}

#[test]
fn mixed_thermal_and_plain_partitions_account_only_thermal_nodes() {
    let spec = ClusterSpec {
        node_spec: NodeSpec::tianhe_1a(),
        extra_groups: vec![NodeGroup {
            spec: NodeSpec::tianhe_1a_thermal(),
            count: 2,
        }],
        ..ClusterSpec::mini(4)
    };
    let mut sim = ClusterSim::new(spec);
    sim.run_for(SimDuration::from_mins(10));
    // Thermal accounting is live because *some* nodes have the model.
    assert!(sim.peak_temperature_c().is_some());
    assert!(sim.failure_rate_integral().unwrap() > 0.0);
}

#[test]
fn history_backed_windowed_rates_smooth_single_interval_noise() {
    use ppc::node::{Level, NodeId, OperatingState};
    use ppc::simkit::SimTime;
    let mut c = Collector::new().with_history(8);
    // A sawtooth: alternating ±20% around a rising trend.
    let powers = [200.0, 245.0, 230.0, 280.0, 260.0, 320.0];
    for (t, &p) in powers.iter().enumerate() {
        c.ingest(NodeSample {
            node: NodeId(1),
            at: SimTime::from_secs(t as u64),
            state: OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            level: Level::new(9),
            power_w: p,
        });
    }
    let instantaneous = c.power_rate_of(NodeId(1)).unwrap();
    let windowed = c.windowed_rate_of(NodeId(1), 5).unwrap();
    // The 5-interval window sees the clean +60% trend; the single-interval
    // rate is dominated by the last sawtooth swing.
    assert!((windowed - 0.6).abs() < 1e-9, "windowed={windowed}");
    assert!((instantaneous - (320.0 - 260.0) / 260.0).abs() < 1e-9);

    // PowerHistory standalone behaves identically.
    let mut h = PowerHistory::new(8);
    for (t, &p) in powers.iter().enumerate() {
        h.push(SimTime::from_secs(t as u64), p);
    }
    assert_eq!(h.windowed_rate(5), Some(windowed));
}
