//! Every selection policy, end to end: each must cap safely and exhibit
//! its documented character.

use ppc::cluster::experiment::{run_experiment, ExperimentConfig, ExperimentOutcome};
use ppc::core::PolicyKind;

fn run(policy: Option<PolicyKind>) -> ExperimentOutcome {
    let mut cfg = ExperimentConfig::quick(policy, 12);
    cfg.spec.provision_fraction = 0.68;
    run_experiment(&cfg)
}

#[test]
fn all_policies_cap_and_none_collapses() {
    let base = run(None);
    for policy in PolicyKind::ALL {
        let out = run(Some(policy));
        let m = &out.metrics;
        assert!(
            m.p_max_w <= base.metrics.p_max_w + 1.0,
            "{policy}: peak must not grow ({} vs {})",
            m.p_max_w,
            base.metrics.p_max_w
        );
        assert!(
            m.overspend <= base.metrics.overspend + 1e-12,
            "{policy}: overspend must not grow"
        );
        assert!(
            m.performance > 0.70,
            "{policy}: performance collapsed to {}",
            m.performance
        );
        assert!(
            out.manager_stats.unwrap().commands_issued > 0,
            "{policy}: never throttled on a tight provision"
        );
        assert!(m.jobs_finished > 10, "{policy}: workload stalled");
    }
}

#[test]
fn collection_policies_cut_deeper_per_cycle() {
    // MPC-C covers the whole deficit each Yellow cycle, MPC only one job's
    // worth: per Yellow cycle, MPC-C must issue at least as many commands.
    let mpc = run(Some(PolicyKind::Mpc));
    let mpc_c = run(Some(PolicyKind::MpcC));
    let per_cycle = |o: &ExperimentOutcome| {
        let s = o.manager_stats.unwrap();
        s.commands_issued as f64 / s.yellow_cycles.max(1) as f64
    };
    assert!(
        per_cycle(&mpc_c) >= per_cycle(&mpc) * 0.9,
        "MPC-C per-yellow-cycle commands ({:.1}) should not be fewer than MPC's ({:.1})",
        per_cycle(&mpc_c),
        per_cycle(&mpc)
    );
}

#[test]
fn paper_ordering_mpc_vs_hri() {
    let base = run(None);
    let mpc = run(Some(PolicyKind::Mpc));
    let hri = run(Some(PolicyKind::Hri));
    // The paper's Figure 7 ordering: MPC reduces ΔP×T at least as much as
    // HRI (73% vs 66%) — allow equality wiggle on the small test cluster.
    if base.metrics.overspend > 0.0 {
        let red_mpc = 1.0 - mpc.metrics.overspend / base.metrics.overspend;
        let red_hri = 1.0 - hri.metrics.overspend / base.metrics.overspend;
        assert!(
            red_mpc >= red_hri - 0.10,
            "MPC reduction {red_mpc:.3} should not trail HRI {red_hri:.3} materially"
        );
    }
}

#[test]
fn policy_kind_surface_is_stable() {
    // The config surface documents exactly these names: the paper's seven
    // plus the two related-work baselines.
    let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        vec!["MPC", "MPC-C", "LPC", "LPC-C", "BFP", "HRI", "HRI-C", "UNIFORM", "RR"]
    );
    let paper: Vec<&str> = PolicyKind::PAPER_FAMILY.iter().map(|k| k.name()).collect();
    assert_eq!(
        paper,
        vec!["MPC", "MPC-C", "LPC", "LPC-C", "BFP", "HRI", "HRI-C"]
    );
    for k in PolicyKind::ALL {
        assert_eq!(k.to_string().parse::<PolicyKind>().unwrap(), k);
    }
}

#[test]
fn baselines_have_their_predicted_characters() {
    let base = run(None);
    let mpc = run(Some(PolicyKind::Mpc));
    let uniform = run(Some(PolicyKind::Uniform));
    let rr = run(Some(PolicyKind::RoundRobin));
    // UNIFORM throttles everything: its CPLJ cannot beat MPC's.
    assert!(
        uniform.metrics.cplj_fraction <= mpc.metrics.cplj_fraction + 0.02,
        "uniform {:.3} vs mpc {:.3}",
        uniform.metrics.cplj_fraction,
        mpc.metrics.cplj_fraction
    );
    // Both baselines still cap safely.
    for out in [&uniform, &rr] {
        assert!(out.metrics.p_max_w <= base.metrics.p_max_w + 1.0);
        assert!(out.metrics.overspend <= base.metrics.overspend + 1e-12);
    }
}
