//! Safety invariants of the capping architecture under pressure.

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::node::{Level, NodeId};
use ppc::simkit::SimDuration;

fn pressured_sim(policy: PolicyKind, privileged: Vec<NodeId>) -> ClusterSim {
    let mut spec = ClusterSpec::mini(8);
    spec.provision_fraction = 0.55; // brutally tight: constant pressure
    spec.privileged = privileged.clone();
    let sets = NodeSets::new(spec.node_ids(), privileged);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), policy)
    };
    let manager = PowerManager::new(config, sets).expect("valid");
    ClusterSim::new(spec).with_manager(manager)
}

#[test]
fn levels_always_stay_on_the_ladder() {
    for policy in [PolicyKind::Mpc, PolicyKind::MpcC, PolicyKind::Hri] {
        let mut sim = pressured_sim(policy, vec![]);
        for _ in 0..900 {
            sim.step();
            for level in sim.node_levels() {
                assert!(level.index() < 10, "{policy:?}: level off the ladder");
            }
        }
        assert!(sim.commands_applied() > 0, "{policy:?} must have throttled");
    }
}

#[test]
fn privileged_nodes_are_never_throttled() {
    let privileged = vec![NodeId(0), NodeId(3)];
    let mut sim = pressured_sim(PolicyKind::MpcC, privileged.clone());
    for _ in 0..900 {
        sim.step();
        let levels = sim.node_levels();
        for &p in &privileged {
            assert_eq!(
                levels[p.0 as usize],
                Level::new(9),
                "privileged node {p} must stay at its highest level"
            );
        }
    }
}

#[test]
fn red_state_floors_every_candidate_within_a_cycle() {
    let mut sim = pressured_sim(PolicyKind::Mpc, vec![]);
    // With provision at 55% of theoretical and a busy cluster, the first
    // measured cycles are deep red; all nodes must hit the floor quickly.
    sim.run_for(SimDuration::from_secs(120));
    let red_seen = sim
        .state_log()
        .iter()
        .any(|(_, s)| *s == ppc::core::PowerState::Red);
    assert!(red_seen, "this provision must drive the system red");
    // After sustained pressure, power is pulled down hard: every node
    // should have been degraded at some point (commands ≫ node count).
    assert!(sim.commands_applied() >= 8);
}

#[test]
fn recovery_returns_nodes_to_top_after_pressure_ends() {
    // Start tight, then lift the candidate set cap... instead: run a
    // moderate provision where pressure is intermittent, and verify that
    // after a long green stretch all nodes return to the top level.
    let mut spec = ClusterSpec::mini(4);
    spec.provision_fraction = 0.95; // loose: yellow is rare
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        t_g_cycles: 5,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid");
    let mut sim = ClusterSim::new(spec).with_manager(manager);
    sim.run_for(SimDuration::from_mins(20));
    // Loose provision ⇒ by the end of a long run the recovery path has
    // restored everything it degraded (if it ever degraded).
    let stats = sim.manager().unwrap().stats();
    if stats.yellow_cycles + stats.red_cycles == 0 {
        assert_eq!(sim.commands_applied(), 0);
    }
    let degraded_now = sim
        .node_levels()
        .iter()
        .filter(|&&l| l < Level::new(9))
        .count();
    assert!(
        degraded_now <= 1,
        "long green stretches must recover degraded nodes (still degraded: {degraded_now})"
    );
}

#[test]
fn capping_never_pushes_power_up() {
    let base = {
        let mut spec = ClusterSpec::mini(8);
        spec.provision_fraction = 0.55;
        let mut sim = ClusterSim::new(spec);
        sim.run_for(SimDuration::from_mins(15));
        sim.true_power()
            .integrate(ppc::simkit::series::Interp::Step)
    };
    let capped = {
        let mut sim = pressured_sim(PolicyKind::Mpc, vec![]);
        sim.run_for(SimDuration::from_mins(15));
        sim.true_power()
            .integrate(ppc::simkit::series::Interp::Step)
    };
    assert!(
        capped < base,
        "total energy under heavy capping ({capped:.0} J) must be below uncapped ({base:.0} J)"
    );
}
