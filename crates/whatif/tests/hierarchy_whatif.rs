//! What-if regression tests on the *hierarchical* control plane: a
//! snapshot branched from a hierarchical sim replays bit-identically to
//! the fresh same-seed run, and a rack-scoped `DropNodes` query follows
//! the exact trajectory of decommissioning that rack by hand — which
//! drains the rack's delegated budget to its row.

use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{HierarchicalManager, ManagerConfig, PolicyKind, Topology};
use ppc_faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc_simkit::{RngFactory, SimDuration};
use ppc_whatif::engine::evaluate;
use ppc_whatif::{ClusterSnapshot, WhatIfEngine, WhatIfQuery, WhatIfRequest};
use std::collections::BTreeSet;

const NODES: u32 = 8;
const RUN_SECS: u64 = 240;

/// A managed, faulted 2-rows × 2-racks × 2-nodes hierarchical cluster.
fn hier_sim(faulted: bool) -> ClusterSim {
    let topology = Topology::new(NODES, 2, 2).expect("valid topology");
    let mut spec = ClusterSpec::mini(NODES);
    spec.provision_fraction = 0.60;
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let hier = HierarchicalManager::new(config, topology, &BTreeSet::new(), spec.node_weights_w())
        .expect("valid hierarchy");
    let sim = ClusterSim::new(spec);
    let sim = if faulted {
        let rates = FaultRates {
            crash_per_node_hour: 12.0,
            reboot_mean_secs: 30.0,
            silence_per_node_hour: 8.0,
            ..FaultRates::default()
        };
        let schedule = FaultSchedule::generate(
            &rates,
            NODES,
            SimDuration::from_secs(RUN_SECS),
            &RngFactory::new(13),
        );
        sim.with_faults(FaultInjection::new(schedule))
    } else {
        sim
    };
    sim.with_hierarchy(hier)
}

fn digest(sim: &ClusterSim) -> (u64, u64, u64, u64) {
    (
        sim.journal().fingerprint(),
        sim.true_power().fingerprint(),
        sim.span_fingerprint(),
        sim.metrics_fingerprint(),
    )
}

/// Capture-and-branch on a hierarchical sim is bit-identical to the
/// uninterrupted fresh run with the same seed — all four fingerprints.
#[test]
fn hierarchical_branch_matches_fresh_run() {
    let half = RUN_SECS / 2;
    let mut fresh = hier_sim(true);
    fresh.run_for(SimDuration::from_secs(RUN_SECS));
    let want = digest(&fresh);

    let mut original = hier_sim(true);
    original.run_for(SimDuration::from_secs(half));
    let snapshot = ClusterSnapshot::capture(&original);
    // Perturb the original past the capture point: a branch that secretly
    // shared hierarchy state (sub-managers, budgets) would diverge.
    original.run_for(SimDuration::from_secs(30));
    let mut branch = snapshot.branch();
    branch.run_for(SimDuration::from_secs(RUN_SECS - half));
    assert_eq!(
        digest(&branch),
        want,
        "hierarchical branch diverged from the fresh same-seed run"
    );
}

/// A rack-scoped `DropNodes` answers exactly like hand-decommissioning
/// that rack on a branch of the same snapshot — and doing so drains the
/// rack's delegated budget to its row, the sibling reclaiming it.
#[test]
fn rack_scoped_drop_drains_the_rack_budget() {
    let mut sim = hier_sim(false);
    sim.run_for(SimDuration::from_secs(60));
    let snapshot = ClusterSnapshot::capture(&sim);
    let t0 = snapshot.now();

    let horizon = 40u64;
    let answer = evaluate(
        snapshot.branch(),
        &WhatIfRequest::new(
            WhatIfQuery::DropNodes {
                count: 2,
                rack: Some(0),
            },
            horizon,
        ),
    );
    assert_eq!(answer.deny_reason, None, "rack-scoped drop applies");

    // Reproduce the query by hand on another branch: DropNodes picks the
    // rack's victims highest-id-first, so decommission 1 then 0.
    let mut manual = snapshot.branch();
    for n in [1u32, 0] {
        manual.decommission_node(ppc_node::NodeId(n));
    }
    for _ in 0..horizon {
        manual.step();
    }
    let h = manual.hierarchy().expect("hierarchy attached");
    assert_eq!(
        h.rack_budget_w()[0],
        0.0,
        "dead rack 0 still holds a budget"
    );
    assert!(
        h.rack_budget_w()[1] > 0.9 * h.row_budget_w()[0],
        "row sibling did not reclaim the drained budget"
    );
    // The query's projection is the same trajectory, bit for bit.
    let trace = manual.true_power();
    assert_eq!(
        answer.peak_power_w.to_bits(),
        trace.since(t0).max().unwrap_or(0.0).to_bits(),
        "rack-scoped DropNodes diverged from the hand-applied equivalent"
    );
}

/// Rack scoping is rejected without a hierarchy and for bad rack ids.
#[test]
fn rack_scoped_drop_is_validated() {
    let mut flat = ClusterSim::new(ClusterSpec::mini(4));
    flat.run_for(SimDuration::from_secs(30));
    let mut engine = WhatIfEngine::new(ClusterSnapshot::capture(&flat));
    let answers = engine.run_batch(&[WhatIfRequest::new(
        WhatIfQuery::DropNodes {
            count: 1,
            rack: Some(0),
        },
        10,
    )]);
    let reason = answers[0].deny_reason.as_deref().unwrap_or("");
    assert!(
        reason.contains("hierarchical"),
        "flat sim accepted a rack-scoped drop: {reason:?}"
    );

    let mut sim = hier_sim(false);
    sim.run_for(SimDuration::from_secs(30));
    let mut engine = WhatIfEngine::new(ClusterSnapshot::capture(&sim));
    let answers = engine.run_batch(&[WhatIfRequest::new(
        WhatIfQuery::DropNodes {
            count: 1,
            rack: Some(99),
        },
        10,
    )]);
    let reason = answers[0].deny_reason.as_deref().unwrap_or("");
    assert!(
        reason.contains("out of range"),
        "bad rack id accepted: {reason:?}"
    );
}
