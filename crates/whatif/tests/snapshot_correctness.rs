//! Snapshot/branch correctness: the tentpole contract of `ppc-whatif`.
//!
//! A branched run must be bit-identical to a fresh same-seed run driven
//! to the same point — proven by all four determinism fingerprints
//! (journal, power trace, spans, metrics) — at pool widths 1 and 8,
//! through serde round-trips of the recipe form, under an active fault
//! schedule, and with the journal's ring-eviction counter intact.

use ppc_cluster::ExperimentConfig;
use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc_simkit::{RngFactory, SimDuration, WorkerPool};
use ppc_whatif::{
    BaseScenario, ClusterSnapshot, JobSpec, WhatIfEngine, WhatIfQuery, WhatIfRequest,
};
use ppc_workload::{Class, NpbApp};
use std::sync::Arc;

const NODES: u32 = 8;
const RUN_SECS: u64 = 300;

/// All four determinism fingerprints plus the countable outcomes.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    journal: u64,
    trace: u64,
    spans: u64,
    metrics: u64,
    finished: usize,
    commands: u64,
}

fn digest(sim: &ClusterSim) -> Digest {
    Digest {
        journal: sim.journal().fingerprint(),
        trace: sim.true_power().fingerprint(),
        spans: sim.span_fingerprint(),
        metrics: sim.metrics_fingerprint(),
        finished: sim.finished().len(),
        commands: sim.commands_applied(),
    }
}

/// A managed, faulted, tightly provisioned mini cluster — every subsystem
/// the snapshot must capture is active.
fn faulted_sim(workers: usize) -> ClusterSim {
    let mut spec = ClusterSpec::mini(NODES);
    spec.provision_fraction = 0.60;
    let rates = FaultRates {
        crash_per_node_hour: 12.0,
        reboot_mean_secs: 30.0,
        silence_per_node_hour: 8.0,
        ..FaultRates::default()
    };
    let schedule = FaultSchedule::generate(
        &rates,
        NODES,
        SimDuration::from_secs(RUN_SECS),
        &RngFactory::new(spec.seed),
    );
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
    ClusterSim::new(spec)
        .with_manager(manager)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(pool)
}

/// Branch-vs-fresh: a snapshot taken halfway and driven to the end must
/// be bit-identical to the uninterrupted run — even after the original
/// is perturbed past the capture point — at widths 1 and 8.
#[test]
fn branch_matches_fresh_run_at_pool_widths_1_and_8() {
    for workers in [1usize, 8] {
        let mut fresh = faulted_sim(workers);
        fresh.run_for(SimDuration::from_secs(RUN_SECS));
        let reference = digest(&fresh);

        let mut original = faulted_sim(workers);
        original.run_for(SimDuration::from_secs(RUN_SECS / 2));
        let snapshot = ClusterSnapshot::capture(&original);
        // Drive the original past the capture point: a branch secretly
        // sharing state with it would diverge.
        original.run_for(SimDuration::from_secs(25));
        let mut branch = snapshot.branch();
        branch.run_for(SimDuration::from_secs(RUN_SECS / 2));
        assert_eq!(
            digest(&branch),
            reference,
            "branched run diverged from the fresh run at width {workers}"
        );
    }
}

/// Two sibling branches of one snapshot are independent: mutating one
/// (decommission, injection) leaves the other bit-identical to the
/// untouched continuation.
#[test]
fn sibling_branches_are_isolated_under_faults() {
    let mut sim = faulted_sim(1);
    sim.run_for(SimDuration::from_secs(RUN_SECS / 2));
    let snapshot = ClusterSnapshot::capture(&sim);
    assert!(
        snapshot
            .base()
            .journal()
            .iter()
            .any(|e| e.category == "fault"),
        "capture point must sit inside an active fault schedule"
    );

    let mut mutated = snapshot.branch();
    mutated.decommission_node(ppc_node::NodeId(NODES - 1));
    mutated.inject_job(NpbApp::Cg, Class::B, 8, ppc_workload::JobPriority::Normal);
    let mut clean = snapshot.branch();
    mutated.run_for(SimDuration::from_secs(60));
    clean.run_for(SimDuration::from_secs(60));

    sim.run_for(SimDuration::from_secs(60));
    assert_eq!(
        digest(&clean),
        digest(&sim),
        "clean branch must match the continued original"
    );
    assert_ne!(
        digest(&mutated).trace,
        digest(&sim).trace,
        "the mutation must actually change the mutated branch"
    );
}

/// The recipe form: serde round-trip preserves equality, and two
/// materializations — one of them through JSON — are fingerprint-equal.
#[test]
fn base_scenario_round_trips_and_materializes_identically() {
    let mut config = ExperimentConfig::quick(Some(PolicyKind::Mpc), NODES);
    config.spec.provision_fraction = 0.65;
    let scenario = BaseScenario::new(config, 150);

    let json = serde_json::to_string(&scenario).expect("serialize scenario");
    let back: BaseScenario = serde_json::from_str(&json).expect("deserialize scenario");
    assert_eq!(back, scenario, "serde round trip must preserve the recipe");

    let a = scenario.materialize();
    let b = back.materialize();
    assert_eq!(a.tick(), 150);
    assert_eq!(
        digest(a.base()),
        digest(b.base()),
        "rehydrated snapshots must be fingerprint-equal"
    );

    // And the pool used for rehydration must not matter either.
    let pooled = back.materialize_with(Some(Arc::new(WorkerPool::new(8).with_inline_threshold(0))));
    assert_eq!(digest(a.base()), digest(pooled.base()));
}

/// `Journal::dropped` travels with the snapshot: branch from a run whose
/// ring has already evicted events, and both the counter and the
/// continued journal stream replay exactly.
#[test]
fn journal_dropped_counter_survives_branching() {
    let build = || {
        let mut spec = ClusterSpec::mini(NODES);
        spec.provision_fraction = 0.60;
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).expect("valid config");
        // A tiny ring: steady-state management overflows it quickly.
        ClusterSim::new(spec)
            .with_manager(manager)
            .with_journal_capacity(16)
    };
    let mut fresh = build();
    fresh.run_for(SimDuration::from_secs(RUN_SECS));
    let reference = digest(&fresh);

    let mut original = build();
    original.run_for(SimDuration::from_secs(RUN_SECS / 2));
    let dropped_at_capture = original.journal().dropped();
    assert!(
        dropped_at_capture > 0,
        "the ring must already have evicted events at the capture point"
    );
    let snapshot = ClusterSnapshot::capture(&original);
    assert_eq!(snapshot.base().journal().dropped(), dropped_at_capture);

    let mut branch = snapshot.branch();
    assert_eq!(branch.journal().dropped(), dropped_at_capture);
    branch.run_for(SimDuration::from_secs(RUN_SECS / 2));
    assert_eq!(
        digest(&branch),
        reference,
        "journal (dropped counter included) must replay bit-identically"
    );
    assert_eq!(branch.journal().dropped(), fresh.journal().dropped());
}

/// The engine's batched fan-out is width-invariant: answers and both
/// engine fingerprints are identical serving sequentially, on a width-1
/// pool, and on a width-8 pool.
#[test]
fn engine_batches_are_pool_width_invariant() {
    let mut sim = faulted_sim(1);
    sim.run_for(SimDuration::from_secs(RUN_SECS / 2));
    let snapshot = ClusterSnapshot::capture(&sim);
    let requests = vec![
        WhatIfRequest::new(WhatIfQuery::Baseline, 40),
        WhatIfRequest::new(
            WhatIfQuery::AdmitJobs {
                jobs: vec![JobSpec {
                    app: NpbApp::Lu,
                    class: Class::B,
                    nprocs: 16,
                    critical: false,
                }],
            },
            40,
        ),
        WhatIfRequest::new(
            WhatIfQuery::DropNodes {
                count: 2,
                rack: None,
            },
            40,
        ),
        WhatIfRequest::new(
            WhatIfQuery::SwapPolicy {
                policy: PolicyKind::Hri,
            },
            40,
        ),
        WhatIfRequest::new(
            WhatIfQuery::Compound {
                steps: vec![
                    WhatIfQuery::SetCap {
                        provision_w: snapshot.base().spec().provision_w() * 0.9,
                    },
                    WhatIfQuery::DropNodes {
                        count: 1,
                        rack: None,
                    },
                ],
            },
            40,
        ),
    ];

    let mut sequential = WhatIfEngine::new(snapshot.clone());
    let baseline = sequential.run_batch(&requests);
    for workers in [1usize, 8] {
        let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
        let mut pooled = WhatIfEngine::new(snapshot.clone()).with_worker_pool(pool);
        let answers = pooled.run_batch(&requests);
        assert_eq!(answers, baseline, "answers diverged at width {workers}");
        assert_eq!(pooled.span_fingerprint(), sequential.span_fingerprint());
        assert_eq!(
            pooled.metrics_fingerprint(),
            sequential.metrics_fingerprint()
        );
    }
}
