//! The batched what-if query engine.
//!
//! [`WhatIfEngine`] holds one [`ClusterSnapshot`] and answers fleets of
//! [`WhatIfRequest`]s against it. Each request becomes an independent
//! branch-and-simulate run — [`ClusterSnapshot::branch`], apply the
//! hypothetical mutation, step the horizon, summarize — so a batch fans
//! out over the `simkit` worker pool with no sharing between queries.
//! Results are written into per-query slots and the engine's own
//! observability (a span per query, admitted/denied counters) is
//! recorded serially in request order after the fan-out joins, which
//! keeps the engine's span and metrics fingerprints identical at every
//! pool width.
//!
//! No wall-clock enters this module: answers are functions of simulated
//! time only, and the crate is lint-classified `Deterministic`. Latency
//! measurement belongs to the bench harness (`whatif_serve`).

use crate::query::{WhatIfAnswer, WhatIfQuery, WhatIfRequest};
use crate::snapshot::ClusterSnapshot;
use ppc_cluster::ClusterSim;
use ppc_core::PowerState;
use ppc_node::NodeId;
use ppc_obs::{AttrValue, CounterHandle, MetricsRegistry, SpanRecorder};
use ppc_simkit::series::Interp;
use ppc_simkit::WorkerPool;
use ppc_workload::JobId;
use std::sync::Arc;

/// Completed query spans the engine retains for inspection/fingerprints.
const SPAN_CAPACITY: usize = 4096;

/// Batched what-if evaluation against one cluster snapshot.
pub struct WhatIfEngine {
    snapshot: ClusterSnapshot,
    pool: Option<Arc<WorkerPool>>,
    spans: SpanRecorder,
    metrics: MetricsRegistry,
    queries_total: CounterHandle,
    queries_admitted: CounterHandle,
    queries_denied: CounterHandle,
}

impl WhatIfEngine {
    /// An engine answering queries against `snapshot`, evaluating batches
    /// sequentially until a pool is attached.
    pub fn new(snapshot: ClusterSnapshot) -> Self {
        let mut metrics = MetricsRegistry::new();
        let queries_total = metrics.counter("whatif.queries_total");
        let queries_admitted = metrics.counter("whatif.queries_admitted");
        let queries_denied = metrics.counter("whatif.queries_denied");
        WhatIfEngine {
            snapshot,
            pool: None,
            spans: SpanRecorder::new(SPAN_CAPACITY),
            metrics,
            queries_total,
            queries_admitted,
            queries_denied,
        }
    }

    /// Fans batches out over `pool`. Answers (and the engine's span and
    /// metrics fingerprints) are identical at every pool width.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The snapshot queries branch from.
    pub fn snapshot(&self) -> &ClusterSnapshot {
        &self.snapshot
    }

    /// Evaluates every request as an independent branch of the snapshot
    /// and returns the answers in request order.
    pub fn run_batch(&mut self, requests: &[WhatIfRequest]) -> Vec<WhatIfAnswer> {
        let mut slots: Vec<Option<WhatIfAnswer>> = requests.iter().map(|_| None).collect();
        {
            let snapshot = &self.snapshot;
            let eval = |i: usize, slot: &mut Option<WhatIfAnswer>| {
                *slot = Some(evaluate(snapshot.branch(), &requests[i]));
            };
            match self.pool.as_deref() {
                Some(pool) => pool.for_each_mut(&mut slots, eval),
                None => {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        eval(i, slot);
                    }
                }
            }
        }
        // Serial, request-ordered bookkeeping after the join: the span
        // stream and counters never see fan-out scheduling.
        let at = self.snapshot.now();
        let mut answers = Vec::with_capacity(slots.len());
        for slot in slots {
            // ppc-lint: allow(panic-path): for_each_mut runs the closure exactly once per slot, so every slot is filled
            let answer = slot.expect("every slot filled by the fan-out");
            self.spans.open("whatif.query", at);
            self.spans.attr("kind", AttrValue::Str(answer.query.kind()));
            self.spans
                .attr("horizon_ticks", AttrValue::U64(answer.horizon_ticks));
            self.spans
                .attr("admit", AttrValue::U64(u64::from(answer.admit)));
            self.spans
                .attr("peak_power_w", AttrValue::F64(answer.peak_power_w));
            self.spans
                .attr("alerts_opened", AttrValue::U64(answer.alerts_opened as u64));
            self.spans.close(at);
            self.metrics.inc(self.queries_total, 1);
            if answer.admit {
                self.metrics.inc(self.queries_admitted, 1);
            } else {
                self.metrics.inc(self.queries_denied, 1);
            }
            answers.push(answer);
        }
        answers
    }

    /// Order-sensitive digest of every query span recorded so far.
    pub fn span_fingerprint(&self) -> u64 {
        self.spans.fingerprint()
    }

    /// Digest of the engine's counters.
    pub fn metrics_fingerprint(&self) -> u64 {
        self.metrics.fingerprint()
    }
}

impl std::fmt::Debug for WhatIfEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WhatIfEngine")
            .field("snapshot", &self.snapshot)
            .field("pooled", &self.pool.is_some())
            .finish_non_exhaustive()
    }
}

/// Runs one request on an owned branch: apply the mutation at the branch
/// boundary, project the horizon, summarize the projection.
pub fn evaluate(mut sim: ClusterSim, req: &WhatIfRequest) -> WhatIfAnswer {
    let branch_tick = sim.tick_index();
    let t0 = sim.now();
    let stats0 = sim.control_stats();
    let finished0 = sim.finished().len();
    let alert_events0 = sim.health().slo().events().len();

    let mut injected: Vec<JobId> = Vec::new();
    let deny_reason = apply(&mut sim, &req.query, &mut injected).err();

    for _ in 0..req.horizon_ticks {
        sim.step();
    }

    let provision_w = sim
        .provision_in_force_w()
        .unwrap_or_else(|| sim.spec().provision_w());
    let trace = sim.true_power().since(t0);
    let peak_power_w = trace.max().unwrap_or(0.0);
    let mean_power_w = trace.time_weighted_mean().unwrap_or(0.0);
    let overspend_w_s = trace.integrate_excess_above(provision_w, Interp::Step);

    let cycle_secs = sim.spec().tick.as_secs_f64();
    let mut yellow_secs = 0.0;
    let mut red_secs = 0.0;
    for (at, state) in sim.state_log() {
        if *at <= t0 {
            continue;
        }
        match state {
            PowerState::Yellow => yellow_secs += cycle_secs,
            PowerState::Red => red_secs += cycle_secs,
            PowerState::Green => {}
        }
    }

    let records = &sim.finished()[finished0..];
    let performance = ppc_metrics::performance::performance(records);
    let jobs_finished = records.len();
    let jobs_pending = injected.iter().filter(|&&id| sim.job_is_queued(id)).count();
    let commands_applied = match (sim.control_stats(), stats0) {
        (Some(end), Some(start)) => end.commands_issued - start.commands_issued,
        _ => 0,
    };

    // Health impact: the branch carries the snapshot's health plane, so
    // edges appended past the branch point are the hypothetical's own.
    let slo = sim.health().slo();
    let alerts_opened = slo.events()[alert_events0..]
        .iter()
        .filter(|e| e.edge == ppc_obs::AlertEdge::Open)
        .count();
    let alerts_open_at_horizon = slo.open_alerts();

    let admit = deny_reason.is_none() && red_secs == 0.0 && jobs_pending == 0;
    WhatIfAnswer {
        query: req.query.clone(),
        branch_tick,
        horizon_ticks: req.horizon_ticks,
        admit,
        deny_reason,
        provision_w,
        peak_power_w,
        mean_power_w,
        overspend_w_s,
        yellow_secs,
        red_secs,
        performance,
        jobs_finished,
        jobs_pending,
        commands_applied,
        alerts_opened,
        alerts_open_at_horizon,
    }
}

/// Applies one hypothetical mutation at the branch boundary, recording
/// injected job ids; an `Err` is the query's deny reason.
fn apply(
    sim: &mut ClusterSim,
    query: &WhatIfQuery,
    injected: &mut Vec<JobId>,
) -> Result<(), String> {
    match query {
        WhatIfQuery::Baseline => Ok(()),
        WhatIfQuery::AdmitJobs { jobs } => {
            for spec in jobs {
                injected.push(sim.inject_job(spec.app, spec.class, spec.nprocs, spec.priority()));
            }
            Ok(())
        }
        WhatIfQuery::SetCap { provision_w } => {
            if let Some(mgr) = sim.manager_mut() {
                return mgr
                    .reprovision(*provision_w)
                    .map_err(|e| format!("reprovision rejected: {e}"));
            }
            let h = sim
                .hierarchy_mut()
                .ok_or_else(|| "no power manager attached".to_string())?;
            h.reprovision(*provision_w)
                .map_err(|e| format!("reprovision rejected: {e}"))
        }
        WhatIfQuery::DropNodes { count, rack } => {
            let victims = drop_victims(sim, *count, *rack)?;
            if victims.len() < *count as usize {
                return Err(format!(
                    "only {} droppable nodes (need {count})",
                    victims.len()
                ));
            }
            for n in victims {
                sim.decommission_node(n);
            }
            Ok(())
        }
        WhatIfQuery::SwapPolicy { policy } => {
            if let Some(mgr) = sim.manager_mut() {
                mgr.set_policy(*policy);
                return Ok(());
            }
            let h = sim
                .hierarchy_mut()
                .ok_or_else(|| "no power manager attached".to_string())?;
            h.set_policy(*policy);
            Ok(())
        }
        WhatIfQuery::Compound { steps } => {
            for step in steps {
                apply(sim, step, injected)?;
            }
            Ok(())
        }
    }
}

/// Highest-id nodes eligible for decommissioning: up, and not statically
/// privileged (privileged nodes host uncontrollable services the what-if
/// cannot hypothetically remove). May return fewer than `count`. With
/// `rack`, candidates are restricted to that rack of the hierarchical
/// topology — the "lose *this* rack" question — and the query is a hard
/// error when no hierarchy is attached or the rack does not exist.
fn drop_victims(sim: &ClusterSim, count: u32, rack: Option<u32>) -> Result<Vec<NodeId>, String> {
    let range = match rack {
        None => 0..sim.columns().len() as u32,
        Some(r) => {
            let h = sim
                .hierarchy()
                .ok_or_else(|| "rack-scoped drop needs a hierarchical control plane".to_string())?;
            let topology = h.topology();
            if r as usize >= topology.racks() {
                return Err(format!(
                    "rack {r} out of range (topology has {} racks)",
                    topology.racks()
                ));
            }
            topology.rack_nodes(r as usize)
        }
    };
    let columns = sim.columns();
    let privileged = &sim.spec().privileged;
    let mut victims = Vec::with_capacity(count as usize);
    for i in range.rev() {
        if victims.len() == count as usize {
            break;
        }
        let n = NodeId(i);
        if columns.is_down(n) || privileged.contains(&n) {
            continue;
        }
        victims.push(n);
    }
    Ok(victims)
}
