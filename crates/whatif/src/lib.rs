//! # ppc-whatif — the what-if capacity service
//!
//! The paper's architecture exists to answer one operational question:
//! *can this fleet admit more load under a fixed power provision?*
//! Operators ask it continuously and in bulk — admit this job mix?
//! survive losing a rack? tighten the cap by 10%? — and answering each
//! variant with a from-scratch simulation throws away everything the
//! live run already knows. This crate makes the question cheap:
//!
//! * [`ClusterSnapshot`] captures a live [`ClusterSim`] *completely* —
//!   RNG streams, node columns, dirty set, timer wheel, scheduler,
//!   collector, manager, journal, observability — at a tick boundary.
//!   [`ClusterSnapshot::branch`] forks an independent simulation from it;
//!   a branched run stepped N ticks is **bit-identical** to the original
//!   stepped N ticks, all four determinism fingerprints (journal, power
//!   trace, spans, metrics) included. CI gates this
//!   (`determinism_gate`'s branch-and-replay legs).
//! * [`BaseScenario`] is the serializable *recipe* form of a snapshot:
//!   because the simulation is deterministic, `(config, eval mode,
//!   warmup ticks)` is a faithful encoding of the full state —
//!   [`BaseScenario::materialize`] rehydrates it by replay, and two
//!   materializations of the same recipe are fingerprint-equal.
//! * [`WhatIfEngine`] accepts fleets of [`WhatIfQuery`] values (admit a
//!   job mix, raise/lower the cap, drop nodes, swap the selection
//!   policy), fans them out over the `simkit` worker pool as independent
//!   branch-and-simulate runs, and returns structured [`WhatIfAnswer`]s:
//!   admit/deny, projected peak power, time in Yellow/Red, ΔP×T
//!   overspend, SLO impact. Every query is evaluated against the *same*
//!   snapshot, so a batch's answers are mutually comparable and the
//!   whole batch is deterministic at any pool width.
//!
//! The long-running service mode lives in `ppc-bench` (`whatif_serve`):
//! it sustains a query stream against one snapshot and reports
//! throughput and p50/p99 latency into `BENCH_ppc.json`.
//!
//! ```
//! use ppc_cluster::{ClusterSim, ClusterSpec};
//! use ppc_whatif::{ClusterSnapshot, WhatIfEngine, WhatIfQuery, WhatIfRequest};
//!
//! let mut sim = ClusterSim::new(ClusterSpec::mini(4));
//! for _ in 0..60 {
//!     sim.step();
//! }
//! let mut engine = WhatIfEngine::new(ClusterSnapshot::capture(&sim));
//! let answers = engine.run_batch(&[
//!     WhatIfRequest::new(WhatIfQuery::Baseline, 30),
//!     WhatIfRequest::new(WhatIfQuery::DropNodes { count: 1, rack: None }, 30),
//! ]);
//! assert_eq!(answers.len(), 2);
//! assert!(answers[0].peak_power_w >= answers[1].peak_power_w);
//! ```
//!
//! [`ClusterSim`]: ppc_cluster::ClusterSim

pub mod engine;
pub mod query;
pub mod snapshot;

pub use engine::WhatIfEngine;
pub use query::{JobSpec, WhatIfAnswer, WhatIfQuery, WhatIfRequest};
pub use snapshot::{BaseScenario, ClusterSnapshot};
