//! Snapshot/branch of a live simulation, and the serializable recipe.
//!
//! ## What a snapshot contains
//!
//! Everything. [`ClusterSim`] owns all of its mutable state as plain
//! data — deterministic RNG streams, the SoA node columns and dirty
//! set, the timer wheel, scheduler and queue, the collector's slot
//! table, the power manager (thresholds, `A_degraded`, policy state),
//! the bounded journal *including its `dropped` counter*, and the
//! observability hub (span hash, metrics registry, flight recorder) —
//! so a deep clone **is** a complete capture. The only shared pieces
//! are the immutable `Arc<PowerModel>`/`Arc<NodeSpec>` tables, which no
//! run mutates. Branch determinism therefore holds by construction:
//! a branched run re-executes the exact state trajectory the original
//! would, bit for bit, at any worker-pool width.
//!
//! ## Branch semantics
//!
//! [`ClusterSnapshot::capture`] must be taken at a tick boundary
//! (between [`ClusterSim::step`] calls); [`ClusterSnapshot::branch`]
//! hands back an independent simulation positioned at that boundary.
//! Mutations applied to one branch (injected jobs, decommissioned
//! nodes, cap changes) are invisible to the snapshot and to sibling
//! branches.

use ppc_cluster::{build_sim, ClusterSim, EvalMode, ExperimentConfig};
use ppc_simkit::{SimTime, WorkerPool};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A complete, immutable capture of a [`ClusterSim`] at a tick boundary.
#[derive(Clone)]
pub struct ClusterSnapshot {
    sim: ClusterSim,
}

impl ClusterSnapshot {
    /// Captures `sim` by deep copy; the live simulation is untouched and
    /// may keep running.
    ///
    /// Call at a tick boundary (between [`ClusterSim::step`] calls).
    pub fn capture(sim: &ClusterSim) -> Self {
        ClusterSnapshot { sim: sim.clone() }
    }

    /// Wraps an owned simulation as a snapshot (no copy).
    pub fn of(sim: ClusterSim) -> Self {
        ClusterSnapshot { sim }
    }

    /// Completed ticks at the capture point.
    pub fn tick(&self) -> u64 {
        self.sim.tick_index()
    }

    /// Simulation time at the capture point.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Read access to the captured state (fingerprints, reports).
    pub fn base(&self) -> &ClusterSim {
        &self.sim
    }

    /// Forks an independent simulation from the capture point. Stepping
    /// the branch N ticks is bit-identical to stepping the original N
    /// ticks from the same boundary — journal, power-trace, span, and
    /// metrics fingerprints all match.
    pub fn branch(&self) -> ClusterSim {
        self.sim.clone()
    }
}

impl std::fmt::Debug for ClusterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSnapshot")
            .field("tick", &self.tick())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

/// The serializable recipe form of a snapshot.
///
/// A full in-memory snapshot is not wire-friendly (span hashes intern
/// `&'static str`s, journal events carry static category tags), but it
/// does not need to be: the simulation is deterministic, so *(experiment
/// config, evaluation mode, warmup ticks)* encodes the state at the
/// capture point exactly. [`BaseScenario::materialize`] decodes by
/// replay — building the configured simulation and stepping it
/// `warmup_ticks` times — and two materializations of equal recipes are
/// fingerprint-equal (see the crate's round-trip tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseScenario {
    /// Cluster, policy, provision, and fault configuration.
    pub config: ExperimentConfig,
    /// Evaluation strategy for the warmup replay and all branches.
    pub eval_mode: EvalMode,
    /// Ticks to advance before capturing (the branch point).
    pub warmup_ticks: u64,
}

impl BaseScenario {
    /// A scenario capturing `config` after `warmup_ticks` ticks under the
    /// default evaluation mode.
    pub fn new(config: ExperimentConfig, warmup_ticks: u64) -> Self {
        BaseScenario {
            config,
            eval_mode: EvalMode::default(),
            warmup_ticks,
        }
    }

    /// Selects the evaluation strategy used for replay and branches.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Rehydrates the snapshot by deterministic replay.
    pub fn materialize(&self) -> ClusterSnapshot {
        self.materialize_with(None)
    }

    /// [`BaseScenario::materialize`] on an explicit worker pool (tests
    /// proving pool-width invariance pass width-forced pools).
    pub fn materialize_with(&self, pool: Option<Arc<WorkerPool>>) -> ClusterSnapshot {
        let (_, mut sim) = build_sim(&self.config);
        sim = sim.with_eval_mode(self.eval_mode);
        if let Some(pool) = pool {
            sim = sim.with_worker_pool(pool);
        }
        for _ in 0..self.warmup_ticks {
            sim.step();
        }
        ClusterSnapshot::of(sim)
    }
}
