//! Query and answer types for the what-if service.

use ppc_core::PolicyKind;
use ppc_workload::{Class, JobPriority, NpbApp};
use serde::{Deserialize, Serialize};

/// A hypothetical job to admit (the what-if analogue of one generator
/// draw, but fully specified so a query is reproducible by value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// NPB application kernel.
    pub app: NpbApp,
    /// Problem class.
    pub class: Class,
    /// Rank count (placement spreads ranks over nodes by core count).
    pub nprocs: u32,
    /// Admit as SLA-critical (its nodes join `A_uncontrollable`).
    pub critical: bool,
}

impl JobSpec {
    /// The scheduler priority this spec admits under.
    pub fn priority(&self) -> JobPriority {
        if self.critical {
            JobPriority::Critical
        } else {
            JobPriority::Normal
        }
    }
}

/// One hypothetical mutation of the branched cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WhatIfQuery {
    /// No mutation: project the cluster as-is (the control arm every
    /// other answer in a batch is comparable against).
    Baseline,
    /// Admit this job mix on top of the current load.
    AdmitJobs {
        /// Jobs to queue at the branch point, in order.
        jobs: Vec<JobSpec>,
    },
    /// Raise or lower the power provision capability `P_Max` to this
    /// value; thresholds re-derive immediately.
    SetCap {
        /// New provision capability, watts.
        provision_w: f64,
    },
    /// Permanently remove `count` nodes (highest node ids first, skipping
    /// statically privileged and already-down nodes) — the "lose a rack"
    /// question.
    DropNodes {
        /// Nodes to decommission.
        count: u32,
        /// Restrict victims to this rack of the hierarchical topology
        /// (`None`, the default when the field is absent from a JSON
        /// payload, = fleet-wide, the flat behaviour). Denied when no
        /// hierarchy is attached.
        rack: Option<u32>,
    },
    /// Swap the target-selection policy; controller state (thresholds,
    /// `A_degraded`) carries over, the new policy starts fresh.
    SwapPolicy {
        /// Replacement policy.
        policy: PolicyKind,
    },
    /// Apply several hypotheticals in order on the same branch — e.g.
    /// *admit this job mix under cap C* is `[SetCap, AdmitJobs]`. The
    /// first inapplicable step denies the whole query.
    Compound {
        /// Mutations, applied in order at the branch point.
        steps: Vec<WhatIfQuery>,
    },
}

impl WhatIfQuery {
    /// Stable short name (span attributes, tables).
    pub fn kind(&self) -> &'static str {
        match self {
            WhatIfQuery::Baseline => "baseline",
            WhatIfQuery::AdmitJobs { .. } => "admit-jobs",
            WhatIfQuery::SetCap { .. } => "set-cap",
            WhatIfQuery::DropNodes { .. } => "drop-nodes",
            WhatIfQuery::SwapPolicy { .. } => "swap-policy",
            WhatIfQuery::Compound { .. } => "compound",
        }
    }
}

/// A query plus its evaluation horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfRequest {
    /// The hypothetical mutation.
    pub query: WhatIfQuery,
    /// Ticks to project forward from the branch point.
    pub horizon_ticks: u64,
}

impl WhatIfRequest {
    /// A request projecting `query` over `horizon_ticks` ticks.
    pub fn new(query: WhatIfQuery, horizon_ticks: u64) -> Self {
        WhatIfRequest {
            query,
            horizon_ticks,
        }
    }
}

/// The structured projection one branch-and-simulate run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfAnswer {
    /// The query this answers (echoed for self-containment).
    pub query: WhatIfQuery,
    /// Completed ticks at the branch point.
    pub branch_tick: u64,
    /// Ticks projected.
    pub horizon_ticks: u64,
    /// The admit/deny verdict: the mutation applied cleanly, every
    /// injected job was placed within the horizon, and the capping
    /// guarantee held (zero Red cycles).
    pub admit: bool,
    /// Why the query was denied outright (mutation inapplicable), if so.
    /// `None` with `admit == false` means the projection itself vetoed
    /// it (Red cycles, or injected jobs still queued at the horizon).
    pub deny_reason: Option<String>,
    /// Provision capability in force over the projection, watts.
    pub provision_w: f64,
    /// Projected peak power over the horizon, watts.
    pub peak_power_w: f64,
    /// Projected time-weighted mean power, watts.
    pub mean_power_w: f64,
    /// ΔP×T against the provision over the horizon, watt-seconds.
    pub overspend_w_s: f64,
    /// Seconds of the horizon classified Yellow.
    pub yellow_secs: f64,
    /// Seconds of the horizon classified Red.
    pub red_secs: f64,
    /// SLO impact: mean `Performance(cap)` of jobs finished in the
    /// horizon (1.0 = no capping-induced slowdown; 1.0 when none
    /// finished).
    pub performance: f64,
    /// Jobs finished within the horizon.
    pub jobs_finished: usize,
    /// Injected jobs still waiting in the queue at the horizon.
    pub jobs_pending: usize,
    /// Throttling commands applied over the horizon (SLO pressure).
    pub commands_applied: u64,
    /// Health-plane SLO alerts that *opened* during the horizon (burn
    /// rate, cap overshoot, coverage, starvation — see `ppc-obs::slo`).
    pub alerts_opened: usize,
    /// Alerts still firing (open, unresolved) at the horizon.
    pub alerts_open_at_horizon: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_kinds_are_stable() {
        assert_eq!(WhatIfQuery::Baseline.kind(), "baseline");
        assert_eq!(WhatIfQuery::AdmitJobs { jobs: vec![] }.kind(), "admit-jobs");
        assert_eq!(WhatIfQuery::SetCap { provision_w: 1.0 }.kind(), "set-cap");
        assert_eq!(
            WhatIfQuery::DropNodes {
                count: 1,
                rack: None
            }
            .kind(),
            "drop-nodes"
        );
        assert_eq!(
            WhatIfQuery::SwapPolicy {
                policy: PolicyKind::Hri
            }
            .kind(),
            "swap-policy"
        );
    }

    #[test]
    fn job_spec_priority_maps_critical_flag() {
        let spec = JobSpec {
            app: NpbApp::Bt,
            class: Class::C,
            nprocs: 16,
            critical: true,
        };
        assert_eq!(spec.priority(), JobPriority::Critical);
        assert_eq!(
            JobSpec {
                critical: false,
                ..spec
            }
            .priority(),
            JobPriority::Normal
        );
    }

    #[test]
    fn request_roundtrips_through_serde() {
        let req = WhatIfRequest::new(
            WhatIfQuery::AdmitJobs {
                jobs: vec![JobSpec {
                    app: NpbApp::Cg,
                    class: Class::D,
                    nprocs: 32,
                    critical: false,
                }],
            },
            120,
        );
        let json = serde_json::to_string(&req).unwrap();
        let back: WhatIfRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }
}
