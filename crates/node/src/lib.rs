//! # ppc-node — compute-node substrate
//!
//! Models one cluster node the way the paper's power-management system sees
//! it: a set of devices (CPU sockets with DVFS, memory, interconnect NIC)
//! whose *operating mode* determines power draw through the paper's
//! Formula (1):
//!
//! ```text
//! P(l) = P_idle(l)
//!      + Uti_cpu · Σ_{x ∈ CPU} P_x(l)
//!      + (Mem_used / Mem_total) · P_mem(l)
//!      + (Data_NIC / (τ · BW_NIC)) · P_NIC(l)
//! ```
//!
//! Modules:
//!
//! * [`freq`] — the discrete DVFS ladder (the Xeon X5670's ten steps,
//!   1.60–2.93 GHz) and the [`freq::Level`] index that *is* the paper's
//!   per-node power state `l`.
//! * [`device`] — CPU / memory / NIC device specs with per-level maximal
//!   dynamic power ([`device::CpuSpec`] derives its curve from `f·V²`).
//! * [`calibration`] — per-level idle and dynamic power tables.
//! * [`profile`] — Formula (1) as executable code ([`profile::PowerModel`]).
//! * [`procfs`] — the simulated `/proc` counters an on-node profiling agent
//!   samples (jiffies, meminfo, NIC byte counters with wrap handling).
//! * [`node`] — the node itself: spec + power level + operating state.
//! * [`spec`] — node presets, including the Tianhe-1A variant used by the
//!   paper's testbed.

pub mod budget;
pub mod calibration;
pub mod device;
pub mod error;
pub mod freq;
pub mod node;
pub mod procfs;
pub mod profile;
pub mod spec;
pub mod thermal;

pub use budget::{level_for_budget, proportional_budgets, BudgetFit};
pub use error::NodeError;
pub use freq::{FrequencyLadder, Level};
pub use node::{Node, NodeId};
pub use profile::{OperatingState, PowerModel};
pub use spec::NodeSpec;
pub use thermal::{ThermalSpec, ThermalState};
