//! Node thermal model (paper §I motivation, implemented as an extension).
//!
//! The paper's introduction grounds power capping in thermals: "the
//! failure rate of a computing node doubles with every 10 °C increase in
//! the temperature" (Feng), and "a computer chipset with higher
//! temperatures consumes more power while running identical computations
//! at the same performance state" (Sarood & Kalé) — a positive feedback
//! loop between temperature and power. This module provides both halves:
//!
//! * a first-order RC thermal model — heat capacity `C_th` charged by the
//!   node's power draw, discharged through a thermal resistance `R_th` to
//!   the ambient (machine-room) temperature:
//!   `C·dT/dt = P(t) − (T − T_amb)/R`;
//! * temperature-dependent leakage: idle/static power grows linearly with
//!   die temperature above the calibration point, closing the loop;
//! * the failure-rate metric: `2^((T − T_ref)/10)`, whose time integral
//!   quantifies the reliability cost of running hot — exactly what the
//!   ΔP×T metric tracks on the power side.

use serde::{Deserialize, Serialize};

/// Thermal parameters of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Machine-room ambient temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient, °C per watt.
    pub r_th_c_per_w: f64,
    /// Thermal capacitance, joules per °C.
    pub c_th_j_per_c: f64,
    /// Leakage growth per °C above the calibration temperature, as a
    /// fraction of the calibrated idle power (e.g. 0.004 = +0.4 %/°C).
    pub leakage_per_c: f64,
    /// Temperature at which the power tables were calibrated, °C.
    pub calibration_c: f64,
}

impl ThermalSpec {
    /// Parameters representative of a dual-socket air-cooled 1U node:
    /// 25 °C room, ≈0.19 °C/W to ambient (≈65 °C hot at 340 W load,
    /// ≈53 °C at 145 W idle), ≈20 kJ/°C lumped capacity (minutes-scale
    /// time constant), +0.4 %/°C leakage.
    pub fn air_cooled_1u() -> Self {
        ThermalSpec {
            ambient_c: 25.0,
            r_th_c_per_w: 0.118,
            c_th_j_per_c: 20_000.0,
            leakage_per_c: 0.004,
            calibration_c: 45.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on non-physical values.
    pub fn validate(&self) {
        assert!(
            self.r_th_c_per_w > 0.0,
            "thermal resistance must be positive"
        );
        assert!(
            self.c_th_j_per_c > 0.0,
            "thermal capacitance must be positive"
        );
        assert!(
            self.leakage_per_c >= 0.0,
            "leakage slope cannot be negative"
        );
        assert!(
            self.ambient_c > -50.0 && self.ambient_c < 60.0,
            "implausible ambient temperature {}",
            self.ambient_c
        );
    }

    /// Steady-state temperature at constant power `p_w`, °C.
    pub fn steady_state_c(&self, p_w: f64) -> f64 {
        self.ambient_c + p_w * self.r_th_c_per_w
    }

    /// Thermal time constant `R·C`, seconds.
    pub fn time_constant_secs(&self) -> f64 {
        self.r_th_c_per_w * self.c_th_j_per_c
    }
}

/// The evolving thermal state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    spec: ThermalSpec,
    temperature_c: f64,
}

impl ThermalState {
    /// Starts at ambient temperature.
    pub fn new(spec: ThermalSpec) -> Self {
        spec.validate();
        ThermalState {
            temperature_c: spec.ambient_c,
            spec,
        }
    }

    /// Current die temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// The thermal parameters.
    pub fn spec(&self) -> &ThermalSpec {
        &self.spec
    }

    /// Advances the RC model by `dt_secs` at power draw `p_w`.
    ///
    /// Uses the exact exponential solution of the linear ODE for the
    /// interval (unconditionally stable for any `dt`):
    /// `T(t+dt) = T_ss + (T(t) − T_ss)·exp(−dt/RC)`.
    pub fn advance(&mut self, p_w: f64, dt_secs: f64) {
        assert!(dt_secs >= 0.0, "time cannot run backwards");
        assert!(p_w >= 0.0, "power cannot be negative");
        let t_ss = self.spec.steady_state_c(p_w);
        let tau = self.spec.time_constant_secs();
        let decay = (-dt_secs / tau).exp();
        self.temperature_c = t_ss + (self.temperature_c - t_ss) * decay;
    }

    /// Extra leakage power at the current temperature, in watts, given
    /// the node's calibrated idle power. Positive above the calibration
    /// temperature, clamped at zero below it (cooler-than-calibration
    /// savings are real but small; clamping keeps the power tables a
    /// conservative lower bound).
    pub fn leakage_excess_w(&self, calibrated_idle_w: f64) -> f64 {
        let dt = self.temperature_c - self.spec.calibration_c;
        (calibrated_idle_w * self.spec.leakage_per_c * dt).max(0.0)
    }

    /// Relative failure rate vs. the reference temperature: doubles every
    /// 10 °C (Feng's rule, paper §I).
    pub fn relative_failure_rate(&self, reference_c: f64) -> f64 {
        2f64.powf((self.temperature_c - reference_c) / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state() -> ThermalState {
        ThermalState::new(ThermalSpec::air_cooled_1u())
    }

    #[test]
    fn starts_at_ambient() {
        let s = state();
        assert_eq!(s.temperature_c(), 25.0);
    }

    #[test]
    fn converges_to_steady_state() {
        let mut s = state();
        let p = 300.0;
        let expected = s.spec().steady_state_c(p);
        // Run ten time constants.
        let tau = s.spec().time_constant_secs();
        for _ in 0..100 {
            s.advance(p, tau / 10.0);
        }
        assert!(
            (s.temperature_c() - expected).abs() < 0.01,
            "T={} expected={expected}",
            s.temperature_c()
        );
        // Realistic envelope: ~60 °C at 300 W for the 1U parameters.
        assert!((55.0..70.0).contains(&expected), "T_ss={expected}");
    }

    #[test]
    fn cooling_after_load_removal() {
        let mut s = state();
        s.advance(340.0, 10_000.0); // fully hot (τ ≈ 2360 s)
        let hot = s.temperature_c();
        s.advance(0.0, 50_000.0); // > 20 τ: fully cooled
        assert!(s.temperature_c() < hot);
        assert!((s.temperature_c() - 25.0).abs() < 0.1);
    }

    #[test]
    fn exact_solution_is_step_size_independent() {
        let p = 250.0;
        let mut coarse = state();
        coarse.advance(p, 600.0);
        let mut fine = state();
        for _ in 0..600 {
            fine.advance(p, 1.0);
        }
        assert!(
            (coarse.temperature_c() - fine.temperature_c()).abs() < 1e-9,
            "exponential integrator must not depend on dt"
        );
    }

    #[test]
    fn leakage_feedback_is_clamped_below_calibration() {
        let s = state(); // at 25 °C, calibration 45 °C
        assert_eq!(s.leakage_excess_w(160.0), 0.0);
        let mut hot = state();
        hot.advance(340.0, 1e6);
        // ≈65 °C: 20 °C over calibration → 160 W × 0.004/°C × 20 ≈ 12.8 W.
        let excess = hot.leakage_excess_w(160.0);
        assert!((10.0..16.0).contains(&excess), "excess={excess}");
    }

    #[test]
    fn failure_rate_doubles_every_10c() {
        let mut s = state();
        s.advance(0.0, 1e9);
        let base = s.relative_failure_rate(25.0);
        assert!((base - 1.0).abs() < 1e-9);
        s.advance(340.0, 1e9); // ≈65 °C
        let hot = s.relative_failure_rate(25.0);
        assert!((hot - 2f64.powf((s.temperature_c() - 25.0) / 10.0)).abs() < 1e-9);
        assert!(hot > 10.0, "40 °C hotter ⇒ >16× failure rate, got {hot}");
    }

    #[test]
    #[should_panic(expected = "thermal resistance")]
    fn invalid_spec_rejected() {
        ThermalState::new(ThermalSpec {
            r_th_c_per_w: 0.0,
            ..ThermalSpec::air_cooled_1u()
        });
    }

    proptest! {
        /// Temperature stays within [ambient, steady-state(P_max)] for any
        /// bounded power sequence, and is monotone in the power level.
        #[test]
        fn prop_temperature_bounded(
            powers in proptest::collection::vec(0.0f64..400.0, 1..50),
            dt in 1.0f64..600.0,
        ) {
            let mut s = state();
            let hi = s.spec().steady_state_c(400.0);
            for &p in &powers {
                s.advance(p, dt);
                prop_assert!(s.temperature_c() >= s.spec().ambient_c - 1e-9);
                prop_assert!(s.temperature_c() <= hi + 1e-9);
            }
        }

        /// More power ⇒ at least as hot, step by step.
        #[test]
        fn prop_monotone_in_power(p1 in 0.0f64..400.0, p2 in 0.0f64..400.0, dt in 1.0f64..600.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let mut a = state();
            let mut b = state();
            for _ in 0..20 {
                a.advance(lo, dt);
                b.advance(hi, dt);
                prop_assert!(b.temperature_c() >= a.temperature_c() - 1e-9);
            }
        }
    }
}
