//! Node-layer errors.

use crate::freq::Level;
use std::fmt;

/// Errors raised by node configuration and state changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// A power level outside the node's ladder was requested.
    InvalidLevel {
        /// The requested level.
        requested: Level,
        /// The highest valid level on this node's ladder.
        highest: Level,
    },
    /// A node was asked to degrade below its lowest power state.
    AlreadyLowest,
    /// A node was asked to upgrade above its highest power state.
    AlreadyHighest,
    /// A state change was commanded on a privileged (uncontrollable) node.
    Privileged,
    /// A specification value was out of range.
    InvalidSpec(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::InvalidLevel { requested, highest } => write!(
                f,
                "invalid power level {requested:?}; ladder tops out at {highest:?}"
            ),
            NodeError::AlreadyLowest => write!(f, "node is already at its lowest power state"),
            NodeError::AlreadyHighest => write!(f, "node is already at its highest power state"),
            NodeError::Privileged => write!(f, "node is privileged (uncontrollable)"),
            NodeError::InvalidSpec(msg) => write!(f, "invalid node spec: {msg}"),
        }
    }
}

impl std::error::Error for NodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = NodeError::InvalidLevel {
            requested: Level::new(12),
            highest: Level::new(9),
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains('9'));
        assert!(NodeError::Privileged.to_string().contains("privileged"));
    }
}
