//! Device power specifications.
//!
//! Formula (1) needs, per power level `l`, the *maximal dynamic* power of
//! each device class: `P_x(l)` for each CPU unit, `P_mem(l)` and `P_NIC(l)`.
//! These specs provide those tables. CPU dynamic power follows the CMOS
//! `f·V²` scale from the node's DVFS ladder; memory and NIC dynamic power
//! are level-independent on the testbed (DVFS does not regulate them — the
//! paper notes all non-CPU devices are only *indirectly* managed through
//! the processor), but carry a small coupling factor so the model can
//! express platforms where they do scale.

use crate::freq::{FrequencyLadder, Level};
use serde::{Deserialize, Serialize};

/// CPU package specification (per node: `sockets` identical packages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of sockets (each a Formula-1 "CPU unit" `x ∈ CPU`).
    pub sockets: u32,
    /// Cores per socket (informational; used by the scheduler for slot
    /// counting, not by the power model).
    pub cores_per_socket: u32,
    /// Maximal dynamic power of one socket at the top level, in watts
    /// (gap between its maximal and idle power, per the paper).
    pub max_dynamic_w_per_socket: f64,
}

impl CpuSpec {
    /// Maximal dynamic power of one socket at `level`, in watts.
    pub fn socket_dynamic_w(&self, ladder: &FrequencyLadder, level: Level) -> f64 {
        self.max_dynamic_w_per_socket * ladder.dynamic_scale(level)
    }

    /// `Σ_{x ∈ CPU} P_x(l)` — all sockets' maximal dynamic power at `level`.
    pub fn total_dynamic_w(&self, ladder: &FrequencyLadder, level: Level) -> f64 {
        self.sockets as f64 * self.socket_dynamic_w(ladder, level)
    }

    /// Total hardware threads (scheduling slots) on the node.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }
}

/// Memory subsystem specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Total installed memory, in bytes (`Mem_total`).
    pub total_bytes: u64,
    /// Maximal dynamic power of all memory devices, in watts (`P_mem`).
    pub max_dynamic_w: f64,
    /// Fraction of memory dynamic power that scales with the CPU level
    /// (0 = fully level-independent, the testbed default).
    pub level_coupling: f64,
}

impl MemSpec {
    /// `P_mem(l)` in watts.
    pub fn dynamic_w(&self, ladder: &FrequencyLadder, level: Level) -> f64 {
        let coupled = self.level_coupling.clamp(0.0, 1.0);
        self.max_dynamic_w * ((1.0 - coupled) + coupled * ladder.dynamic_scale(level))
    }
}

/// Communication device (interconnect NIC) specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Link bandwidth in bytes per second (`BW_NIC`).
    pub bandwidth_bytes_per_sec: f64,
    /// Maximal dynamic power, in watts (`P_NIC`).
    pub max_dynamic_w: f64,
    /// Fraction of NIC dynamic power that scales with the CPU level.
    pub level_coupling: f64,
}

impl NicSpec {
    /// `P_NIC(l)` in watts.
    pub fn dynamic_w(&self, ladder: &FrequencyLadder, level: Level) -> f64 {
        let coupled = self.level_coupling.clamp(0.0, 1.0);
        self.max_dynamic_w * ((1.0 - coupled) + coupled * ladder.dynamic_scale(level))
    }

    /// Maximal bytes the NIC can move in a sampling interval of `tau_secs`
    /// (`τ · BW_NIC`), used to normalize `Data_NIC`.
    pub fn interval_capacity_bytes(&self, tau_secs: f64) -> f64 {
        self.bandwidth_bytes_per_sec * tau_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> FrequencyLadder {
        FrequencyLadder::xeon_x5670()
    }

    fn cpu() -> CpuSpec {
        CpuSpec {
            sockets: 2,
            cores_per_socket: 6,
            max_dynamic_w_per_socket: 65.0,
        }
    }

    #[test]
    fn cpu_dynamic_tops_out_at_spec() {
        let l = ladder();
        let c = cpu();
        let top = c.total_dynamic_w(&l, l.highest());
        assert!((top - 130.0).abs() < 1e-9);
        assert_eq!(c.total_cores(), 12);
    }

    #[test]
    fn cpu_dynamic_is_monotone_in_level() {
        let l = ladder();
        let c = cpu();
        let mut prev = 0.0;
        for level in l.levels() {
            let p = c.total_dynamic_w(&l, level);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn uncoupled_memory_power_ignores_level() {
        let l = ladder();
        let m = MemSpec {
            total_bytes: 24 << 30,
            max_dynamic_w: 36.0,
            level_coupling: 0.0,
        };
        assert_eq!(m.dynamic_w(&l, Level::LOWEST), 36.0);
        assert_eq!(m.dynamic_w(&l, l.highest()), 36.0);
    }

    #[test]
    fn coupled_memory_power_scales() {
        let l = ladder();
        let m = MemSpec {
            total_bytes: 24 << 30,
            max_dynamic_w: 36.0,
            level_coupling: 0.5,
        };
        let low = m.dynamic_w(&l, Level::LOWEST);
        let high = m.dynamic_w(&l, l.highest());
        assert!(low < high);
        assert!((high - 36.0).abs() < 1e-9, "top level must reach max");
        assert!(low > 18.0, "uncoupled half stays");
    }

    #[test]
    fn nic_interval_capacity() {
        let n = NicSpec {
            bandwidth_bytes_per_sec: 5.0e9,
            max_dynamic_w: 15.0,
            level_coupling: 0.0,
        };
        assert_eq!(n.interval_capacity_bytes(2.0), 1.0e10);
    }

    #[test]
    fn coupling_is_clamped() {
        let l = ladder();
        let m = MemSpec {
            total_bytes: 1,
            max_dynamic_w: 10.0,
            level_coupling: 7.0, // out of range; clamps to 1.0
        };
        let low = m.dynamic_w(&l, Level::LOWEST);
        assert!((low - 10.0 * l.dynamic_scale(Level::LOWEST)).abs() < 1e-9);
    }
}
