//! The discrete DVFS ladder.
//!
//! The paper throttles a node by stepping its processor frequency down one
//! level at a time; "node power state `l`" and "frequency level" are the
//! same thing on the testbed. [`Level`] 0 is the *lowest* frequency (lowest
//! power, the paper's "lowest power state"); the highest index is the
//! unthrottled state.

use serde::{Deserialize, Serialize};

/// A power/frequency level index. Level 0 is the lowest-power state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Level(u8);

impl Level {
    /// The lowest power state.
    pub const LOWEST: Level = Level(0);

    /// Builds a level from a raw index.
    pub const fn new(idx: u8) -> Self {
        Level(idx)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// One level lower (toward less power), or `None` at the bottom.
    pub fn down(self) -> Option<Level> {
        self.0.checked_sub(1).map(Level)
    }

    /// One level higher (toward more performance). Unbounded here; ladders
    /// validate against their own height.
    pub fn up(self) -> Level {
        Level(self.0 + 1)
    }
}

/// One rung of the ladder: an operating frequency and its core voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Core voltage in volts.
    pub voltage_v: f64,
}

/// An ordered set of operating points, lowest frequency first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLadder {
    points: Vec<OperatingPoint>,
}

impl FrequencyLadder {
    /// Builds a ladder from points ordered lowest-frequency-first.
    ///
    /// # Panics
    /// Panics if fewer than 2 points are given (the paper's Controllability
    /// assumption requires `l > 1` states), if frequencies are not strictly
    /// increasing, or if any frequency/voltage is non-positive.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(
            points.len() >= 2,
            "controllability requires at least two power levels"
        );
        for w in points.windows(2) {
            assert!(
                w[1].freq_ghz > w[0].freq_ghz,
                "ladder frequencies must be strictly increasing"
            );
        }
        for p in &points {
            assert!(
                p.freq_ghz > 0.0 && p.voltage_v > 0.0,
                "frequencies and voltages must be positive"
            );
        }
        FrequencyLadder { points }
    }

    /// The Intel Xeon X5670 ladder used on the Tianhe-1A testbed: ten
    /// working frequencies from 1.60 GHz to 2.93 GHz (multiples of the
    /// 133 MHz bus clock), with a linear voltage ramp 0.85 V → 1.20 V.
    pub fn xeon_x5670() -> Self {
        const FREQS: [f64; 10] = [1.60, 1.73, 1.86, 2.00, 2.13, 2.26, 2.40, 2.53, 2.66, 2.93];
        let f_min = FREQS[0];
        let f_max = FREQS[9];
        let points = FREQS
            .iter()
            .map(|&f| OperatingPoint {
                freq_ghz: f,
                voltage_v: 0.85 + (1.20 - 0.85) * (f - f_min) / (f_max - f_min),
            })
            .collect();
        FrequencyLadder::new(points)
    }

    /// The Intel Xeon X5650 ladder (2.66 GHz part): seven working
    /// frequencies, same 133 MHz bus granularity, lower ceiling. Used for
    /// heterogeneous-cluster experiments — Algorithm 1 explicitly supports
    /// nodes with different ladder heights.
    pub fn xeon_x5650() -> Self {
        const FREQS: [f64; 7] = [1.60, 1.73, 1.86, 2.00, 2.26, 2.40, 2.66];
        let f_min = FREQS[0];
        let f_max = FREQS[6];
        let points = FREQS
            .iter()
            .map(|&f| OperatingPoint {
                freq_ghz: f,
                voltage_v: 0.85 + (1.15 - 0.85) * (f - f_min) / (f_max - f_min),
            })
            .collect();
        FrequencyLadder::new(points)
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Ladders are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The highest (unthrottled) level.
    pub fn highest(&self) -> Level {
        Level((self.points.len() - 1) as u8)
    }

    /// The lowest level.
    pub fn lowest(&self) -> Level {
        Level::LOWEST
    }

    /// True if `level` exists on this ladder.
    pub fn contains(&self, level: Level) -> bool {
        level.index() < self.points.len()
    }

    /// The operating point at `level`.
    ///
    /// # Panics
    /// Panics if `level` is off the ladder.
    pub fn point(&self, level: Level) -> OperatingPoint {
        self.points[level.index()]
    }

    /// Frequency at `level`, in GHz.
    pub fn freq_ghz(&self, level: Level) -> f64 {
        self.point(level).freq_ghz
    }

    /// Maximum frequency (top level), in GHz.
    pub fn max_freq_ghz(&self) -> f64 {
        self.points[self.points.len() - 1].freq_ghz
    }

    /// Relative speed of `level` vs. the top level (`f_l / f_max`), in (0, 1].
    pub fn relative_speed(&self, level: Level) -> f64 {
        self.freq_ghz(level) / self.max_freq_ghz()
    }

    /// The switching-energy proxy `f · V²` at `level`, normalized so the top
    /// level is 1.0. CMOS dynamic power scales with `C·f·V²`; this factor
    /// shapes every per-level dynamic power table.
    pub fn dynamic_scale(&self, level: Level) -> f64 {
        let p = self.point(level);
        let top = self.points[self.points.len() - 1];
        (p.freq_ghz * p.voltage_v * p.voltage_v) / (top.freq_ghz * top.voltage_v * top.voltage_v)
    }

    /// Iterates over all levels, lowest first.
    pub fn levels(&self) -> impl Iterator<Item = Level> + '_ {
        (0..self.points.len()).map(|i| Level(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn x5670_has_ten_levels_with_correct_endpoints() {
        let ladder = FrequencyLadder::xeon_x5670();
        assert_eq!(ladder.len(), 10);
        assert_eq!(ladder.freq_ghz(Level::LOWEST), 1.60);
        assert_eq!(ladder.freq_ghz(ladder.highest()), 2.93);
        assert_eq!(ladder.max_freq_ghz(), 2.93);
        assert_eq!(ladder.highest(), Level::new(9));
    }

    #[test]
    fn level_up_down() {
        let l = Level::new(3);
        assert_eq!(l.down(), Some(Level::new(2)));
        assert_eq!(l.up(), Level::new(4));
        assert_eq!(Level::LOWEST.down(), None);
    }

    #[test]
    fn dynamic_scale_is_monotone_and_normalized() {
        let ladder = FrequencyLadder::xeon_x5670();
        let scales: Vec<f64> = ladder.levels().map(|l| ladder.dynamic_scale(l)).collect();
        for w in scales.windows(2) {
            assert!(w[1] > w[0], "dynamic scale must grow with level");
        }
        assert!((scales[9] - 1.0).abs() < 1e-12);
        // Bottom level draws roughly (1.6/2.93)·(0.85/1.2)² ≈ 27% of top.
        assert!(
            scales[0] > 0.2 && scales[0] < 0.35,
            "scale[0]={}",
            scales[0]
        );
    }

    #[test]
    fn relative_speed_spans_expected_range() {
        let ladder = FrequencyLadder::xeon_x5670();
        assert!((ladder.relative_speed(ladder.highest()) - 1.0).abs() < 1e-12);
        let low = ladder.relative_speed(Level::LOWEST);
        assert!((low - 1.60 / 2.93).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_bounds() {
        let ladder = FrequencyLadder::xeon_x5670();
        assert!(ladder.contains(Level::new(0)));
        assert!(ladder.contains(Level::new(9)));
        assert!(!ladder.contains(Level::new(10)));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_level_ladder_rejected() {
        FrequencyLadder::new(vec![OperatingPoint {
            freq_ghz: 1.0,
            voltage_v: 1.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_ladder_rejected() {
        FrequencyLadder::new(vec![
            OperatingPoint {
                freq_ghz: 2.0,
                voltage_v: 1.0,
            },
            OperatingPoint {
                freq_ghz: 1.0,
                voltage_v: 1.0,
            },
        ]);
    }

    proptest! {
        /// On any valid ladder, relative speed and dynamic scale are
        /// monotone in level and bounded by (0, 1].
        #[test]
        fn prop_ladder_monotonicity(n in 2usize..16, base in 0.5f64..2.0, step in 0.05f64..0.5) {
            let points: Vec<OperatingPoint> = (0..n)
                .map(|i| OperatingPoint {
                    freq_ghz: base + step * i as f64,
                    voltage_v: 0.8 + 0.04 * i as f64,
                })
                .collect();
            let ladder = FrequencyLadder::new(points);
            let mut prev_speed = 0.0;
            let mut prev_scale = 0.0;
            for l in ladder.levels() {
                let s = ladder.relative_speed(l);
                let d = ladder.dynamic_scale(l);
                prop_assert!(s > prev_speed && s <= 1.0 + 1e-12);
                prop_assert!(d > prev_scale && d <= 1.0 + 1e-12);
                prev_speed = s;
                prev_scale = d;
            }
        }
    }
}
