//! The power profile model — the paper's Formula (1) as executable code.
//!
//! A node's power is estimated from its *operating mode*: CPU utilization,
//! memory occupancy, and NIC traffic over the sampling interval τ, combined
//! with the per-level calibration table:
//!
//! ```text
//! P(l) = P_idle(l) + Uti_cpu · Σ_x P_x(l)
//!      + (Mem_used/Mem_total) · P_mem(l)
//!      + (Data_NIC/(τ·BW_NIC)) · P_NIC(l)
//! ```
//!
//! The same model is used in three places, exactly as in the paper: by the
//! node simulation to produce "true" power, by profiling agents to estimate
//! power from sampled counters, and by policies to predict `P'(x)` — the
//! power a node *would* draw one level down (Algorithm 2).

use crate::calibration::PowerTable;
use crate::device::NicSpec;
use crate::freq::{FrequencyLadder, Level};
use serde::{Deserialize, Serialize};

/// A node's operating mode over one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OperatingState {
    /// CPU utilization `Uti_cpu ∈ [0, 1]`.
    pub cpu_util: f64,
    /// Bytes of memory in use (`Mem_used`).
    pub mem_used_bytes: u64,
    /// Bytes moved by the NIC during the sampling interval (`Data_NIC`).
    pub nic_bytes: u64,
}

impl OperatingState {
    /// A fully idle node.
    pub const IDLE: OperatingState = OperatingState {
        cpu_util: 0.0,
        mem_used_bytes: 0,
        nic_bytes: 0,
    };

    /// True when the node is not doing observable work. The capping
    /// algorithm must never pick idle nodes as throttling targets (their
    /// dynamic power is already ≈ 0, so degrading them saves nothing).
    pub fn is_idle(&self) -> bool {
        self.cpu_util <= f64::EPSILON && self.nic_bytes == 0
    }
}

/// Formula (1) evaluator bound to one node model's calibration data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    table: PowerTable,
    mem_total_bytes: u64,
    nic: NicSpec,
    /// Sampling interval τ, in seconds.
    tau_secs: f64,
}

impl PowerModel {
    /// Binds a calibration table and device parameters into an evaluator.
    ///
    /// # Panics
    /// Panics if `mem_total_bytes` is 0 or `tau_secs` is not positive.
    pub fn new(table: PowerTable, mem_total_bytes: u64, nic: NicSpec, tau_secs: f64) -> Self {
        assert!(mem_total_bytes > 0, "node must have memory");
        assert!(tau_secs > 0.0, "sampling interval must be positive");
        PowerModel {
            table,
            mem_total_bytes,
            nic,
            tau_secs,
        }
    }

    /// The calibration table.
    pub fn table(&self) -> &PowerTable {
        &self.table
    }

    /// The sampling interval τ in seconds.
    pub fn tau_secs(&self) -> f64 {
        self.tau_secs
    }

    /// Total memory, bytes.
    pub fn mem_total_bytes(&self) -> u64 {
        self.mem_total_bytes
    }

    /// Evaluates `P(l)` for the given operating state, in watts.
    ///
    /// Utilization and ratios are clamped into `[0, 1]` — sampled counters
    /// can slightly overshoot (counter wrap mid-interval, rounding) and the
    /// estimate must stay within the calibrated envelope.
    pub fn power_w(&self, level: Level, state: &OperatingState) -> f64 {
        let i = level.index();
        let cpu_util = state.cpu_util.clamp(0.0, 1.0);
        let mem_ratio = (state.mem_used_bytes as f64 / self.mem_total_bytes as f64).clamp(0.0, 1.0);
        let nic_cap = self.nic.interval_capacity_bytes(self.tau_secs);
        let nic_ratio = (state.nic_bytes as f64 / nic_cap).clamp(0.0, 1.0);
        self.table.idle_w[i]
            + cpu_util * self.table.cpu_dynamic_w[i]
            + mem_ratio * self.table.mem_dynamic_w[i]
            + nic_ratio * self.table.nic_dynamic_w[i]
    }

    /// Predicts `P'(x)`: the node's power in the same operating state one
    /// level *down*. Returns the current-level power if already at the
    /// bottom (no further saving available).
    pub fn power_one_level_down_w(&self, level: Level, state: &OperatingState) -> f64 {
        match level.down() {
            Some(lower) => self.power_w(lower, state),
            None => self.power_w(level, state),
        }
    }

    /// The saving `P(x) − P'(x)` from degrading one level, in watts
    /// (0 at the bottom level).
    pub fn saving_one_level_w(&self, level: Level, state: &OperatingState) -> f64 {
        self.power_w(level, state) - self.power_one_level_down_w(level, state)
    }

    /// Theoretical maximal power of this node (top level, all devices at
    /// max): its contribution to the paper's `P_thy`.
    pub fn theoretical_max_w(&self, ladder: &FrequencyLadder) -> f64 {
        self.table.max_power_w(ladder.highest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::IdleCurve;
    use crate::device::{CpuSpec, MemSpec};
    use proptest::prelude::*;

    fn model() -> (FrequencyLadder, PowerModel) {
        let ladder = FrequencyLadder::xeon_x5670();
        let nic = NicSpec {
            bandwidth_bytes_per_sec: 5.0e9,
            max_dynamic_w: 15.0,
            level_coupling: 0.0,
        };
        let table = PowerTable::calibrate(
            &ladder,
            &IdleCurve {
                base_w: 130.0,
                leakage_at_top_w: 30.0,
            },
            &CpuSpec {
                sockets: 2,
                cores_per_socket: 6,
                max_dynamic_w_per_socket: 65.0,
            },
            &MemSpec {
                total_bytes: 24 << 30,
                max_dynamic_w: 36.0,
                level_coupling: 0.0,
            },
            &nic,
        );
        let model = PowerModel::new(table, 24 << 30, nic, 1.0);
        (ladder, model)
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let (ladder, m) = model();
        for level in ladder.levels() {
            let p = m.power_w(level, &OperatingState::IDLE);
            assert_eq!(p, m.table().idle_power_w(level));
        }
    }

    #[test]
    fn fully_loaded_node_draws_max_power() {
        let (ladder, m) = model();
        let full = OperatingState {
            cpu_util: 1.0,
            mem_used_bytes: 24 << 30,
            nic_bytes: 5_000_000_000, // τ·BW at τ=1s
        };
        for level in ladder.levels() {
            let p = m.power_w(level, &full);
            assert!((p - m.table().max_power_w(level)).abs() < 1e-9);
        }
    }

    #[test]
    fn half_utilization_is_halfway_on_cpu_term() {
        let (ladder, m) = model();
        let top = ladder.highest();
        let half = OperatingState {
            cpu_util: 0.5,
            mem_used_bytes: 0,
            nic_bytes: 0,
        };
        let p = m.power_w(top, &half);
        let expected = m.table().idle_power_w(top) + 0.5 * 130.0;
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn inputs_are_clamped() {
        let (ladder, m) = model();
        let over = OperatingState {
            cpu_util: 1.7,
            mem_used_bytes: u64::MAX,
            nic_bytes: u64::MAX,
        };
        let p = m.power_w(ladder.highest(), &over);
        assert!((p - m.table().max_power_w(ladder.highest())).abs() < 1e-9);
        let under = OperatingState {
            cpu_util: -0.5,
            mem_used_bytes: 0,
            nic_bytes: 0,
        };
        let p2 = m.power_w(ladder.highest(), &under);
        assert_eq!(p2, m.table().idle_power_w(ladder.highest()));
    }

    #[test]
    fn saving_is_zero_at_bottom_and_positive_above() {
        let (ladder, m) = model();
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 12 << 30,
            nic_bytes: 1_000_000_000,
        };
        assert_eq!(m.saving_one_level_w(Level::LOWEST, &busy), 0.0);
        for level in ladder.levels().skip(1) {
            assert!(m.saving_one_level_w(level, &busy) > 0.0);
        }
    }

    #[test]
    fn is_idle_detects_quiescence() {
        assert!(OperatingState::IDLE.is_idle());
        assert!(!OperatingState {
            cpu_util: 0.2,
            mem_used_bytes: 0,
            nic_bytes: 0
        }
        .is_idle());
        // Residual memory without activity still counts as idle.
        assert!(OperatingState {
            cpu_util: 0.0,
            mem_used_bytes: 1 << 30,
            nic_bytes: 0
        }
        .is_idle());
    }

    proptest! {
        /// Power is monotone in each input dimension and bounded by the
        /// calibrated envelope [idle(l), max(l)].
        #[test]
        fn prop_power_monotone_and_bounded(
            lvl in 0u8..10,
            util in 0.0f64..1.0,
            mem in 0u64..(24u64 << 30),
            nic in 0u64..5_000_000_000u64,
        ) {
            let (_ladder, m) = model();
            let level = Level::new(lvl);
            let st = OperatingState { cpu_util: util, mem_used_bytes: mem, nic_bytes: nic };
            let p = m.power_w(level, &st);
            prop_assert!(p >= m.table().idle_power_w(level) - 1e-9);
            prop_assert!(p <= m.table().max_power_w(level) + 1e-9);

            // Monotone in utilization.
            let more = OperatingState { cpu_util: (util + 0.1).min(1.0), ..st };
            prop_assert!(m.power_w(level, &more) >= p - 1e-12);

            // Monotone in level (same state, higher level ⇒ ≥ power).
            if let Some(lower) = level.down() {
                prop_assert!(m.power_w(lower, &st) <= p + 1e-12);
            }

            // P'(x) ≤ P(x) always.
            prop_assert!(m.power_one_level_down_w(level, &st) <= p + 1e-12);
        }
    }
}
