//! The compute node: spec + power level + operating state + `/proc`.
//!
//! A [`Node`] is the unit the power manager senses and throttles. The
//! *privileged* flag marks the paper's uncontrollable nodes — those whose
//! tasks must not be degraded (or that lack DVFS); every state-changing
//! method refuses to act on them.

use crate::error::NodeError;
use crate::freq::Level;
use crate::procfs::ProcCounters;
use crate::profile::{OperatingState, PowerModel};
use crate::spec::NodeSpec;
use crate::thermal::ThermalState;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Cluster-unique node identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:03}", self.0)
    }
}

/// One compute node.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    spec: Arc<NodeSpec>,
    model: Arc<PowerModel>,
    level: Level,
    state: OperatingState,
    privileged: bool,
    proc_counters: ProcCounters,
    thermal: Option<ThermalState>,
}

impl Node {
    /// Creates a node at the top (unthrottled) power level, idle.
    pub fn new(id: NodeId, spec: Arc<NodeSpec>, model: Arc<PowerModel>) -> Self {
        let level = spec.ladder.highest();
        let thermal = spec.thermal.map(ThermalState::new);
        Node {
            id,
            spec,
            model,
            level,
            state: OperatingState::IDLE,
            privileged: false,
            proc_counters: ProcCounters::default(),
            thermal,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's hardware spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The node's Formula-(1) power model.
    pub fn model(&self) -> &Arc<PowerModel> {
        &self.model
    }

    /// Current power level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Highest level on this node's ladder.
    pub fn highest_level(&self) -> Level {
        self.spec.ladder.highest()
    }

    /// True if the node may not be power-managed.
    pub fn is_privileged(&self) -> bool {
        self.privileged
    }

    /// Marks the node as privileged (uncontrollable) or not.
    pub fn set_privileged(&mut self, privileged: bool) {
        self.privileged = privileged;
    }

    /// Current operating state.
    pub fn state(&self) -> &OperatingState {
        &self.state
    }

    /// True if the node is currently idle.
    pub fn is_idle(&self) -> bool {
        self.state.is_idle()
    }

    /// Cumulative `/proc` counters (what an on-node agent samples).
    pub fn proc_counters(&self) -> &ProcCounters {
        &self.proc_counters
    }

    /// Relative compute speed at the current level (`f_l / f_max`).
    pub fn relative_speed(&self) -> f64 {
        self.spec.ladder.relative_speed(self.level)
    }

    /// Sets the operating state for the next interval and advances the
    /// `/proc` counters — and, when the thermal model is enabled, the die
    /// temperature — by `dt_secs` in that state. The temperature advances
    /// on the *current* power draw (which itself includes the previous
    /// interval's thermal leakage): the paper's positive feedback loop.
    pub fn run_interval(&mut self, state: OperatingState, dt_secs: f64) {
        self.state = state;
        self.proc_counters.advance(&state, dt_secs);
        if self.thermal.is_some() {
            let p = self.power_w();
            if let Some(thermal) = &mut self.thermal {
                thermal.advance(p, dt_secs);
            }
        }
    }

    /// Fast-forwards the `/proc` counters by `ticks` further intervals of
    /// `dt_secs` in the *current* operating state, without changing it.
    ///
    /// This is the quiescent-node catch-up used by the incremental
    /// evaluation path: a node whose inputs did not change for `k` ticks
    /// accrues exactly `k` identical counter increments, which
    /// [`ProcCounters::advance_many`] applies in closed form. Bit-identical
    /// to calling [`run_interval`](Self::run_interval) `ticks` times with
    /// the same state. Callers must not use this on thermally modelled
    /// nodes (temperature integration is not linear in time).
    pub fn catch_up(&mut self, dt_secs: f64, ticks: u64) {
        debug_assert!(
            self.thermal.is_none(),
            "catch_up is only valid without a thermal model"
        );
        self.proc_counters.advance_many(&self.state, dt_secs, ticks);
    }

    /// True ("metered") power draw in the current state, watts. With the
    /// thermal model enabled this includes temperature-dependent leakage
    /// above the calibrated tables.
    pub fn power_w(&self) -> f64 {
        let base = self.model.power_w(self.level, &self.state);
        match &self.thermal {
            Some(t) => base + t.leakage_excess_w(self.model.table().idle_power_w(self.level)),
            None => base,
        }
    }

    /// Current die temperature, °C (`None` without a thermal model).
    pub fn temperature_c(&self) -> Option<f64> {
        self.thermal.as_ref().map(|t| t.temperature_c())
    }

    /// Relative failure rate vs. `reference_c` (doubles every 10 °C),
    /// `None` without a thermal model.
    pub fn relative_failure_rate(&self, reference_c: f64) -> Option<f64> {
        self.thermal
            .as_ref()
            .map(|t| t.relative_failure_rate(reference_c))
    }

    /// Sets an absolute power level.
    pub fn set_level(&mut self, level: Level) -> Result<(), NodeError> {
        if self.privileged {
            return Err(NodeError::Privileged);
        }
        if !self.spec.ladder.contains(level) {
            return Err(NodeError::InvalidLevel {
                requested: level,
                highest: self.spec.ladder.highest(),
            });
        }
        self.level = level;
        Ok(())
    }

    /// Steps one level down (less power). Errors at the bottom.
    pub fn degrade(&mut self) -> Result<Level, NodeError> {
        if self.privileged {
            return Err(NodeError::Privileged);
        }
        let lower = self.level.down().ok_or(NodeError::AlreadyLowest)?;
        self.level = lower;
        Ok(lower)
    }

    /// Steps one level up (more performance). Errors at the top.
    pub fn upgrade(&mut self) -> Result<Level, NodeError> {
        if self.privileged {
            return Err(NodeError::Privileged);
        }
        if self.level >= self.spec.ladder.highest() {
            return Err(NodeError::AlreadyHighest);
        }
        self.level = self.level.up();
        Ok(self.level)
    }

    /// Forces the lowest level (the Red-state action).
    pub fn force_lowest(&mut self) -> Result<(), NodeError> {
        if self.privileged {
            return Err(NodeError::Privileged);
        }
        self.level = Level::LOWEST;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        let spec = Arc::new(NodeSpec::tianhe_1a());
        let model = spec.power_model(1.0);
        Node::new(NodeId(7), spec, model)
    }

    #[test]
    fn new_node_is_unthrottled_and_idle() {
        let n = node();
        assert_eq!(n.level(), Level::new(9));
        assert!(n.is_idle());
        assert!(!n.is_privileged());
        assert_eq!(n.relative_speed(), 1.0);
        assert_eq!(n.id().to_string(), "n007");
    }

    #[test]
    fn degrade_upgrade_walk_the_ladder() {
        let mut n = node();
        assert_eq!(n.degrade().unwrap(), Level::new(8));
        assert_eq!(n.degrade().unwrap(), Level::new(7));
        assert_eq!(n.upgrade().unwrap(), Level::new(8));
        assert_eq!(n.upgrade().unwrap(), Level::new(9));
        assert_eq!(n.upgrade(), Err(NodeError::AlreadyHighest));
    }

    #[test]
    fn degrade_stops_at_bottom() {
        let mut n = node();
        n.force_lowest().unwrap();
        assert_eq!(n.level(), Level::LOWEST);
        assert_eq!(n.degrade(), Err(NodeError::AlreadyLowest));
    }

    #[test]
    fn privileged_node_refuses_all_commands() {
        let mut n = node();
        n.set_privileged(true);
        assert_eq!(n.degrade(), Err(NodeError::Privileged));
        assert_eq!(n.upgrade(), Err(NodeError::Privileged));
        assert_eq!(n.force_lowest(), Err(NodeError::Privileged));
        assert_eq!(n.set_level(Level::new(1)), Err(NodeError::Privileged));
        assert_eq!(n.level(), Level::new(9), "level untouched");
    }

    #[test]
    fn set_level_validates_range() {
        let mut n = node();
        assert!(n.set_level(Level::new(3)).is_ok());
        assert_eq!(n.level(), Level::new(3));
        assert!(matches!(
            n.set_level(Level::new(10)),
            Err(NodeError::InvalidLevel { .. })
        ));
    }

    #[test]
    fn power_tracks_level_and_load() {
        let mut n = node();
        let idle_top = n.power_w();
        n.run_interval(
            OperatingState {
                cpu_util: 1.0,
                mem_used_bytes: 24 << 30,
                nic_bytes: 5_000_000_000,
            },
            1.0,
        );
        let busy_top = n.power_w();
        assert!(busy_top > idle_top + 100.0);
        n.force_lowest().unwrap();
        let busy_bottom = n.power_w();
        assert!(busy_bottom < busy_top);
        assert!(n.relative_speed() < 0.6);
    }

    #[test]
    fn thermal_node_heats_under_load_and_draws_more() {
        let spec = Arc::new(NodeSpec::tianhe_1a_thermal());
        let model = spec.power_model(1.0);
        let mut n = Node::new(NodeId(1), Arc::clone(&spec), model);
        assert_eq!(n.temperature_c(), Some(25.0));
        let cold_power = {
            let mut m = n.clone();
            m.run_interval(
                OperatingState {
                    cpu_util: 1.0,
                    mem_used_bytes: 24 << 30,
                    nic_bytes: 0,
                },
                1.0,
            );
            m.power_w()
        };
        // Run hot for two hours of simulated time.
        for _ in 0..7_200 {
            n.run_interval(
                OperatingState {
                    cpu_util: 1.0,
                    mem_used_bytes: 24 << 30,
                    nic_bytes: 0,
                },
                1.0,
            );
        }
        let temp = n.temperature_c().unwrap();
        assert!(temp > 55.0, "hot node should exceed 55 °C, got {temp}");
        assert!(
            n.power_w() > cold_power + 3.0,
            "thermal leakage must add power: hot {} vs cold {}",
            n.power_w(),
            cold_power
        );
        assert!(n.relative_failure_rate(25.0).unwrap() > 4.0);
        // A non-thermal node reports None.
        let plain = node();
        assert_eq!(plain.temperature_c(), None);
        assert_eq!(plain.relative_failure_rate(25.0), None);
    }

    #[test]
    fn catch_up_matches_repeated_run_interval() {
        let state = OperatingState {
            cpu_util: 0.37,
            mem_used_bytes: 3 << 30,
            nic_bytes: 12_345,
        };
        let mut stepped = node();
        stepped.run_interval(state, 1.0);
        for _ in 0..9 {
            stepped.run_interval(state, 1.0);
        }
        let mut jumped = node();
        jumped.run_interval(state, 1.0);
        jumped.catch_up(1.0, 9);
        assert_eq!(stepped.proc_counters(), jumped.proc_counters());
        assert_eq!(stepped.power_w().to_bits(), jumped.power_w().to_bits());
    }

    #[test]
    fn run_interval_updates_proc_counters() {
        let mut n = node();
        n.run_interval(
            OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 1 << 30,
                nic_bytes: 777,
            },
            2.0,
        );
        let c = n.proc_counters();
        assert_eq!(c.busy_jiffies + c.idle_jiffies, 200);
        assert_eq!(c.mem_used_bytes, 1 << 30);
        assert_eq!(c.nic_bytes_wrapping, 777);
    }
}
