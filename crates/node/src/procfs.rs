//! Simulated `/proc` counters and their sampling.
//!
//! On the testbed, `Uti_cpu`, `Mem_used` and `Mem_total` come from the
//! Linux `/proc` interface and `Data_NIC` from the interconnect chipset's
//! log. A profiling agent never sees instantaneous utilization — it sees
//! *cumulative counters* and differentiates across the sampling interval.
//! This module reproduces that mechanism, including its sharp edges:
//! jiffy granularity (`USER_HZ = 100`) and NIC byte counters that wrap
//! at 32 bits (as many chipset registers do).

use crate::profile::OperatingState;
use serde::{Deserialize, Serialize};

/// Linux scheduler tick rate: jiffies per second.
pub const USER_HZ: u64 = 100;

/// Cumulative counters exposed by a node, as `/proc` would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcCounters {
    /// Busy jiffies (user + system), cumulative.
    pub busy_jiffies: u64,
    /// Idle jiffies, cumulative.
    pub idle_jiffies: u64,
    /// Bytes currently in use (gauge, not a counter).
    pub mem_used_bytes: u64,
    /// Cumulative NIC bytes (rx+tx), wrapping at 32 bits.
    pub nic_bytes_wrapping: u32,
}

impl ProcCounters {
    /// Advances the counters by `dt_secs` of operation in `state`.
    ///
    /// Jiffies are apportioned between busy and idle by utilization with
    /// integer rounding — exactly the quantization a real agent sees.
    pub fn advance(&mut self, state: &OperatingState, dt_secs: f64) {
        self.advance_many(state, dt_secs, 1);
    }

    /// Advances the counters by `ticks` consecutive intervals of `dt_secs`
    /// in the *same* `state`, in closed form.
    ///
    /// Because the per-tick increments depend only on `(state, dt_secs)`,
    /// applying them `k` times is exactly `k` scalar multiplies — this is
    /// what lets the incremental evaluation path fast-forward a quiescent
    /// node's counters without touching it every tick. Bit-identical to
    /// calling [`advance`](Self::advance) `ticks` times.
    pub fn advance_many(&mut self, state: &OperatingState, dt_secs: f64, ticks: u64) {
        assert!(dt_secs >= 0.0, "time cannot run backwards");
        if ticks == 0 {
            return;
        }
        let total_jiffies = (dt_secs * USER_HZ as f64).round() as u64;
        let busy = (total_jiffies as f64 * state.cpu_util.clamp(0.0, 1.0)).round() as u64;
        let idle = total_jiffies - busy.min(total_jiffies);
        self.busy_jiffies += busy * ticks;
        self.idle_jiffies += idle * ticks;
        self.mem_used_bytes = state.mem_used_bytes;
        // k wrapping adds of x mod 2^32 collapse to one wrapping k·x.
        self.nic_bytes_wrapping = self
            .nic_bytes_wrapping
            .wrapping_add((state.nic_bytes as u32).wrapping_mul(ticks as u32));
    }
}

/// A snapshot taken by a profiling agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcSnapshot {
    counters: ProcCounters,
}

impl ProcSnapshot {
    /// Captures the current counters.
    pub fn capture(counters: &ProcCounters) -> Self {
        ProcSnapshot {
            counters: *counters,
        }
    }

    /// Returns the snapshot a capture would yield after `ticks` further
    /// intervals of `dt_secs` in `state` — the agent-side mirror of
    /// [`ProcCounters::advance_many`], used to fast-forward a quiescent
    /// agent's baseline without re-reading the node.
    pub fn advanced(&self, state: &OperatingState, dt_secs: f64, ticks: u64) -> ProcSnapshot {
        let mut counters = self.counters;
        counters.advance_many(state, dt_secs, ticks);
        ProcSnapshot { counters }
    }

    /// Derives the operating state over the interval between `earlier` and
    /// `self`, i.e. what the agent reports upstream.
    ///
    /// Returns `None` when no jiffies elapsed (interval too short to
    /// measure) — the agent then re-reports its previous estimate.
    pub fn delta_since(&self, earlier: &ProcSnapshot) -> Option<OperatingState> {
        let busy = self
            .counters
            .busy_jiffies
            .saturating_sub(earlier.counters.busy_jiffies);
        let idle = self
            .counters
            .idle_jiffies
            .saturating_sub(earlier.counters.idle_jiffies);
        let total = busy + idle;
        if total == 0 {
            return None;
        }
        // Wrapping subtraction recovers the true delta across a 32-bit wrap
        // as long as fewer than 2^32 bytes moved in one interval.
        let nic_delta = self
            .counters
            .nic_bytes_wrapping
            .wrapping_sub(earlier.counters.nic_bytes_wrapping);
        Some(OperatingState {
            cpu_util: busy as f64 / total as f64,
            mem_used_bytes: self.counters.mem_used_bytes,
            nic_bytes: nic_delta as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn advance_apportions_jiffies_by_utilization() {
        let mut c = ProcCounters::default();
        let state = OperatingState {
            cpu_util: 0.75,
            mem_used_bytes: 1 << 30,
            nic_bytes: 1000,
        };
        c.advance(&state, 2.0);
        assert_eq!(c.busy_jiffies, 150);
        assert_eq!(c.idle_jiffies, 50);
        assert_eq!(c.mem_used_bytes, 1 << 30);
        assert_eq!(c.nic_bytes_wrapping, 1000);
    }

    #[test]
    fn delta_recovers_utilization() {
        let mut c = ProcCounters::default();
        let s0 = ProcSnapshot::capture(&c);
        c.advance(
            &OperatingState {
                cpu_util: 0.6,
                mem_used_bytes: 42,
                nic_bytes: 500,
            },
            1.0,
        );
        let s1 = ProcSnapshot::capture(&c);
        let est = s1.delta_since(&s0).unwrap();
        assert!((est.cpu_util - 0.6).abs() < 0.011, "jiffy-rounded util");
        assert_eq!(est.mem_used_bytes, 42);
        assert_eq!(est.nic_bytes, 500);
    }

    #[test]
    fn zero_interval_yields_none() {
        let c = ProcCounters::default();
        let s = ProcSnapshot::capture(&c);
        assert_eq!(s.delta_since(&s), None);
    }

    #[test]
    fn nic_counter_wrap_is_transparent() {
        let mut c = ProcCounters {
            nic_bytes_wrapping: u32::MAX - 100,
            ..Default::default()
        };
        let s0 = ProcSnapshot::capture(&c);
        c.advance(
            &OperatingState {
                cpu_util: 0.1,
                mem_used_bytes: 0,
                nic_bytes: 1_000,
            },
            1.0,
        );
        let s1 = ProcSnapshot::capture(&c);
        let est = s1.delta_since(&s0).unwrap();
        assert_eq!(est.nic_bytes, 1_000, "delta must survive the 32-bit wrap");
    }

    #[test]
    fn utilization_extremes() {
        let mut c = ProcCounters::default();
        let s0 = ProcSnapshot::capture(&c);
        c.advance(&OperatingState::IDLE, 1.0);
        let s1 = ProcSnapshot::capture(&c);
        assert_eq!(s1.delta_since(&s0).unwrap().cpu_util, 0.0);
        let s2 = ProcSnapshot::capture(&c);
        c.advance(
            &OperatingState {
                cpu_util: 1.0,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            1.0,
        );
        let s3 = ProcSnapshot::capture(&c);
        assert_eq!(s3.delta_since(&s2).unwrap().cpu_util, 1.0);
    }

    proptest! {
        /// Closed-form k-tick advance is bit-identical to k single advances,
        /// including across the NIC 32-bit wrap.
        #[test]
        fn prop_advance_many_matches_iterated(
            util in 0.0f64..1.0,
            dt in 0.1f64..5.0,
            nic in 0u64..4_000_000_000,
            k in 0u64..200,
        ) {
            let state = OperatingState { cpu_util: util, mem_used_bytes: 77, nic_bytes: nic };
            let mut iterated = ProcCounters { nic_bytes_wrapping: u32::MAX - 5_000, ..Default::default() };
            let mut closed = iterated;
            for _ in 0..k {
                iterated.advance(&state, dt);
            }
            closed.advance_many(&state, dt, k);
            prop_assert_eq!(iterated, closed);
        }

        /// Sampled utilization matches true utilization within one jiffy of
        /// quantization error, for any interval and utilization.
        #[test]
        fn prop_sampling_accuracy(util in 0.0f64..1.0, dt in 0.5f64..10.0) {
            let mut c = ProcCounters::default();
            let s0 = ProcSnapshot::capture(&c);
            c.advance(&OperatingState { cpu_util: util, mem_used_bytes: 0, nic_bytes: 0 }, dt);
            let s1 = ProcSnapshot::capture(&c);
            let est = s1.delta_since(&s0).unwrap();
            let jiffy_err = 1.0 / (dt * USER_HZ as f64);
            prop_assert!((est.cpu_util - util).abs() <= jiffy_err + 1e-9,
                "est={} true={} err_budget={}", est.cpu_util, util, jiffy_err);
        }

        /// Busy + idle jiffies always equals total elapsed jiffies.
        #[test]
        fn prop_jiffy_conservation(steps in proptest::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..20)) {
            let mut c = ProcCounters::default();
            let mut expected_total = 0u64;
            for (util, dt) in steps {
                c.advance(&OperatingState { cpu_util: util, mem_used_bytes: 0, nic_bytes: 0 }, dt);
                expected_total += (dt * USER_HZ as f64).round() as u64;
            }
            prop_assert_eq!(c.busy_jiffies + c.idle_jiffies, expected_total);
        }
    }
}
