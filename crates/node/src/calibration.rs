//! Per-level power calibration tables.
//!
//! The paper's Formula (1) consumes per-level constants: the node idle
//! power `P_idle(l)` and the per-device maximal dynamic powers. On a real
//! deployment these come from a calibration run against a reference meter;
//! here we derive them from the device specs once, up front, and the rest
//! of the system only ever reads the table. That mirrors the real split:
//! profiling agents are cheap at runtime because the expensive part was
//! done offline.

use crate::device::{CpuSpec, MemSpec, NicSpec};
use crate::freq::{FrequencyLadder, Level};
use serde::{Deserialize, Serialize};

/// Idle-power curve parameters.
///
/// A node's static power has a level-independent floor (fans, board,
/// chipset, DRAM refresh) plus a CPU leakage term that tracks `V²` — a
/// chip at a higher operating point leaks more even when idle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleCurve {
    /// Level-independent base, in watts.
    pub base_w: f64,
    /// Additional idle power at the *top* level, in watts; scales down with
    /// `V²` at lower levels.
    pub leakage_at_top_w: f64,
}

impl IdleCurve {
    /// `P_idle(l)` in watts.
    pub fn idle_w(&self, ladder: &FrequencyLadder, level: Level) -> f64 {
        let v = ladder.point(level).voltage_v;
        let v_top = ladder.point(ladder.highest()).voltage_v;
        self.base_w + self.leakage_at_top_w * (v * v) / (v_top * v_top)
    }
}

/// Fully-materialized per-level power table for one node model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTable {
    /// `P_idle(l)` per level, watts.
    pub idle_w: Vec<f64>,
    /// `Σ_x P_x(l)` (all CPU sockets) per level, watts.
    pub cpu_dynamic_w: Vec<f64>,
    /// `P_mem(l)` per level, watts.
    pub mem_dynamic_w: Vec<f64>,
    /// `P_NIC(l)` per level, watts.
    pub nic_dynamic_w: Vec<f64>,
}

impl PowerTable {
    /// Builds the table by evaluating the device models at every level.
    pub fn calibrate(
        ladder: &FrequencyLadder,
        idle: &IdleCurve,
        cpu: &CpuSpec,
        mem: &MemSpec,
        nic: &NicSpec,
    ) -> Self {
        let mut t = PowerTable {
            idle_w: Vec::with_capacity(ladder.len()),
            cpu_dynamic_w: Vec::with_capacity(ladder.len()),
            mem_dynamic_w: Vec::with_capacity(ladder.len()),
            nic_dynamic_w: Vec::with_capacity(ladder.len()),
        };
        for level in ladder.levels() {
            t.idle_w.push(idle.idle_w(ladder, level));
            t.cpu_dynamic_w.push(cpu.total_dynamic_w(ladder, level));
            t.mem_dynamic_w.push(mem.dynamic_w(ladder, level));
            t.nic_dynamic_w.push(nic.dynamic_w(ladder, level));
        }
        t
    }

    /// Number of levels in the table.
    pub fn len(&self) -> usize {
        self.idle_w.len()
    }

    /// True if the table has no levels (never true for calibrated tables).
    pub fn is_empty(&self) -> bool {
        self.idle_w.is_empty()
    }

    /// Theoretical maximal node power at `level`: idle plus every device at
    /// full dynamic draw. The sum over all nodes at the top level is the
    /// paper's `P_thy`.
    pub fn max_power_w(&self, level: Level) -> f64 {
        let i = level.index();
        self.idle_w[i] + self.cpu_dynamic_w[i] + self.mem_dynamic_w[i] + self.nic_dynamic_w[i]
    }

    /// Minimal node power at `level` (idle).
    pub fn idle_power_w(&self, level: Level) -> f64 {
        self.idle_w[level.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (FrequencyLadder, PowerTable) {
        let ladder = FrequencyLadder::xeon_x5670();
        let table = PowerTable::calibrate(
            &ladder,
            &IdleCurve {
                base_w: 130.0,
                leakage_at_top_w: 30.0,
            },
            &CpuSpec {
                sockets: 2,
                cores_per_socket: 6,
                max_dynamic_w_per_socket: 65.0,
            },
            &MemSpec {
                total_bytes: 24 << 30,
                max_dynamic_w: 36.0,
                level_coupling: 0.0,
            },
            &NicSpec {
                bandwidth_bytes_per_sec: 5.0e9,
                max_dynamic_w: 15.0,
                level_coupling: 0.0,
            },
        );
        (ladder, table)
    }

    #[test]
    fn table_covers_all_levels() {
        let (ladder, table) = fixture();
        assert_eq!(table.len(), ladder.len());
        assert!(!table.is_empty());
    }

    #[test]
    fn idle_curve_is_monotone_and_bounded() {
        let (_ladder, table) = fixture();
        for w in table.idle_w.windows(2) {
            assert!(w[1] > w[0], "idle power must rise with level");
        }
        // Top idle = base + full leakage = 160 W.
        assert!((table.idle_w[9] - 160.0).abs() < 1e-9);
        // Bottom idle = base + leakage·(0.85/1.2)² ≈ 145 W.
        let expected = 130.0 + 30.0 * (0.85f64 / 1.2).powi(2);
        assert!((table.idle_w[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn max_power_matches_realistic_node_envelope() {
        let (ladder, table) = fixture();
        let peak = table.max_power_w(ladder.highest());
        // 160 idle + 130 CPU + 36 mem + 15 NIC = 341 W.
        assert!((peak - 341.0).abs() < 1e-9);
        let floor = table.idle_power_w(Level::LOWEST);
        assert!(floor > 140.0 && floor < 150.0, "floor={floor}");
    }

    #[test]
    fn max_power_is_monotone_in_level() {
        let (ladder, table) = fixture();
        let mut prev = 0.0;
        for level in ladder.levels() {
            let p = table.max_power_w(level);
            assert!(p > prev);
            prev = p;
        }
    }
}
