//! Node model presets.
//!
//! A [`NodeSpec`] bundles the DVFS ladder, device specs, idle curve and the
//! calibrated power table; [`NodeSpec::tianhe_1a`] reproduces the paper's
//! testbed node (one Tianhe-1A main board: 2× Intel Xeon X5670, 6 cores
//! each, 6× 4 GB DDR3 per socket, Tianhe-1A interconnect chipset).

use crate::calibration::{IdleCurve, PowerTable};
use crate::device::{CpuSpec, MemSpec, NicSpec};
use crate::freq::FrequencyLadder;
use crate::profile::PowerModel;
use crate::thermal::ThermalSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Complete specification of one node model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable model name.
    pub name: String,
    /// DVFS ladder.
    pub ladder: FrequencyLadder,
    /// CPU package spec.
    pub cpu: CpuSpec,
    /// Memory spec.
    pub mem: MemSpec,
    /// NIC spec.
    pub nic: NicSpec,
    /// Idle-power curve.
    pub idle: IdleCurve,
    /// Optional thermal model (RC die temperature + leakage feedback).
    /// `None` reproduces the paper's temperature-independent Formula (1).
    pub thermal: Option<ThermalSpec>,
}

impl NodeSpec {
    /// The Tianhe-1A main-board node of the paper's experiment environment.
    ///
    /// * 2 × Intel Xeon X5670 (6 cores each, DVFS 1.60–2.93 GHz in 10 steps)
    /// * 12 × 4 GB DDR3-1333 (24 GB total; the paper's "DDR3-133" with
    ///   "capacity of each memory device is 4GB", 6 devices per processor)
    /// * Tianhe-1A proprietary interconnect chipset (~40 Gb/s class link)
    ///
    /// Power calibration: 95 W TDP per socket split into ~30 W idle/leakage
    /// and ~65 W max dynamic; board + fans + DRAM floor of 130 W. This puts
    /// the node envelope at ≈145 W (idle, lowest level) to ≈341 W (full
    /// load, top level) — consistent with dual-socket Westmere-EP servers.
    pub fn tianhe_1a() -> Self {
        NodeSpec {
            name: "Tianhe-1A node (2x Xeon X5670)".to_string(),
            ladder: FrequencyLadder::xeon_x5670(),
            cpu: CpuSpec {
                sockets: 2,
                cores_per_socket: 6,
                max_dynamic_w_per_socket: 65.0,
            },
            mem: MemSpec {
                total_bytes: 24 << 30,
                max_dynamic_w: 36.0,
                level_coupling: 0.0,
            },
            nic: NicSpec {
                bandwidth_bytes_per_sec: 5.0e9,
                max_dynamic_w: 15.0,
                level_coupling: 0.0,
            },
            idle: IdleCurve {
                base_w: 130.0,
                leakage_at_top_w: 30.0,
            },
            thermal: None,
        }
    }

    /// The Tianhe-1A node with the air-cooled thermal model enabled
    /// (extension experiments; see `ppc-node::thermal`).
    pub fn tianhe_1a_thermal() -> Self {
        NodeSpec {
            thermal: Some(ThermalSpec::air_cooled_1u()),
            ..Self::tianhe_1a()
        }
    }

    /// A Tianhe-1A-era node built on the Xeon X5650 (2.66 GHz, 7 DVFS
    /// levels, 85 W per socket): the second flavor of a heterogeneous
    /// partition. Same core count as the X5670 node, so rank placement is
    /// uniform; ladder height and power envelope differ.
    pub fn tianhe_1a_x5650() -> Self {
        NodeSpec {
            name: "Tianhe-1A node (2x Xeon X5650)".to_string(),
            ladder: FrequencyLadder::xeon_x5650(),
            cpu: CpuSpec {
                sockets: 2,
                cores_per_socket: 6,
                max_dynamic_w_per_socket: 58.0,
            },
            mem: MemSpec {
                total_bytes: 24 << 30,
                max_dynamic_w: 36.0,
                level_coupling: 0.0,
            },
            nic: NicSpec {
                bandwidth_bytes_per_sec: 5.0e9,
                max_dynamic_w: 15.0,
                level_coupling: 0.0,
            },
            idle: IdleCurve {
                base_w: 128.0,
                leakage_at_top_w: 26.0,
            },
            thermal: None,
        }
    }

    /// A small 4-level "mini" node used by fast tests and the quickstart
    /// example: same structure, smaller envelope.
    pub fn mini() -> Self {
        use crate::freq::OperatingPoint;
        let points = vec![
            OperatingPoint {
                freq_ghz: 1.0,
                voltage_v: 0.8,
            },
            OperatingPoint {
                freq_ghz: 1.5,
                voltage_v: 0.9,
            },
            OperatingPoint {
                freq_ghz: 2.0,
                voltage_v: 1.0,
            },
            OperatingPoint {
                freq_ghz: 2.5,
                voltage_v: 1.1,
            },
        ];
        NodeSpec {
            name: "mini 4-level node".to_string(),
            ladder: FrequencyLadder::new(points),
            cpu: CpuSpec {
                sockets: 1,
                cores_per_socket: 4,
                max_dynamic_w_per_socket: 40.0,
            },
            mem: MemSpec {
                total_bytes: 8 << 30,
                max_dynamic_w: 10.0,
                level_coupling: 0.0,
            },
            nic: NicSpec {
                bandwidth_bytes_per_sec: 1.0e9,
                max_dynamic_w: 5.0,
                level_coupling: 0.0,
            },
            idle: IdleCurve {
                base_w: 40.0,
                leakage_at_top_w: 10.0,
            },
            thermal: None,
        }
    }

    /// Calibrates the per-level power table for this spec.
    pub fn calibrate(&self) -> PowerTable {
        PowerTable::calibrate(&self.ladder, &self.idle, &self.cpu, &self.mem, &self.nic)
    }

    /// Builds the Formula-(1) evaluator for this spec at sampling interval
    /// `tau_secs`, wrapped in an [`Arc`] so hundreds of identical nodes
    /// share one table.
    pub fn power_model(&self, tau_secs: f64) -> Arc<PowerModel> {
        Arc::new(PowerModel::new(
            self.calibrate(),
            self.mem.total_bytes,
            self.nic.clone(),
            tau_secs,
        ))
    }

    /// Scheduling slots (total cores) per node.
    pub fn cores(&self) -> u32 {
        self.cpu.total_cores()
    }

    /// Theoretical maximal power of one node (contribution to `P_thy`).
    pub fn theoretical_max_w(&self) -> f64 {
        self.calibrate().max_power_w(self.ladder.highest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianhe_node_matches_paper_hardware() {
        let spec = NodeSpec::tianhe_1a();
        assert_eq!(spec.ladder.len(), 10);
        assert_eq!(spec.cores(), 12);
        assert_eq!(spec.mem.total_bytes, 24 << 30);
        let peak = spec.theoretical_max_w();
        assert!((300.0..380.0).contains(&peak), "peak={peak}");
    }

    #[test]
    fn mini_node_is_small_but_valid() {
        let spec = NodeSpec::mini();
        assert_eq!(spec.ladder.len(), 4);
        assert_eq!(spec.cores(), 4);
        assert!(spec.theoretical_max_w() < 120.0);
    }

    #[test]
    fn x5650_node_is_a_valid_second_flavor() {
        let a = NodeSpec::tianhe_1a();
        let b = NodeSpec::tianhe_1a_x5650();
        assert_eq!(b.ladder.len(), 7);
        assert_eq!(
            a.cores(),
            b.cores(),
            "uniform rank placement requires equal cores"
        );
        assert!(b.theoretical_max_w() < a.theoretical_max_w());
        assert_eq!(b.ladder.max_freq_ghz(), 2.66);
    }

    #[test]
    fn power_model_shares_table() {
        let spec = NodeSpec::tianhe_1a();
        let m1 = spec.power_model(1.0);
        let m2 = Arc::clone(&m1);
        assert_eq!(m1.table(), m2.table());
        assert_eq!(m1.tau_secs(), 1.0);
    }
}
