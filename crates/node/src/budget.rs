//! Node-level power-budget allocation.
//!
//! The paper's related work (§I.B) describes the classic two-level
//! structure of Femal et al.: a cluster-level manager hands each node a
//! watt budget, and "the node-level power manager then allocates its
//! power budget to each device in the node, making sure that its power
//! expenditure is beneath its local threshold". This module is that
//! node-level half: given a budget and the node's operating state, find
//! the operating point that fits.
//!
//! On DVFS-only hardware (the testbed), the allocation degenerates to
//! picking the highest frequency level whose Formula-(1) prediction stays
//! within budget — [`level_for_budget`]. [`BudgetFit`] reports how the
//! budget was met so callers can distinguish "fits at the top" from
//! "cannot fit even at the floor".

use crate::freq::Level;
use crate::profile::{OperatingState, PowerModel};
use serde::{Deserialize, Serialize};

/// How a budget request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetFit {
    /// The node fits the budget even at its highest level: no throttling
    /// needed.
    Unconstrained,
    /// The returned (sub-maximal) level is the highest that fits.
    Constrained {
        /// Headroom left under the budget at the chosen level, watts.
        headroom_w: f64,
    },
    /// Even the lowest level exceeds the budget; the node is pinned to
    /// the floor and overshoots by this much.
    Infeasible {
        /// Watts above budget at the lowest level.
        excess_w: f64,
    },
}

/// Picks the highest level whose predicted power fits `budget_w` for the
/// given operating state, with a report of how the fit went.
///
/// # Panics
/// Panics if `budget_w` is not finite.
pub fn level_for_budget(
    model: &PowerModel,
    state: &OperatingState,
    budget_w: f64,
) -> (Level, BudgetFit) {
    assert!(budget_w.is_finite(), "budget must be finite");
    let levels = model.table().len();
    debug_assert!(levels >= 1);
    let top = Level::new((levels - 1) as u8);
    if model.power_w(top, state) <= budget_w {
        return (top, BudgetFit::Unconstrained);
    }
    // Power is monotone in level, so scan downward for the first fit.
    for idx in (0..levels - 1).rev() {
        let level = Level::new(idx as u8);
        let p = model.power_w(level, state);
        if p <= budget_w {
            return (
                level,
                BudgetFit::Constrained {
                    headroom_w: budget_w - p,
                },
            );
        }
    }
    let floor_p = model.power_w(Level::LOWEST, state);
    (
        Level::LOWEST,
        BudgetFit::Infeasible {
            excess_w: floor_p - budget_w,
        },
    )
}

/// Splits a cluster budget across nodes proportionally to their current
/// power draws (the ensemble-style division of Ranganathan et al.).
/// Returns one budget per input entry; zero-draw nodes receive an equal
/// share of whatever the positive-draw nodes do not claim.
///
/// # Panics
/// Panics if `total_budget_w` is negative or not finite.
pub fn proportional_budgets(draws_w: &[f64], total_budget_w: f64) -> Vec<f64> {
    assert!(
        total_budget_w.is_finite() && total_budget_w >= 0.0,
        "budget must be finite and non-negative"
    );
    let total_draw: f64 = draws_w.iter().sum();
    if draws_w.is_empty() {
        return Vec::new();
    }
    if total_draw <= 0.0 {
        let share = total_budget_w / draws_w.len() as f64;
        return vec![share; draws_w.len()];
    }
    draws_w
        .iter()
        .map(|&d| total_budget_w * d / total_draw)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;
    use proptest::prelude::*;

    fn fixture() -> (std::sync::Arc<PowerModel>, OperatingState) {
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 12 << 30,
            nic_bytes: 500_000_000,
        };
        (model, busy)
    }

    #[test]
    fn generous_budget_is_unconstrained() {
        let (model, busy) = fixture();
        let (level, fit) = level_for_budget(&model, &busy, 10_000.0);
        assert_eq!(level, Level::new(9));
        assert_eq!(fit, BudgetFit::Unconstrained);
    }

    #[test]
    fn tight_budget_picks_highest_fitting_level() {
        let (model, busy) = fixture();
        let top_power = model.power_w(Level::new(9), &busy);
        let budget = top_power - 30.0; // force at least one step down
        let (level, fit) = level_for_budget(&model, &busy, budget);
        assert!(level < Level::new(9));
        let p = model.power_w(level, &busy);
        assert!(p <= budget);
        // The next level up must NOT fit (highest-fitting property).
        let up = level.up();
        assert!(model.power_w(up, &busy) > budget);
        match fit {
            BudgetFit::Constrained { headroom_w } => {
                assert!((headroom_w - (budget - p)).abs() < 1e-9);
            }
            other => panic!("expected Constrained, got {other:?}"),
        }
    }

    #[test]
    fn impossible_budget_reports_excess() {
        let (model, busy) = fixture();
        let (level, fit) = level_for_budget(&model, &busy, 50.0);
        assert_eq!(level, Level::LOWEST);
        match fit {
            BudgetFit::Infeasible { excess_w } => {
                let floor = model.power_w(Level::LOWEST, &busy);
                assert!((excess_w - (floor - 50.0)).abs() < 1e-9);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn proportional_split_preserves_total_and_ratios() {
        let draws = [300.0, 150.0, 50.0];
        let budgets = proportional_budgets(&draws, 400.0);
        assert!((budgets.iter().sum::<f64>() - 400.0).abs() < 1e-9);
        assert!((budgets[0] / budgets[1] - 2.0).abs() < 1e-9);
        assert!((budgets[1] / budgets[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_split_handles_idle_cluster() {
        let budgets = proportional_budgets(&[0.0, 0.0], 100.0);
        assert_eq!(budgets, vec![50.0, 50.0]);
        assert!(proportional_budgets(&[], 100.0).is_empty());
    }

    proptest! {
        /// The chosen level always fits when any level fits, and the fit
        /// classification is consistent with the returned level.
        #[test]
        fn prop_budget_fit_consistency(
            util in 0.0f64..1.0,
            budget in 100.0f64..400.0,
        ) {
            let spec = NodeSpec::tianhe_1a();
            let model = spec.power_model(1.0);
            let state = OperatingState { cpu_util: util, mem_used_bytes: 0, nic_bytes: 0 };
            let (level, fit) = level_for_budget(&model, &state, budget);
            let p = model.power_w(level, &state);
            match fit {
                BudgetFit::Unconstrained => {
                    prop_assert_eq!(level, Level::new(9));
                    prop_assert!(p <= budget);
                }
                BudgetFit::Constrained { headroom_w } => {
                    prop_assert!(p <= budget + 1e-9);
                    prop_assert!(headroom_w >= 0.0);
                    prop_assert!(model.power_w(level.up(), &state) > budget);
                }
                BudgetFit::Infeasible { excess_w } => {
                    prop_assert_eq!(level, Level::LOWEST);
                    prop_assert!(excess_w > 0.0);
                }
            }
        }

        /// Proportional budgets conserve the total.
        #[test]
        fn prop_split_conserves(draws in proptest::collection::vec(0.0f64..500.0, 1..20), total in 0.0f64..10_000.0) {
            let budgets = proportional_budgets(&draws, total);
            prop_assert_eq!(budgets.len(), draws.len());
            let sum: f64 = budgets.iter().sum();
            prop_assert!((sum - total).abs() < 1e-6 * (1.0 + total));
        }
    }
}
