//! Jobs and their SPMD execution semantics.
//!
//! The paper's state-based policies lean on one property of well-balanced
//! parallel applications: *the job runs at the speed of its slowest node*.
//! [`Job::advance`] implements exactly that — the progress rate is the
//! minimum over member nodes of the current phase's rate at that node's
//! relative speed — so degrading one node of a job costs the same
//! performance as degrading all of them, while degrading all of them saves
//! much more power.

use crate::app::{Class, NpbApp};
use crate::model;
use crate::phase::Phase;
use crate::scaling::ranks_on_node;
use ppc_node::NodeId;
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster-unique job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Scheduling priority (paper §II.A: nodes running urgent / high-priority
/// / SLA-critical tasks are privileged — uncontrollable by the power
/// manager — for as long as that work runs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum JobPriority {
    /// Ordinary batch work: its nodes are capping candidates.
    #[default]
    Normal,
    /// Urgent / SLA-bound work: its nodes must never be degraded.
    Critical,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Executing on its allocated nodes.
    Running,
    /// Completed.
    Finished,
}

/// Per-node load a running job induces, in device-neutral units; the
/// cluster layer converts `nic_fraction` to bytes using the node's NIC
/// bandwidth and the tick length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// CPU utilization contribution ∈ [0, 1].
    pub cpu_util: f64,
    /// Memory in use, bytes.
    pub mem_bytes: u64,
    /// NIC usage as a fraction of link bandwidth ∈ [0, 1].
    pub nic_fraction: f64,
}

/// A parallel job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    app: NpbApp,
    class: Class,
    nprocs: u32,
    phases: Vec<Phase>,
    baseline_secs: f64,
    submitted_at: SimTime,
    status: JobStatus,
    nodes: Vec<NodeId>,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    cur_phase: usize,
    done_in_phase_secs: f64,
    /// Wall seconds during which at least one member node was throttled.
    throttled_secs: f64,
    priority: JobPriority,
    /// Times this job has been evicted and requeued after losing a node.
    requeues: u32,
}

impl Job {
    /// Creates a queued job from a pre-built phase list.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any phase is invalid.
    pub fn new(
        id: JobId,
        app: NpbApp,
        class: Class,
        nprocs: u32,
        phases: Vec<Phase>,
        submitted_at: SimTime,
    ) -> Self {
        assert!(!phases.is_empty(), "a job needs at least one phase");
        assert!(phases.iter().all(Phase::is_valid), "invalid phase");
        let baseline_secs = model::baseline_secs(&phases);
        Job {
            id,
            app,
            class,
            nprocs,
            phases,
            baseline_secs,
            submitted_at,
            status: JobStatus::Queued,
            nodes: Vec::new(),
            started_at: None,
            finished_at: None,
            cur_phase: 0,
            done_in_phase_secs: 0.0,
            throttled_secs: 0.0,
            priority: JobPriority::Normal,
            requeues: 0,
        }
    }

    /// Sets the job's priority (builder style).
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// The job's priority.
    pub fn priority(&self) -> JobPriority {
        self.priority
    }

    /// Job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Application.
    pub fn app(&self) -> NpbApp {
        self.app
    }

    /// Problem class.
    pub fn class(&self) -> Class {
        self.class
    }

    /// Rank count (the NPROCS parameter).
    pub fn nprocs(&self) -> u32 {
        self.nprocs
    }

    /// Lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.status
    }

    /// Nodes the job runs on (empty until started).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Submission time.
    pub fn submitted_at(&self) -> SimTime {
        self.submitted_at
    }

    /// Start time, if started.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Finish time, if finished.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Full-speed duration `T_j` (the paper's uncapped reference time).
    pub fn baseline_secs(&self) -> f64 {
        self.baseline_secs
    }

    /// Wall seconds spent with ≥1 member node below its top level.
    pub fn throttled_secs(&self) -> f64 {
        self.throttled_secs
    }

    /// Fraction of total work completed, in [0, 1].
    pub fn progress(&self) -> f64 {
        let done: f64 = self.phases[..self.cur_phase]
            .iter()
            .map(|p| p.work_secs)
            .sum::<f64>()
            + self.done_in_phase_secs;
        (done / self.baseline_secs).clamp(0.0, 1.0)
    }

    /// The currently executing phase (`None` once finished).
    pub fn current_phase(&self) -> Option<&Phase> {
        self.phases.get(self.cur_phase)
    }

    /// Index of the currently executing phase (== phase count once
    /// finished). Member-node loads are constant between changes of this
    /// index, which is what the simulator's dirty-set tracking keys on.
    pub fn phase_index(&self) -> usize {
        self.cur_phase
    }

    /// Marks the job started on `nodes` at time `at`.
    ///
    /// # Panics
    /// Panics if the job is not queued or `nodes` is empty.
    pub fn start(&mut self, nodes: Vec<NodeId>, at: SimTime) {
        assert_eq!(
            self.status,
            JobStatus::Queued,
            "job must be queued to start"
        );
        assert!(!nodes.is_empty(), "job must get at least one node");
        self.nodes = nodes;
        self.started_at = Some(at);
        self.status = JobStatus::Running;
    }

    /// Advances execution by `dt_secs` of wall time. `speed_of` returns the
    /// relative speed (`f/f_max ∈ (0,1]`) of each member node; the job
    /// progresses at the *minimum* member rate. Crossing phase boundaries
    /// within one step is handled exactly.
    ///
    /// Returns `Some(unused_secs)` if the job finished during this step,
    /// where `unused_secs` is the part of `dt_secs` left over after the
    /// final phase completed — the caller subtracts it from the step-end
    /// time to record an exact finish timestamp.
    pub fn advance(&mut self, dt_secs: f64, speed_of: &dyn Fn(NodeId) -> f64) -> Option<f64> {
        assert_eq!(self.status, JobStatus::Running, "only running jobs advance");
        let min_speed = self
            .nodes
            .iter()
            .map(|&n| speed_of(n))
            .fold(f64::INFINITY, f64::min);
        debug_assert!(min_speed > 0.0 && min_speed <= 1.0 + 1e-12);
        if min_speed < 1.0 - 1e-12 {
            self.throttled_secs += dt_secs;
        }
        let mut remaining = dt_secs;
        while remaining > 0.0 {
            let Some(phase) = self.phases.get(self.cur_phase) else {
                break;
            };
            let rate = phase.rate_at_speed(min_speed);
            let work_left = phase.work_secs - self.done_in_phase_secs;
            let time_to_finish = work_left / rate;
            if time_to_finish <= remaining {
                remaining -= time_to_finish;
                self.cur_phase += 1;
                self.done_in_phase_secs = 0.0;
            } else {
                self.done_in_phase_secs += remaining * rate;
                remaining = 0.0;
            }
        }
        (self.cur_phase >= self.phases.len()).then_some(remaining)
    }

    /// Times this job has been evicted and requeued.
    pub fn requeues(&self) -> u32 {
        self.requeues
    }

    /// Evicts a running job back to the queue after one of its nodes died.
    ///
    /// There is no checkpointing in the model: all completed work is lost
    /// and the job restarts from its first phase on its next placement.
    /// `throttled_secs` keeps accumulating across attempts — it measures
    /// total throttled wall time, which the cost metrics charge regardless
    /// of whether the attempt survived.
    ///
    /// # Panics
    /// Panics if the job is not running.
    pub fn requeue(&mut self) {
        assert_eq!(
            self.status,
            JobStatus::Running,
            "only running jobs can be requeued"
        );
        self.status = JobStatus::Queued;
        self.nodes.clear();
        self.started_at = None;
        self.cur_phase = 0;
        self.done_in_phase_secs = 0.0;
        self.requeues += 1;
    }

    /// Marks the job finished at `at`.
    pub fn finish(&mut self, at: SimTime) {
        assert!(self.cur_phase >= self.phases.len(), "job has work left");
        self.status = JobStatus::Finished;
        self.finished_at = Some(at);
    }

    /// Load this job currently induces on member node `node`, or `None` if
    /// the node is not a member or the job is not running.
    pub fn load_on(&self, node: NodeId, cores_per_node: u32) -> Option<NodeLoad> {
        if self.status != JobStatus::Running {
            return None;
        }
        let idx = self.nodes.iter().position(|&n| n == node)? as u32;
        let phase = self.current_phase()?;
        let ranks = ranks_on_node(self.nprocs, self.nodes.len() as u32, idx);
        let occupancy = (ranks as f64 / cores_per_node as f64).min(1.0);
        Some(NodeLoad {
            cpu_util: phase.cpu_util * occupancy,
            mem_bytes: self.class.mem_per_rank_bytes() * ranks as u64,
            nic_fraction: phase.nic_fraction * occupancy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseKind;

    fn two_phase_job() -> Job {
        let phases = vec![
            Phase {
                kind: PhaseKind::Compute,
                work_secs: 10.0,
                alpha: 1.0,
                cpu_util: 1.0,
                nic_fraction: 0.0,
            },
            Phase {
                kind: PhaseKind::Memory,
                work_secs: 10.0,
                alpha: 0.0,
                cpu_util: 0.5,
                nic_fraction: 0.1,
            },
        ];
        Job::new(JobId(1), NpbApp::Cg, Class::A, 8, phases, SimTime::ZERO)
    }

    #[test]
    fn full_speed_run_matches_baseline() {
        let mut j = two_phase_job();
        assert_eq!(j.baseline_secs(), 20.0);
        j.start(vec![NodeId(0)], SimTime::ZERO);
        let full = |_: NodeId| 1.0;
        let mut elapsed = 0.0;
        while j.advance(1.0, &full).is_none() {
            elapsed += 1.0;
            assert!(elapsed < 30.0, "runaway");
        }
        // 19 full steps + the finishing 20th.
        assert!((19.0..=20.0).contains(&elapsed));
        assert_eq!(j.throttled_secs(), 0.0);
        j.finish(SimTime::from_secs(20));
        assert_eq!(j.status(), JobStatus::Finished);
    }

    #[test]
    fn slowest_node_bounds_progress() {
        let mut j = two_phase_job();
        j.start(vec![NodeId(0), NodeId(1), NodeId(2)], SimTime::ZERO);
        // One throttled node at half speed, the rest at full.
        let speeds = |n: NodeId| if n == NodeId(1) { 0.5 } else { 1.0 };
        // Phase 1 is α=1: rate = 0.5 → takes 20 s instead of 10.
        let finished = j.advance(20.0, &speeds);
        assert!(finished.is_none());
        // Should be exactly at the phase boundary.
        assert!(
            (j.progress() - 0.5).abs() < 1e-9,
            "progress={}",
            j.progress()
        );
        assert_eq!(j.throttled_secs(), 20.0);
        // Phase 2 is α=0: speed does not matter, 10 s.
        let finished = j.advance(10.0, &speeds);
        assert!(finished.is_some());
    }

    #[test]
    fn phase_boundary_crossed_mid_step() {
        let mut j = two_phase_job();
        j.start(vec![NodeId(0)], SimTime::ZERO);
        let full = |_: NodeId| 1.0;
        // 15 s at full speed: 10 s phase 1 + 5 s into phase 2.
        assert!(j.advance(15.0, &full).is_none());
        assert!((j.progress() - 0.75).abs() < 1e-9);
        assert!(j.advance(5.0, &full).is_some());
    }

    #[test]
    fn whole_job_finishes_within_single_large_step() {
        let mut j = two_phase_job();
        j.start(vec![NodeId(0)], SimTime::ZERO);
        let unused = j.advance(100.0, &|_| 1.0).expect("finished");
        assert!((unused - 80.0).abs() < 1e-9, "unused={unused}");
        assert!((j.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_on_reflects_phase_and_occupancy() {
        let mut j = two_phase_job();
        assert!(j.load_on(NodeId(0), 12).is_none(), "not running yet");
        j.start(vec![NodeId(0)], SimTime::ZERO);
        // 8 ranks on a 12-core node: occupancy 2/3 of phase util 1.0.
        let load = j.load_on(NodeId(0), 12).unwrap();
        assert!((load.cpu_util - 8.0 / 12.0).abs() < 1e-9);
        assert_eq!(load.mem_bytes, Class::A.mem_per_rank_bytes() * 8);
        assert!(j.load_on(NodeId(9), 12).is_none(), "non-member");
    }

    #[test]
    fn progress_is_monotone() {
        let mut j = two_phase_job();
        j.start(vec![NodeId(0)], SimTime::ZERO);
        let mut last = 0.0;
        for _ in 0..25 {
            j.advance(1.0, &|_| 0.8);
            let p = j.progress();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn requeue_resets_execution_state_and_counts() {
        let mut j = two_phase_job();
        j.start(vec![NodeId(0), NodeId(1)], SimTime::from_secs(5));
        j.advance(12.0, &|_| 1.0);
        assert!(j.progress() > 0.5);
        j.requeue();
        assert_eq!(j.status(), JobStatus::Queued);
        assert!(j.nodes().is_empty());
        assert_eq!(j.started_at(), None);
        assert_eq!(j.progress(), 0.0, "no checkpointing: work is lost");
        assert_eq!(j.requeues(), 1);
        // The job can start again and run to completion.
        j.start(vec![NodeId(2)], SimTime::from_secs(40));
        assert!(j.advance(25.0, &|_| 1.0).is_some());
    }

    #[test]
    #[should_panic(expected = "only running jobs")]
    fn requeue_requires_running() {
        let mut j = two_phase_job();
        j.requeue();
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        Job::new(JobId(0), NpbApp::Ep, Class::A, 1, vec![], SimTime::ZERO);
    }
}
