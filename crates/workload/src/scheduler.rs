//! First-fit whole-node scheduler.
//!
//! Allocation is exclusive (one job per node) and first-fit on the
//! *lowest-numbered* free nodes, with FIFO head-of-line blocking. The
//! low-index packing matters for the paper's Figure 6: candidate sets that
//! grow from node 0 upward cover most of the running work long before they
//! cover the whole machine, which is why the capping effect saturates
//! around 48 of 128 nodes.

use crate::job::{Job, JobId, JobStatus, NodeLoad};
use crate::queue::JobQueue;
use crate::scaling::nodes_needed;
use crate::trace::JobRecord;
use ppc_node::NodeId;
use ppc_simkit::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// How queued jobs are admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum AdmissionPolicy {
    /// Strict FIFO with head-of-line blocking (the paper's protocol).
    #[default]
    FifoFirstFit,
    /// Aggressive backfill: when the head does not fit, any later queued
    /// job that fits may start (no reservations). Raises utilization at
    /// the cost of possible head starvation — used as a substrate
    /// ablation for the Figure 6 saturation analysis.
    Backfill,
}

/// Whole-node first-fit scheduler and run-queue.
#[derive(Debug, Clone)]
pub struct Scheduler {
    free: BTreeSet<NodeId>,
    cores_per_node: u32,
    running: Vec<Job>,
    /// Dense node-indexed owner table: `node_owner[node]` is the index of
    /// the owning job in `running` (`None` = idle). Maintained across
    /// `swap_remove` on completion, so per-node lookups (`load_on`, every
    /// node every tick) are one array read instead of a hash plus a
    /// linear scan over the run-queue.
    node_owner: Vec<Option<usize>>,
    total_nodes: usize,
    admission: AdmissionPolicy,
    /// Nodes currently down (crashed, not yet rebooted). Down nodes are
    /// neither free nor allocatable; conservation becomes
    /// `free + owned + down = total`.
    down: BTreeSet<NodeId>,
}

impl Scheduler {
    /// Creates a scheduler managing the given nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `cores_per_node == 0`.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, cores_per_node: u32) -> Self {
        assert!(cores_per_node > 0, "nodes must have cores");
        let free: BTreeSet<NodeId> = nodes.into_iter().collect();
        assert!(!free.is_empty(), "scheduler needs at least one node");
        let total_nodes = free.len();
        let max_id = free.iter().next_back().map_or(0, |n| n.0 as usize);
        Scheduler {
            node_owner: vec![None; max_id + 1],
            free,
            cores_per_node,
            running: Vec::new(),
            total_nodes,
            admission: AdmissionPolicy::default(),
            down: BTreeSet::new(),
        }
    }

    /// Selects the admission policy (builder style).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// The active admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Cores per node (for rank placement).
    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_node
    }

    /// Number of currently free nodes.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes under management.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Fraction of nodes currently allocated to jobs (down nodes are
    /// neither free nor utilized).
    pub fn utilization(&self) -> f64 {
        1.0 - (self.free.len() + self.down.len()) as f64 / self.total_nodes as f64
    }

    /// The currently running jobs.
    pub fn running_jobs(&self) -> &[Job] {
        &self.running
    }

    /// The job occupying `node`, if any.
    pub fn job_of_node(&self, node: NodeId) -> Option<JobId> {
        let idx = (*self.node_owner.get(node.0 as usize)?)?;
        Some(self.running[idx].id())
    }

    /// Maximum NPROCS this cluster can host (whole machine).
    pub fn max_nprocs(&self) -> u32 {
        self.total_nodes as u32 * self.cores_per_node
    }

    /// Starts queued jobs according to the admission policy; returns the
    /// started job ids in start order.
    pub fn try_start(&mut self, queue: &mut JobQueue, now: SimTime) -> Vec<JobId> {
        let mut started = Vec::new();
        loop {
            // FIFO pass: take from the head while it fits.
            let mut progressed = false;
            while let Some(head) = queue.peek() {
                let needed = nodes_needed(head.nprocs(), self.cores_per_node) as usize;
                if needed > self.free.len() {
                    break;
                }
                // The peek above guarantees a queued job; an empty pop
                // would be a queue bug — stop placing rather than panic.
                let Some(job) = queue.pop() else { break };
                started.push(self.place(job, now));
                progressed = true;
            }
            if self.admission == AdmissionPolicy::FifoFirstFit {
                break; // head-of-line blocking, no backfill
            }
            // Backfill pass: the head does not fit; admit the first later
            // job that does, then retry the FIFO pass (the head may now be
            // reachable after future completions only — keep scanning).
            let fits = queue.iter().position(|j| {
                nodes_needed(j.nprocs(), self.cores_per_node) as usize <= self.free.len()
            });
            match fits {
                Some(idx) if idx > 0 => {
                    let job = queue.remove(idx);
                    started.push(self.place(job, now));
                    progressed = true;
                }
                _ => {}
            }
            if !progressed {
                break;
            }
        }
        started
    }

    /// Allocates the lowest free nodes to `job` and starts it.
    fn place(&mut self, mut job: Job, now: SimTime) -> JobId {
        let needed = nodes_needed(job.nprocs(), self.cores_per_node) as usize;
        debug_assert!(needed <= self.free.len());
        let alloc: Vec<NodeId> = self.free.iter().copied().take(needed).collect();
        let slot = self.running.len();
        for &n in &alloc {
            self.free.remove(&n);
            self.node_owner[n.0 as usize] = Some(slot);
        }
        job.start(alloc, now);
        let id = job.id();
        self.running.push(job);
        id
    }

    /// Advances all running jobs by `dt_secs`; jobs that complete are
    /// finished at their exact sub-step completion instant (`now` minus
    /// the unused step time), their nodes freed, and records returned.
    pub fn advance(
        &mut self,
        dt_secs: f64,
        now: SimTime,
        speed_of: &dyn Fn(NodeId) -> f64,
    ) -> Vec<JobRecord> {
        let mut records = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            let done = self.running[i].advance(dt_secs, speed_of);
            if let Some(unused_secs) = done {
                let mut job = self.running.swap_remove(i);
                let finish_at = now - SimDuration::from_secs_f64(unused_secs.min(dt_secs));
                job.finish(finish_at);
                for &n in job.nodes() {
                    self.free.insert(n);
                    self.node_owner[n.0 as usize] = None;
                }
                // The job swapped down from the tail (if any) now lives at
                // slot `i` — repoint its nodes.
                if let Some(moved) = self.running.get(i) {
                    for &n in moved.nodes() {
                        self.node_owner[n.0 as usize] = Some(i);
                    }
                }
                records.push(JobRecord::from_job(&job));
            } else {
                i += 1;
            }
        }
        records
    }

    /// Evicts the job occupying `node`, if any, returning it still in the
    /// `Running` state (the caller decides whether to requeue or fail it).
    /// SPMD jobs cannot survive member loss, so the *whole* job comes off
    /// the machine: all of its nodes are freed and the owner table is
    /// repointed across the `swap_remove`, exactly as on completion.
    pub fn evict_job_on(&mut self, node: NodeId) -> Option<Job> {
        let idx = (*self.node_owner.get(node.0 as usize)?)?;
        let job = self.running.swap_remove(idx);
        for &n in job.nodes() {
            self.free.insert(n);
            self.node_owner[n.0 as usize] = None;
        }
        if let Some(moved) = self.running.get(idx) {
            for &n in moved.nodes() {
                self.node_owner[n.0 as usize] = Some(idx);
            }
        }
        Some(job)
    }

    /// Takes `node` out of service. The node must be idle — evict its job
    /// first — and not already down.
    ///
    /// # Panics
    /// Panics if the node still owns a job or is not managed by this
    /// scheduler.
    pub fn set_node_down(&mut self, node: NodeId) {
        assert!(
            self.node_owner
                .get(node.0 as usize)
                .copied()
                .flatten()
                .is_none(),
            "evict the job on {node} before marking it down"
        );
        if self.down.contains(&node) {
            return;
        }
        assert!(self.free.remove(&node), "{node} is not a managed free node");
        self.down.insert(node);
    }

    /// Returns a rebooted node to the free pool.
    pub fn set_node_up(&mut self, node: NodeId) {
        if self.down.remove(&node) {
            self.free.insert(node);
        }
    }

    /// True if `node` is currently out of service.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Number of nodes currently out of service.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// The load `node` currently carries, or `None` if idle.
    pub fn load_on(&self, node: NodeId) -> Option<NodeLoad> {
        let idx = (*self.node_owner.get(node.0 as usize)?)?;
        self.running[idx].load_on(node, self.cores_per_node)
    }

    /// Checks internal consistency (tests and debug assertions).
    pub fn check_invariants(&self) {
        // Every running job's nodes point back at its slot and are not free.
        for (slot, job) in self.running.iter().enumerate() {
            assert_eq!(job.status(), JobStatus::Running);
            for &n in job.nodes() {
                assert_eq!(
                    self.node_owner[n.0 as usize],
                    Some(slot),
                    "owner table must track {n} to slot {slot}"
                );
                assert!(!self.free.contains(&n), "running node must not be free");
                assert!(!self.down.contains(&n), "running node must not be down");
            }
        }
        // Ownership maps only to live run-queue slots.
        let owned = self.node_owner.iter().flatten().copied();
        let mut owned_count = 0;
        for idx in owned {
            assert!(idx < self.running.len(), "owner slot {idx} out of range");
            owned_count += 1;
        }
        // Conservation: free + owned + down = total.
        assert_eq!(
            self.free.len() + owned_count + self.down.len(),
            self.total_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Class, NpbApp};
    use crate::phase::{Phase, PhaseKind};

    fn job(id: u64, nprocs: u32, work: f64) -> Job {
        Job::new(
            JobId(id),
            NpbApp::Ep,
            Class::A,
            nprocs,
            vec![Phase {
                kind: PhaseKind::Compute,
                work_secs: work,
                alpha: 1.0,
                cpu_util: 1.0,
                nic_fraction: 0.1,
            }],
            SimTime::ZERO,
        )
    }

    fn sched(n: u32) -> Scheduler {
        Scheduler::new((0..n).map(NodeId), 12)
    }

    #[test]
    fn first_fit_takes_lowest_free_nodes() {
        let mut s = sched(8);
        let mut q = JobQueue::new();
        q.push(job(1, 24, 10.0)); // 2 nodes
        q.push(job(2, 12, 10.0)); // 1 node
        let started = s.try_start(&mut q, SimTime::ZERO);
        assert_eq!(started, vec![JobId(1), JobId(2)]);
        let j1 = &s.running_jobs()[0];
        assert_eq!(j1.nodes(), &[NodeId(0), NodeId(1)]);
        let j2 = &s.running_jobs()[1];
        assert_eq!(j2.nodes(), &[NodeId(2)]);
        assert_eq!(s.free_count(), 5);
        s.check_invariants();
    }

    #[test]
    fn backfill_admits_later_fitting_jobs() {
        let mut s = sched(4).with_admission(AdmissionPolicy::Backfill);
        let mut q = JobQueue::new();
        q.push(job(1, 36, 10.0)); // 3 nodes
        q.push(job(2, 36, 10.0)); // 3 nodes: blocks after job 1 (1 free)
        q.push(job(3, 12, 10.0)); // 1 node: backfills
        let started = s.try_start(&mut q, SimTime::ZERO);
        assert_eq!(started, vec![JobId(1), JobId(3)]);
        assert_eq!(q.len(), 1, "head job 2 still waits");
        assert_eq!(s.free_count(), 0);
        s.check_invariants();
    }

    #[test]
    fn head_of_line_blocks_even_if_later_job_fits() {
        let mut s = sched(4);
        let mut q = JobQueue::new();
        q.push(job(1, 48, 10.0)); // 4 nodes
        let started = s.try_start(&mut q, SimTime::ZERO);
        assert_eq!(started.len(), 1);
        q.push(job(2, 60, 10.0)); // needs 5 > 0 free: blocks
        q.push(job(3, 12, 10.0)); // would fit later, must wait for FIFO
        assert!(s.try_start(&mut q, SimTime::ZERO).is_empty());
        assert_eq!(q.len(), 2);
        s.check_invariants();
    }

    #[test]
    fn finished_jobs_free_their_nodes() {
        let mut s = sched(4);
        let mut q = JobQueue::new();
        q.push(job(1, 24, 5.0));
        s.try_start(&mut q, SimTime::ZERO);
        assert_eq!(s.utilization(), 0.5);
        let records = s.advance(5.0, SimTime::from_secs(5), &|_| 1.0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].actual_secs, 5.0);
        assert_eq!(s.free_count(), 4);
        assert!(s.running_jobs().is_empty());
        s.check_invariants();
    }

    #[test]
    fn load_on_reports_running_nodes_only() {
        let mut s = sched(4);
        let mut q = JobQueue::new();
        q.push(job(1, 12, 10.0));
        s.try_start(&mut q, SimTime::ZERO);
        assert!(s.load_on(NodeId(0)).is_some());
        assert!(s.load_on(NodeId(3)).is_none());
        assert_eq!(s.job_of_node(NodeId(0)), Some(JobId(1)));
        assert_eq!(s.job_of_node(NodeId(3)), None);
    }

    #[test]
    fn throttled_cluster_delays_completion() {
        let mut s = sched(2);
        let mut q = JobQueue::new();
        q.push(job(1, 12, 10.0));
        s.try_start(&mut q, SimTime::ZERO);
        // Half speed: after 10 s the job is only half done.
        let records = s.advance(10.0, SimTime::from_secs(10), &|_| 0.5);
        assert!(records.is_empty());
        let records = s.advance(10.0, SimTime::from_secs(20), &|_| 0.5);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].actual_secs, 20.0);
        assert!(records[0].performance_ratio() < 0.51);
    }

    #[test]
    fn multiple_jobs_finish_in_one_step() {
        let mut s = sched(4);
        let mut q = JobQueue::new();
        q.push(job(1, 12, 3.0));
        q.push(job(2, 12, 4.0));
        s.try_start(&mut q, SimTime::ZERO);
        let records = s.advance(5.0, SimTime::from_secs(5), &|_| 1.0);
        assert_eq!(records.len(), 2);
        s.check_invariants();
    }

    #[test]
    fn owner_table_survives_out_of_order_completion() {
        // Three jobs; the first finishes while later ones keep running, so
        // completion swap-removes from the middle of the run-queue and the
        // dense owner table must be repointed at the moved job.
        let mut s = sched(6);
        let mut q = JobQueue::new();
        q.push(job(1, 24, 3.0)); // nodes 0-1, finishes first
        q.push(job(2, 12, 50.0)); // node 2
        q.push(job(3, 24, 50.0)); // nodes 3-4
        s.try_start(&mut q, SimTime::ZERO);
        s.check_invariants();
        let records = s.advance(5.0, SimTime::from_secs(5), &|_| 1.0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, JobId(1));
        s.check_invariants();
        // The tail job (3) was swapped into slot 0; lookups must follow.
        assert_eq!(s.job_of_node(NodeId(3)), Some(JobId(3)));
        assert_eq!(s.job_of_node(NodeId(2)), Some(JobId(2)));
        assert_eq!(s.job_of_node(NodeId(0)), None, "freed node is idle");
        assert!(s.load_on(NodeId(4)).is_some());
        assert!(s.load_on(NodeId(0)).is_none());
        // Free nodes are reused and re-owned correctly.
        q.push(job(4, 36, 10.0)); // nodes 0, 1, 5
        s.try_start(&mut q, SimTime::ZERO);
        s.check_invariants();
        assert_eq!(s.job_of_node(NodeId(5)), Some(JobId(4)));
    }

    #[test]
    fn max_nprocs_reflects_capacity() {
        assert_eq!(sched(8).max_nprocs(), 96);
    }

    #[test]
    fn eviction_frees_all_member_nodes_and_repoints_owners() {
        let mut s = sched(6);
        let mut q = JobQueue::new();
        q.push(job(1, 24, 50.0)); // nodes 0-1
        q.push(job(2, 24, 50.0)); // nodes 2-3
        s.try_start(&mut q, SimTime::ZERO);
        // Node 1 dies: the whole SPMD job 1 comes off, node 0 freed too.
        let evicted = s.evict_job_on(NodeId(1)).expect("job on node 1");
        assert_eq!(evicted.id(), JobId(1));
        assert_eq!(evicted.status(), JobStatus::Running, "caller decides fate");
        s.set_node_down(NodeId(1));
        s.check_invariants();
        assert!(s.is_node_down(NodeId(1)));
        assert_eq!(s.free_count(), 3, "nodes 0, 4, 5 free; 1 down");
        assert_eq!(s.job_of_node(NodeId(0)), None);
        // Job 2 (swap-moved to slot 0) still resolves correctly.
        assert_eq!(s.job_of_node(NodeId(2)), Some(JobId(2)));
        assert!(
            (s.utilization() - 2.0 / 6.0).abs() < 1e-12,
            "down node is not utilized"
        );
        // A new placement must skip the down node.
        q.push(job(3, 36, 10.0)); // 3 nodes
        s.try_start(&mut q, SimTime::ZERO);
        let j3 = &s.running_jobs()[1];
        assert_eq!(j3.nodes(), &[NodeId(0), NodeId(4), NodeId(5)]);
        // Reboot: the node returns to the free pool.
        s.set_node_up(NodeId(1));
        s.check_invariants();
        assert_eq!(s.free_count(), 1);
        assert!(!s.is_node_down(NodeId(1)));
    }

    #[test]
    fn evict_on_idle_node_is_none() {
        let mut s = sched(2);
        assert!(s.evict_job_on(NodeId(0)).is_none());
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "evict the job")]
    fn marking_an_owned_node_down_panics() {
        let mut s = sched(2);
        let mut q = JobQueue::new();
        q.push(job(1, 12, 10.0));
        s.try_start(&mut q, SimTime::ZERO);
        s.set_node_down(NodeId(0));
    }
}
