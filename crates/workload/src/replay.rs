//! Job-trace replay.
//!
//! Alongside the paper's random generator, experiments can replay a fixed
//! submission trace — regression workloads, traces exported from another
//! run's journal, or hand-written scenarios. The format is one job per
//! line, whitespace-separated, `#` comments:
//!
//! ```text
//! # seconds  app  class  nprocs  [critical]
//! 0    EP  D  64
//! 30   CG  D  128
//! 120  LU  C  32  critical
//! ```

use crate::app::{Class, NpbApp};
use crate::job::{Job, JobId, JobPriority};
use crate::model::build_phases;
use ppc_simkit::{RngFactory, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One trace line: a job submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Submission time.
    pub at: SimTime,
    /// Application.
    pub app: NpbApp,
    /// Problem class.
    pub class: Class,
    /// Rank count.
    pub nprocs: u32,
    /// Priority.
    pub priority: JobPriority,
}

/// Trace parsing errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Offending line number (1-based).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a submission trace. Entries must be time-ordered.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEntry>, TraceParseError> {
    let mut entries: Vec<TraceEntry> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| TraceParseError {
            line: line_no,
            reason,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(4..=5).contains(&fields.len()) {
            return Err(err(format!(
                "expected 'secs app class nprocs [critical]', got {} fields",
                fields.len()
            )));
        }
        let secs: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("invalid time {:?}", fields[0])))?;
        let app = NpbApp::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(fields[1]))
            .ok_or_else(|| err(format!("unknown app {:?}", fields[1])))?;
        let class = [Class::A, Class::B, Class::C, Class::D]
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(fields[2]))
            .ok_or_else(|| err(format!("unknown class {:?}", fields[2])))?;
        let nprocs: u32 = fields[3]
            .parse()
            .map_err(|_| err(format!("invalid nprocs {:?}", fields[3])))?;
        if nprocs == 0 {
            return Err(err("nprocs must be positive".to_string()));
        }
        let priority = match fields.get(4) {
            None => JobPriority::Normal,
            Some(s) if s.eq_ignore_ascii_case("critical") => JobPriority::Critical,
            Some(s) => return Err(err(format!("unknown flag {s:?}"))),
        };
        let at = SimTime::from_secs(secs);
        if let Some(last) = entries.last() {
            if at < last.at {
                return Err(err("entries must be time-ordered".to_string()));
            }
        }
        entries.push(TraceEntry {
            at,
            app,
            class,
            nprocs,
            priority,
        });
    }
    Ok(entries)
}

/// Serializes entries back to the trace format (round-trips `parse_trace`).
pub fn render_trace(entries: &[TraceEntry]) -> String {
    let mut out = String::from("# seconds  app  class  nprocs  [critical]\n");
    for e in entries {
        out.push_str(&format!(
            "{} {} {} {}{}\n",
            e.at.as_millis() / 1_000,
            e.app,
            e.class,
            e.nprocs,
            if e.priority == JobPriority::Critical {
                " critical"
            } else {
                ""
            }
        ));
    }
    out
}

/// Replays a parsed trace as concrete jobs.
#[derive(Debug, Clone)]
pub struct TraceSource {
    entries: Vec<TraceEntry>,
    next: usize,
    factory: RngFactory,
    next_id: u64,
}

impl TraceSource {
    /// Creates a replay source (phase jitter still derives from `factory`,
    /// so two replays of the same trace with the same seed are identical).
    pub fn new(entries: Vec<TraceEntry>, factory: RngFactory) -> Self {
        TraceSource {
            entries,
            next: 0,
            factory,
            next_id: 0,
        }
    }

    /// Jobs whose submission time has arrived (at or before `now`), built
    /// and ready for the queue.
    pub fn due_jobs(&mut self, now: SimTime) -> Vec<Job> {
        let mut out = Vec::new();
        while let Some(e) = self.entries.get(self.next) {
            if e.at > now {
                break;
            }
            let id = JobId(self.next_id);
            self.next_id += 1;
            self.next += 1;
            let mut rng = self.factory.stream("job-phases", id.0);
            let phases = build_phases(e.app, e.class, e.nprocs, &mut rng);
            out.push(
                Job::new(id, e.app, e.class, e.nprocs, phases, e.at).with_priority(e.priority),
            );
        }
        out
    }

    /// True when every entry has been submitted.
    pub fn exhausted(&self) -> bool {
        self.next >= self.entries.len()
    }

    /// Total entries in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo trace
0    EP  D  64
30   cg  d  128     # lowercase is fine
120  LU  C  32  critical
";

    #[test]
    fn parses_comments_case_and_flags() {
        let t = parse_trace(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].app, NpbApp::Ep);
        assert_eq!(t[1].app, NpbApp::Cg);
        assert_eq!(t[1].nprocs, 128);
        assert_eq!(t[2].priority, JobPriority::Critical);
        assert_eq!(t[2].at, SimTime::from_secs(120));
    }

    #[test]
    fn render_round_trips() {
        let t = parse_trace(SAMPLE).unwrap();
        let rendered = render_trace(&t);
        assert_eq!(parse_trace(&rendered).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("0 EP D", "3 fields"),
            ("x EP D 8", "invalid time"),
            ("0 ZZ D 8", "unknown app"),
            ("0 EP Z 8", "unknown class"),
            ("0 EP D zero", "invalid nprocs"),
            ("0 EP D 0", "positive"),
            ("0 EP D 8 urgent", "unknown flag"),
            ("30 EP D 8\n0 CG D 8", "time-ordered"),
        ] {
            let err = parse_trace(text).unwrap_err();
            assert!(
                err.reason.contains(needle),
                "{text:?}: expected {needle:?} in {:?}",
                err.reason
            );
        }
    }

    #[test]
    fn source_releases_jobs_at_their_times() {
        let entries = parse_trace(SAMPLE).unwrap();
        let mut src = TraceSource::new(entries, RngFactory::new(5));
        assert_eq!(src.len(), 3);
        let at0 = src.due_jobs(SimTime::ZERO);
        assert_eq!(at0.len(), 1);
        assert_eq!(at0[0].nprocs(), 64);
        assert!(src.due_jobs(SimTime::from_secs(10)).is_empty());
        let at30 = src.due_jobs(SimTime::from_secs(60));
        assert_eq!(at30.len(), 1);
        assert!(!src.exhausted());
        let rest = src.due_jobs(SimTime::from_secs(1_000));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].priority(), JobPriority::Critical);
        assert!(src.exhausted());
    }

    #[test]
    fn replay_is_deterministic() {
        let entries = parse_trace(SAMPLE).unwrap();
        let mut a = TraceSource::new(entries.clone(), RngFactory::new(5));
        let mut b = TraceSource::new(entries, RngFactory::new(5));
        let ja = a.due_jobs(SimTime::from_secs(1_000));
        let jb = b.due_jobs(SimTime::from_secs(1_000));
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.baseline_secs(), y.baseline_secs());
        }
    }
}
