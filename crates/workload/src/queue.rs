//! FIFO job queue with head-of-line blocking.
//!
//! The paper's experiment protocol loads jobs "as soon as the required
//! hardware resource is available" from a FIFO queue that is refilled
//! whenever it empties; a large job at the head waits for nodes rather
//! than being bypassed (no backfilling — keeping allocation order
//! deterministic and matching the paper's description).

use crate::job::Job;
use std::collections::VecDeque;

/// FIFO queue of pending jobs.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: VecDeque<Job>,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job at the tail.
    pub fn push(&mut self, job: Job) {
        self.jobs.push_back(job);
    }

    /// Reinserts a job at the head (evicted jobs keep their place in line:
    /// they were admitted earliest, so requeueing must not send them to the
    /// back behind work submitted after them).
    pub fn push_front(&mut self, job: Job) {
        self.jobs.push_front(job);
    }

    /// The job at the head, if any.
    pub fn peek(&self) -> Option<&Job> {
        self.jobs.front()
    }

    /// Removes and returns the head job.
    pub fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are queued (the generator's refill trigger).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates the queued jobs in FIFO order (backfill scans).
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Removes and returns the job at `idx` (0 = head).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn remove(&mut self, idx: usize) -> Job {
        // ppc-lint: allow(panic-path): documented "# Panics" contract of this indexing-style API
        self.jobs.remove(idx).expect("index in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Class, NpbApp};
    use crate::job::JobId;
    use crate::phase::{Phase, PhaseKind};
    use ppc_simkit::SimTime;

    fn job(id: u64) -> Job {
        Job::new(
            JobId(id),
            NpbApp::Ep,
            Class::A,
            8,
            vec![Phase {
                kind: PhaseKind::Compute,
                work_secs: 1.0,
                alpha: 1.0,
                cpu_util: 1.0,
                nic_fraction: 0.0,
            }],
            SimTime::ZERO,
        )
    }

    #[test]
    fn remove_takes_any_position() {
        let mut q = JobQueue::new();
        q.push(job(1));
        q.push(job(2));
        q.push(job(3));
        assert_eq!(q.remove(1).id(), JobId(2));
        assert_eq!(q.len(), 2);
        let ids: Vec<u64> = q.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = JobQueue::new();
        q.push(job(1));
        q.push(job(2));
        q.push(job(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek().unwrap().id(), JobId(1));
        assert_eq!(q.pop().unwrap().id(), JobId(1));
        assert_eq!(q.pop().unwrap().id(), JobId(2));
        assert_eq!(q.pop().unwrap().id(), JobId(3));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
