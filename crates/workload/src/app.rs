//! The benchmark applications and problem classes.
//!
//! Characterization follows the published behaviour of the NPB suite:
//!
//! | App | Kernel                     | Dominant behaviour                      |
//! |-----|----------------------------|-----------------------------------------|
//! | EP  | embarrassingly parallel RNG| pure compute, negligible memory/comm    |
//! | CG  | conjugate gradient         | sparse mat-vec: memory-bound + comm     |
//! | LU  | SSOR solver                | mixed compute with pipelined comm       |
//! | BT  | block-tridiagonal solver   | compute-heavy with bulk face exchanges  |
//! | SP  | scalar pentadiagonal solver| memory-leaning mix with face exchanges  |

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five MPI benchmark applications used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NpbApp {
    /// Embarrassingly Parallel.
    Ep,
    /// Conjugate Gradient.
    Cg,
    /// Lower-Upper Gauss-Seidel (SSOR).
    Lu,
    /// Block Tridiagonal.
    Bt,
    /// Scalar Pentadiagonal.
    Sp,
}

impl NpbApp {
    /// All five applications (the paper's evaluation job pool).
    pub const ALL: [NpbApp; 5] = [NpbApp::Ep, NpbApp::Cg, NpbApp::Lu, NpbApp::Bt, NpbApp::Sp];

    /// Canonical short name.
    pub fn name(self) -> &'static str {
        match self {
            NpbApp::Ep => "EP",
            NpbApp::Cg => "CG",
            NpbApp::Lu => "LU",
            NpbApp::Bt => "BT",
            NpbApp::Sp => "SP",
        }
    }
}

impl fmt::Display for NpbApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// NPB problem class. The paper runs CLASS=D; smaller classes are kept for
/// fast tests and the quickstart example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Small (test-sized).
    A,
    /// Medium-small.
    B,
    /// Medium.
    C,
    /// Large — the paper's configuration.
    D,
}

impl Class {
    /// Serial-equivalent runtime multiplier relative to CLASS=A.
    ///
    /// NPB class sizes grow ~16× in work per step (A→B→C→D); we compress
    /// that to keep simulated runs tractable while preserving ordering.
    pub fn work_scale(self) -> f64 {
        match self {
            Class::A => 1.0,
            Class::B => 3.0,
            Class::C => 9.0,
            Class::D => 27.0,
        }
    }

    /// Per-rank memory footprint in bytes.
    pub fn mem_per_rank_bytes(self) -> u64 {
        match self {
            Class::A => 256 << 20,
            Class::B => 512 << 20,
            Class::C => 1 << 30,
            Class::D => 3 << 29, // 1.5 GiB
        }
    }

    /// Canonical letter.
    pub fn name(self) -> &'static str {
        match self {
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
            Class::D => "D",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static characterization of an application used to synthesize phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Serial-equivalent runtime at CLASS=A on one rank, seconds.
    pub base_serial_secs: f64,
    /// Compute-boundness α of the dominant compute phase: the fraction of
    /// execution time that scales with 1/f.
    pub compute_alpha: f64,
    /// CPU utilization during compute phases.
    pub compute_util: f64,
    /// Fraction of each iteration spent in memory-bound work.
    pub memory_fraction: f64,
    /// Fraction of each iteration spent communicating.
    pub comm_fraction: f64,
    /// NIC traffic intensity during communication phases, as a fraction of
    /// link bandwidth.
    pub comm_intensity: f64,
    /// Number of solver iterations at CLASS=A (grows mildly with class).
    pub base_iterations: u32,
}

impl NpbApp {
    /// The static profile for this application.
    pub fn profile(self) -> AppProfile {
        match self {
            // EP: one long compute block, ~no memory traffic, one final
            // reduction. Highly frequency-sensitive.
            NpbApp::Ep => AppProfile {
                base_serial_secs: 260.0,
                compute_alpha: 0.95,
                compute_util: 1.0,
                memory_fraction: 0.02,
                comm_fraction: 0.02,
                comm_intensity: 0.10,
                base_iterations: 1,
            },
            // CG: sparse mat-vec iterations — memory-bound, frequent
            // halo exchanges. Weak frequency sensitivity.
            NpbApp::Cg => AppProfile {
                base_serial_secs: 220.0,
                compute_alpha: 0.40,
                compute_util: 0.80,
                memory_fraction: 0.45,
                comm_fraction: 0.20,
                comm_intensity: 0.45,
                base_iterations: 15,
            },
            // LU: SSOR sweeps, pipelined point-to-point comm.
            NpbApp::Lu => AppProfile {
                base_serial_secs: 300.0,
                compute_alpha: 0.65,
                compute_util: 0.92,
                memory_fraction: 0.25,
                comm_fraction: 0.12,
                comm_intensity: 0.30,
                base_iterations: 12,
            },
            // BT: compute-heavy block solves with bulk face exchanges.
            NpbApp::Bt => AppProfile {
                base_serial_secs: 340.0,
                compute_alpha: 0.72,
                compute_util: 0.95,
                memory_fraction: 0.18,
                comm_fraction: 0.15,
                comm_intensity: 0.40,
                base_iterations: 10,
            },
            // SP: like BT but leaning memory-bound.
            NpbApp::Sp => AppProfile {
                base_serial_secs: 320.0,
                compute_alpha: 0.55,
                compute_util: 0.88,
                memory_fraction: 0.30,
                comm_fraction: 0.15,
                comm_intensity: 0.40,
                base_iterations: 10,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_five_distinct_apps() {
        let mut names: Vec<&str> = NpbApp::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn profiles_are_well_formed() {
        for app in NpbApp::ALL {
            let p = app.profile();
            assert!(p.base_serial_secs > 0.0, "{app}");
            assert!((0.0..=1.0).contains(&p.compute_alpha), "{app}");
            assert!((0.0..=1.0).contains(&p.compute_util), "{app}");
            assert!(p.memory_fraction + p.comm_fraction < 1.0, "{app}");
            assert!((0.0..=1.0).contains(&p.comm_intensity), "{app}");
            assert!(p.base_iterations >= 1, "{app}");
        }
    }

    #[test]
    fn ep_is_most_compute_bound_cg_least() {
        let alphas: Vec<f64> = NpbApp::ALL
            .iter()
            .map(|a| a.profile().compute_alpha)
            .collect();
        let ep = NpbApp::Ep.profile().compute_alpha;
        let cg = NpbApp::Cg.profile().compute_alpha;
        assert!(alphas.iter().all(|&a| a <= ep));
        assert!(alphas.iter().all(|&a| a >= cg));
    }

    #[test]
    fn class_scales_are_monotone() {
        assert!(Class::A.work_scale() < Class::B.work_scale());
        assert!(Class::B.work_scale() < Class::C.work_scale());
        assert!(Class::C.work_scale() < Class::D.work_scale());
        assert!(Class::A.mem_per_rank_bytes() < Class::D.mem_per_rank_bytes());
    }

    #[test]
    fn display_names() {
        assert_eq!(NpbApp::Cg.to_string(), "CG");
        assert_eq!(Class::D.to_string(), "D");
    }
}
