//! Finished-job records.
//!
//! The evaluation metrics (Performance(cap), CPLJ) compare each finished
//! job's actual wall time `T_cap,j` against its full-speed baseline `T_j`;
//! a [`JobRecord`] carries everything those metrics need.

use crate::app::{Class, NpbApp};
use crate::job::{Job, JobId, JobPriority, JobStatus};
use ppc_node::NodeId;
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// Immutable record of one finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Application.
    pub app: NpbApp,
    /// Problem class.
    pub class: Class,
    /// Rank count.
    pub nprocs: u32,
    /// Number of nodes the job occupied.
    pub node_count: usize,
    /// The nodes the job occupied.
    pub nodes: Vec<NodeId>,
    /// The job's priority.
    pub priority: JobPriority,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Start time.
    pub started_at: SimTime,
    /// Finish time.
    pub finished_at: SimTime,
    /// Full-speed baseline duration `T_j`, seconds.
    pub baseline_secs: f64,
    /// Actual execution duration `T_cap,j` (start → finish), seconds.
    pub actual_secs: f64,
    /// Wall seconds with ≥1 member node throttled.
    pub throttled_secs: f64,
}

impl JobRecord {
    /// Builds the record from a finished job.
    ///
    /// # Panics
    /// Panics if the job is not finished.
    pub fn from_job(job: &Job) -> Self {
        assert_eq!(job.status(), JobStatus::Finished, "job must be finished");
        // ppc-lint: allow(panic-path): asserted Finished above; finished jobs carry a start stamp
        let started_at = job.started_at().expect("finished job has started");
        // ppc-lint: allow(panic-path): asserted Finished above; finished jobs carry a finish stamp
        let finished_at = job.finished_at().expect("finished job has finish time");
        JobRecord {
            id: job.id(),
            app: job.app(),
            class: job.class(),
            nprocs: job.nprocs(),
            node_count: job.nodes().len(),
            nodes: job.nodes().to_vec(),
            priority: job.priority(),
            submitted_at: job.submitted_at(),
            started_at,
            finished_at,
            baseline_secs: job.baseline_secs(),
            actual_secs: (finished_at - started_at).as_secs_f64(),
            throttled_secs: job.throttled_secs(),
        }
    }

    /// Per-job performance ratio `T_j / T_cap,j ∈ (0, 1]` (1 = lossless).
    pub fn performance_ratio(&self) -> f64 {
        if self.actual_secs <= 0.0 {
            return 1.0;
        }
        (self.baseline_secs / self.actual_secs).min(1.0)
    }

    /// True if the job ran without measurable performance loss.
    ///
    /// `tolerance` absorbs tick quantization (a job finishing mid-tick is
    /// recorded at the tick boundary); the paper counts a job as lossless
    /// when its time equals the unmanaged time.
    pub fn is_lossless(&self, tolerance: f64) -> bool {
        self.actual_secs <= self.baseline_secs * (1.0 + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{Phase, PhaseKind};
    use ppc_node::NodeId;

    fn finished_job(actual_steps: u32) -> JobRecord {
        let mut j = Job::new(
            JobId(9),
            NpbApp::Bt,
            Class::B,
            16,
            vec![Phase {
                kind: PhaseKind::Compute,
                work_secs: 10.0,
                alpha: 1.0,
                cpu_util: 1.0,
                nic_fraction: 0.0,
            }],
            SimTime::ZERO,
        );
        j.start(vec![NodeId(0), NodeId(1)], SimTime::from_secs(5));
        let speed = if actual_steps > 10 {
            10.0 / actual_steps as f64
        } else {
            1.0
        };
        let mut t = 5;
        loop {
            t += 1;
            if j.advance(1.0, &|_| speed).is_some() {
                break;
            }
            assert!(t < 1000);
        }
        j.finish(SimTime::from_secs(t));
        JobRecord::from_job(&j)
    }

    #[test]
    fn lossless_job_has_ratio_one() {
        let r = finished_job(10);
        assert_eq!(r.actual_secs, 10.0);
        assert_eq!(r.performance_ratio(), 1.0);
        assert!(r.is_lossless(0.0));
        assert_eq!(r.node_count, 2);
        assert_eq!(r.started_at, SimTime::from_secs(5));
    }

    #[test]
    fn throttled_job_shows_loss() {
        let r = finished_job(20);
        assert!(r.actual_secs >= 19.0);
        assert!(r.performance_ratio() < 0.6);
        assert!(!r.is_lossless(0.05));
        assert!(r.throttled_secs > 0.0);
    }

    #[test]
    fn tolerance_absorbs_tick_quantization() {
        // Baseline 10 s, actual 10.4 s (rounded up to a tick boundary).
        let mut r = finished_job(10);
        r.actual_secs = 10.4;
        assert!(!r.is_lossless(0.0));
        assert!(r.is_lossless(0.05));
    }
}
