//! Strong-scaling model.
//!
//! NPB CLASS=x problems are fixed-size, so running on more ranks divides
//! the work per rank but adds parallel overhead. We model wall time at the
//! top frequency as
//!
//! ```text
//! T(p) = T_serial / p^eff        (eff < 1: imperfect scaling)
//! ```
//!
//! with `eff` per application (communication-heavy codes scale worse).
//! The absolute constants are tuned so CLASS=D jobs at the paper's NPROCS
//! values run for minutes to a few tens of minutes of simulated time,
//! giving a 12-hour experiment hundreds of finished jobs.

use crate::app::{Class, NpbApp};
use serde::{Deserialize, Serialize};

/// Scaling parameters for an (app, class) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Serial-equivalent wall time at the top frequency, seconds.
    pub serial_secs: f64,
    /// Strong-scaling efficiency exponent (1.0 = perfect).
    pub efficiency_exp: f64,
}

impl ScalingModel {
    /// Builds the model for an application and class.
    pub fn for_app(app: NpbApp, class: Class) -> Self {
        let profile = app.profile();
        // Communication- and memory-heavy codes lose more efficiency.
        let overhead = profile.comm_fraction + 0.5 * profile.memory_fraction;
        ScalingModel {
            serial_secs: profile.base_serial_secs * class.work_scale(),
            efficiency_exp: (1.0 - 0.45 * overhead).clamp(0.6, 1.0),
        }
    }

    /// Ideal wall time on `nprocs` ranks at the top frequency, seconds.
    ///
    /// # Panics
    /// Panics if `nprocs == 0`.
    pub fn wall_secs(&self, nprocs: u32) -> f64 {
        assert!(nprocs > 0, "a job needs at least one rank");
        self.serial_secs / (nprocs as f64).powf(self.efficiency_exp)
    }
}

/// Whole nodes needed to host `nprocs` ranks at one rank per core.
///
/// HPC schedulers allocate exclusive nodes; a partial node still counts.
///
/// # Panics
/// Panics if `cores_per_node == 0` or `nprocs == 0`.
pub fn nodes_needed(nprocs: u32, cores_per_node: u32) -> u32 {
    assert!(cores_per_node > 0, "node must have cores");
    assert!(nprocs > 0, "a job needs at least one rank");
    nprocs.div_ceil(cores_per_node)
}

/// Ranks placed on the `i`-th of `nodes` nodes (block distribution).
pub fn ranks_on_node(nprocs: u32, nodes: u32, node_index: u32) -> u32 {
    assert!(node_index < nodes, "node index out of range");
    let base = nprocs / nodes;
    let extra = nprocs % nodes;
    base + u32::from(node_index < extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn more_ranks_means_less_wall_time() {
        for app in NpbApp::ALL {
            let m = ScalingModel::for_app(app, Class::D);
            let mut prev = f64::INFINITY;
            for p in [8u32, 16, 32, 64, 128, 256] {
                let t = m.wall_secs(p);
                assert!(t < prev, "{app} at {p} ranks");
                prev = t;
            }
        }
    }

    #[test]
    fn class_d_durations_are_minutes_scale() {
        for app in NpbApp::ALL {
            let m = ScalingModel::for_app(app, Class::D);
            let t8 = m.wall_secs(8);
            let t256 = m.wall_secs(256);
            assert!((500.0..12_000.0).contains(&t8), "{app}: T(8)={t8}");
            assert!((20.0..2_000.0).contains(&t256), "{app}: T(256)={t256}");
        }
    }

    #[test]
    fn ep_scales_nearly_perfectly() {
        let ep = ScalingModel::for_app(NpbApp::Ep, Class::D);
        let cg = ScalingModel::for_app(NpbApp::Cg, Class::D);
        assert!(ep.efficiency_exp > cg.efficiency_exp);
        assert!(ep.efficiency_exp > 0.97);
    }

    #[test]
    fn nodes_needed_rounds_up() {
        assert_eq!(nodes_needed(8, 12), 1);
        assert_eq!(nodes_needed(12, 12), 1);
        assert_eq!(nodes_needed(13, 12), 2);
        assert_eq!(nodes_needed(256, 12), 22);
        assert_eq!(nodes_needed(1, 12), 1);
    }

    #[test]
    fn ranks_distribute_evenly() {
        // 256 ranks on 22 nodes: 14 nodes get 12, 8 nodes get 11.
        let nodes = nodes_needed(256, 12);
        let counts: Vec<u32> = (0..nodes).map(|i| ranks_on_node(256, nodes, i)).collect();
        assert_eq!(counts.iter().sum::<u32>(), 256);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "block distribution must be balanced");
    }

    proptest! {
        #[test]
        fn prop_rank_conservation(nprocs in 1u32..1000, cores in 1u32..64) {
            let nodes = nodes_needed(nprocs, cores);
            let total: u32 = (0..nodes).map(|i| ranks_on_node(nprocs, nodes, i)).sum();
            prop_assert_eq!(total, nprocs);
            // No node exceeds its core count... unless a single node must
            // hold everything (nodes_needed caps at ceil, never splits a rank).
            let max = (0..nodes).map(|i| ranks_on_node(nprocs, nodes, i)).max().unwrap();
            prop_assert!(max <= cores, "max={} cores={}", max, cores);
        }

        #[test]
        fn prop_wall_time_positive_and_monotone(p1 in 1u32..512, p2 in 1u32..512) {
            let m = ScalingModel::for_app(NpbApp::Lu, Class::C);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(m.wall_secs(lo) > 0.0);
            prop_assert!(m.wall_secs(lo) >= m.wall_secs(hi));
        }
    }
}
