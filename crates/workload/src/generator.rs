//! Random evaluation-job generation.
//!
//! Mirrors the paper's protocol: "evaluation jobs were generated at random
//! by first selecting one application from the benchmark, and then set the
//! NPROCS parameter at random to be one of the values 8, 16, 32, 64, 128
//! to 256. An evaluation job is added to the job queue whenever the queue
//! is empty."

use crate::app::{Class, NpbApp};
use crate::job::{Job, JobId, JobPriority};
use crate::model::build_phases;
use crate::queue::JobQueue;
use ppc_simkit::{DetRng, RngFactory, SimTime};

/// The paper's NPROCS choices.
pub const NPROCS_CHOICES: [u32; 6] = [8, 16, 32, 64, 128, 256];

/// Generates random evaluation jobs.
#[derive(Debug, Clone)]
pub struct JobGenerator {
    class: Class,
    max_nprocs: u32,
    pick_rng: DetRng,
    factory: RngFactory,
    next_id: u64,
    critical_fraction: f64,
}

impl JobGenerator {
    /// Creates a generator for jobs of the given `class`.
    ///
    /// `max_nprocs` caps the NPROCS draw (a 128-node × 12-core cluster can
    /// host 256-rank jobs; smaller test clusters pass a lower cap).
    pub fn new(factory: RngFactory, class: Class, max_nprocs: u32) -> Self {
        assert!(
            NPROCS_CHOICES.iter().any(|&p| p <= max_nprocs),
            "max_nprocs admits no NPROCS choice"
        );
        JobGenerator {
            class,
            max_nprocs,
            pick_rng: factory.stream("job-generator", 0),
            factory,
            next_id: 0,
            critical_fraction: 0.0,
        }
    }

    /// Marks a random `fraction` of generated jobs as [`JobPriority::Critical`]
    /// (SLA-bound work whose nodes the power manager must not touch).
    ///
    /// # Panics
    /// Panics if `fraction` is outside [0, 1].
    pub fn with_critical_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.critical_fraction = fraction;
        self
    }

    /// Number of jobs generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generates the next random job, submitted at `now`.
    pub fn next_job(&mut self, now: SimTime) -> Job {
        let app = *self.pick_rng.choice(&NpbApp::ALL);
        let admissible: Vec<u32> = NPROCS_CHOICES
            .iter()
            .copied()
            .filter(|&p| p <= self.max_nprocs)
            .collect();
        let nprocs = *self.pick_rng.choice(&admissible);
        let id = JobId(self.next_id);
        self.next_id += 1;
        // Each job's phase jitter comes from its own stream so that the
        // sequence of *picks* and the *content* of jobs are decoupled.
        let mut phase_rng = self.factory.stream("job-phases", id.0);
        let phases = build_phases(app, self.class, nprocs, &mut phase_rng);
        let priority =
            if self.critical_fraction > 0.0 && self.pick_rng.bernoulli(self.critical_fraction) {
                JobPriority::Critical
            } else {
                JobPriority::Normal
            };
        Job::new(id, app, self.class, nprocs, phases, now).with_priority(priority)
    }

    /// Builds a fully specified job — the what-if "admit this job mix"
    /// path. Unlike [`JobGenerator::next_job`] nothing is drawn from the
    /// pick stream, so synthesizing a hypothetical job perturbs no future
    /// random draw; the phase jitter still comes from the job's own
    /// id-keyed stream, exactly as generated jobs do.
    pub fn synthesize(
        &mut self,
        app: NpbApp,
        class: Class,
        nprocs: u32,
        priority: JobPriority,
        now: SimTime,
    ) -> Job {
        let id = JobId(self.next_id);
        self.next_id += 1;
        let mut phase_rng = self.factory.stream("job-phases", id.0);
        let phases = build_phases(app, class, nprocs, &mut phase_rng);
        Job::new(id, app, class, nprocs, phases, now).with_priority(priority)
    }

    /// The paper's refill rule: append one job iff the queue is empty.
    /// Returns `true` if a job was added.
    pub fn refill_if_empty(&mut self, queue: &mut JobQueue, now: SimTime) -> bool {
        self.refill_to(queue, 1, now)
    }

    /// Generalized refill: append one job iff fewer than `depth` are
    /// queued (depth 1 = the paper's protocol; deeper queues give the
    /// backfill admission policy something to scan).
    pub fn refill_to(&mut self, queue: &mut JobQueue, depth: usize, now: SimTime) -> bool {
        if queue.len() < depth {
            let job = self.next_job(now);
            queue.push(job);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn generator() -> JobGenerator {
        JobGenerator::new(RngFactory::new(7), Class::D, 256)
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut g = generator();
        let ids: Vec<u64> = (0..20).map(|_| g.next_job(SimTime::ZERO).id().0).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        assert_eq!(g.generated(), 20);
    }

    #[test]
    fn draws_cover_apps_and_nprocs() {
        let mut g = generator();
        let mut apps = BTreeSet::new();
        let mut procs = BTreeSet::new();
        for _ in 0..300 {
            let j = g.next_job(SimTime::ZERO);
            apps.insert(j.app());
            procs.insert(j.nprocs());
            assert!(NPROCS_CHOICES.contains(&j.nprocs()));
        }
        assert_eq!(apps.len(), 5, "all five apps should appear in 300 draws");
        assert_eq!(procs.len(), 6, "all six NPROCS values should appear");
    }

    #[test]
    fn max_nprocs_caps_the_draw() {
        let mut g = JobGenerator::new(RngFactory::new(7), Class::A, 32);
        for _ in 0..100 {
            assert!(g.next_job(SimTime::ZERO).nprocs() <= 32);
        }
    }

    #[test]
    fn refill_only_when_empty() {
        let mut g = generator();
        let mut q = JobQueue::new();
        assert!(g.refill_if_empty(&mut q, SimTime::ZERO));
        assert_eq!(q.len(), 1);
        assert!(!g.refill_if_empty(&mut q, SimTime::ZERO));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(g.refill_if_empty(&mut q, SimTime::from_secs(5)));
        assert_eq!(q.peek().unwrap().submitted_at(), SimTime::from_secs(5));
    }

    #[test]
    fn same_seed_reproduces_job_stream() {
        let mut g1 = generator();
        let mut g2 = generator();
        for _ in 0..50 {
            let a = g1.next_job(SimTime::ZERO);
            let b = g2.next_job(SimTime::ZERO);
            assert_eq!(a.app(), b.app());
            assert_eq!(a.nprocs(), b.nprocs());
            assert_eq!(a.baseline_secs(), b.baseline_secs());
        }
    }

    #[test]
    #[should_panic(expected = "admits no NPROCS")]
    fn impossible_cap_rejected() {
        JobGenerator::new(RngFactory::new(1), Class::A, 4);
    }

    #[test]
    fn critical_fraction_is_respected() {
        let mut g =
            JobGenerator::new(RngFactory::new(7), Class::D, 256).with_critical_fraction(0.25);
        let critical = (0..2_000)
            .filter(|_| g.next_job(SimTime::ZERO).priority() == crate::job::JobPriority::Critical)
            .count();
        assert!((400..600).contains(&critical), "critical={critical}");
        let mut none = JobGenerator::new(RngFactory::new(7), Class::D, 256);
        assert!((0..100)
            .all(|_| none.next_job(SimTime::ZERO).priority() == crate::job::JobPriority::Normal));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_critical_fraction_rejected() {
        JobGenerator::new(RngFactory::new(1), Class::A, 256).with_critical_fraction(1.5);
    }
}
