//! # ppc-workload — synthetic NPB-like parallel workloads
//!
//! The paper evaluates with five applications from the NAS Parallel
//! Benchmarks MPI suite — EP, CG, LU, BT and SP — at CLASS=D with NPROCS
//! drawn from {8, 16, 32, 64, 128, 256}. We cannot run real MPI binaries
//! inside a simulator, so this crate reproduces what the *power management
//! architecture* observes of them:
//!
//! * a phase structure per application ([`model`]) — EP is one long
//!   compute-bound phase; CG alternates memory-bound sparse mat-vec with
//!   communication; LU/BT/SP are mixed iterative solvers — each phase
//!   carrying a device-utilization signature (CPU, memory, NIC) and a
//!   *compute-boundness* α that determines frequency sensitivity;
//! * SPMD bottleneck semantics ([`job`]): a well-balanced job progresses at
//!   the rate of its **slowest** member node, `rate = min_i 1/(α·f_max/f_i
//!   + 1−α)` — the very property the paper's state-based policies exploit
//!     (degrading one node of a job costs the same performance as degrading
//!     all of them);
//! * strong scaling with imperfect parallel efficiency ([`scaling`]);
//! * the paper's job-arrival protocol ([`generator`]): a random app with a
//!   random NPROCS is appended whenever the queue is empty, and jobs start
//!   as soon as enough whole nodes are free ([`scheduler`], first-fit on
//!   the lowest-numbered free nodes).

pub mod app;
pub mod generator;
pub mod job;
pub mod model;
pub mod phase;
pub mod queue;
pub mod replay;
pub mod scaling;
pub mod scheduler;
pub mod trace;

pub use app::{Class, NpbApp};
pub use generator::JobGenerator;
pub use job::{Job, JobId, JobPriority, JobStatus};
pub use phase::{Phase, PhaseKind};
pub use queue::JobQueue;
pub use replay::{parse_trace, render_trace, TraceEntry, TraceSource};
pub use scheduler::{AdmissionPolicy, Scheduler};
pub use trace::JobRecord;
