//! Phase synthesis: turns an (app, class, nprocs) triple into a concrete
//! phase list.
//!
//! Each solver iteration contributes a compute, a memory and a
//! communication phase sized by the application profile's fractions, with
//! a small per-job jitter so concurrent instances of the same benchmark do
//! not ramp in lockstep (the paper's change-based policy needs realistic,
//! non-synchronized power ramps to act on).

use crate::app::{Class, NpbApp};
use crate::phase::{Phase, PhaseKind};
use crate::scaling::ScalingModel;
use ppc_simkit::DetRng;

/// Frequency sensitivity of memory-bound phases: DRAM bandwidth does not
/// scale with core frequency, but address generation does a little.
const MEMORY_ALPHA: f64 = 0.15;
/// Frequency sensitivity of communication phases: mostly link-bound.
const COMM_ALPHA: f64 = 0.25;
/// CPU utilization while memory-bound (stalled pipelines still spin).
const MEMORY_UTIL: f64 = 0.65;
/// CPU utilization while communicating (progress threads, copies).
const COMM_UTIL: f64 = 0.30;
/// Residual NIC activity outside communication phases.
const BACKGROUND_NIC: f64 = 0.02;
/// Number of rising-utilization startup phases per job.
const STARTUP_STEPS: usize = 4;

/// Builds the phase list for one job instance.
///
/// `rng` supplies the per-job jitter (±10% phase work, ±0.04 utilization);
/// pass a stream derived from the job id for reproducibility.
pub fn build_phases(app: NpbApp, class: Class, nprocs: u32, rng: &mut DetRng) -> Vec<Phase> {
    let profile = app.profile();
    let total = ScalingModel::for_app(app, class).wall_secs(nprocs);
    let iters = profile.base_iterations.max(1);
    let compute_fraction = 1.0 - profile.memory_fraction - profile.comm_fraction;

    let per_iter_compute = total * compute_fraction / iters as f64;
    let per_iter_memory = total * profile.memory_fraction / iters as f64;
    let per_iter_comm = total * profile.comm_fraction / iters as f64;

    let jitter = |rng: &mut DetRng| rng.range_f64(0.9, 1.1);
    let util_jitter =
        |rng: &mut DetRng, base: f64| (base + rng.range_f64(-0.04, 0.04)).clamp(0.05, 1.0);

    let mut phases = Vec::with_capacity(iters as usize * 3 + STARTUP_STEPS);
    // Startup ramp: MPI init and input distribution bring utilization up in
    // steps, so a big job's power rises over several control cycles.
    let startup_total = (total * 0.03).clamp(3.0, 30.0);
    for step in 0..STARTUP_STEPS {
        let frac = (step + 1) as f64 / (STARTUP_STEPS + 1) as f64;
        phases.push(Phase {
            kind: PhaseKind::Startup,
            work_secs: startup_total / STARTUP_STEPS as f64 * jitter(rng),
            alpha: 0.25,
            cpu_util: (profile.compute_util * frac).max(0.1),
            nic_fraction: 0.05,
        });
    }
    for _ in 0..iters {
        if per_iter_compute > 0.0 {
            phases.push(Phase {
                kind: PhaseKind::Compute,
                work_secs: per_iter_compute * jitter(rng),
                alpha: profile.compute_alpha,
                cpu_util: util_jitter(rng, profile.compute_util),
                nic_fraction: BACKGROUND_NIC,
            });
        }
        if per_iter_memory > 0.0 {
            phases.push(Phase {
                kind: PhaseKind::Memory,
                work_secs: per_iter_memory * jitter(rng),
                alpha: MEMORY_ALPHA,
                cpu_util: util_jitter(rng, MEMORY_UTIL),
                nic_fraction: BACKGROUND_NIC,
            });
        }
        if per_iter_comm > 0.0 {
            phases.push(Phase {
                kind: PhaseKind::Comm,
                work_secs: per_iter_comm * jitter(rng),
                alpha: COMM_ALPHA,
                cpu_util: util_jitter(rng, COMM_UTIL),
                nic_fraction: profile.comm_intensity,
            });
        }
    }
    debug_assert!(phases.iter().all(Phase::is_valid));
    phases
}

/// Sum of phase work — the job's full-speed (baseline) duration `T_j`.
pub fn baseline_secs(phases: &[Phase]) -> f64 {
    phases.iter().map(|p| p.work_secs).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::RngFactory;

    fn rng(i: u64) -> DetRng {
        RngFactory::new(42).stream("model-test", i)
    }

    #[test]
    fn phases_are_valid_and_nonempty_for_all_apps() {
        for app in NpbApp::ALL {
            for nprocs in [8u32, 64, 256] {
                let phases = build_phases(app, Class::D, nprocs, &mut rng(1));
                assert!(!phases.is_empty(), "{app}");
                assert!(phases.iter().all(Phase::is_valid), "{app}");
            }
        }
    }

    #[test]
    fn baseline_tracks_scaling_model_within_jitter() {
        for app in NpbApp::ALL {
            let expected = ScalingModel::for_app(app, Class::D).wall_secs(64);
            let phases = build_phases(app, Class::D, 64, &mut rng(2));
            let actual = baseline_secs(&phases);
            assert!(
                (actual - expected).abs() / expected < 0.11,
                "{app}: expected≈{expected}, got {actual}"
            );
        }
    }

    #[test]
    fn ep_is_dominated_by_compute_phases() {
        let phases = build_phases(NpbApp::Ep, Class::D, 16, &mut rng(3));
        let compute: f64 = phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Compute)
            .map(|p| p.work_secs)
            .sum();
        assert!(compute / baseline_secs(&phases) > 0.9);
    }

    #[test]
    fn cg_interleaves_memory_and_comm() {
        let phases = build_phases(NpbApp::Cg, Class::D, 16, &mut rng(4));
        let kinds: Vec<PhaseKind> = phases.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::Memory));
        assert!(kinds.contains(&PhaseKind::Comm));
        // 4 startup steps + 15 iterations × 3 phases.
        assert_eq!(phases.len(), 4 + 45);
        assert!(phases[..4].iter().all(|p| p.kind == PhaseKind::Startup));
        // The startup ramp rises monotonically.
        for w in phases[..4].windows(2) {
            assert!(w[1].cpu_util > w[0].cpu_util);
        }
    }

    #[test]
    fn jitter_differs_across_jobs_but_is_reproducible() {
        let a1 = build_phases(NpbApp::Lu, Class::C, 32, &mut rng(7));
        let a2 = build_phases(NpbApp::Lu, Class::C, 32, &mut rng(7));
        let b = build_phases(NpbApp::Lu, Class::C, 32, &mut rng(8));
        assert_eq!(a1, a2, "same stream ⇒ same phases");
        assert_ne!(a1, b, "different stream ⇒ jittered phases");
    }
}
