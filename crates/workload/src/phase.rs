//! Execution phases.
//!
//! A job is a sequence of phases; each phase carries the device-utilization
//! signature its member nodes exhibit while the phase runs, plus the
//! compute-boundness α that couples node frequency to progress rate.

use serde::{Deserialize, Serialize};

/// What kind of work a phase does (determines its signature defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Application startup: MPI initialization, input distribution —
    /// utilization ramps up over these phases, so a large job's power
    /// rises over several sampling intervals instead of one step.
    Startup,
    /// CPU-dominated computation.
    Compute,
    /// Memory-bandwidth-dominated computation.
    Memory,
    /// Interconnect-dominated exchange.
    Comm,
}

/// One phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The phase kind.
    pub kind: PhaseKind,
    /// Work in full-speed seconds: time this phase takes with every member
    /// node at its top frequency.
    pub work_secs: f64,
    /// Compute-boundness α ∈ [0, 1]: fraction of the phase's critical path
    /// that scales with 1/f. At relative speed `s = f/f_max`, the phase
    /// progresses at rate `1 / (α/s + (1 − α))`.
    pub alpha: f64,
    /// CPU utilization of each member node during the phase.
    pub cpu_util: f64,
    /// NIC traffic per member node, as a fraction of link bandwidth.
    pub nic_fraction: f64,
}

impl Phase {
    /// Progress rate (full-speed work seconds per wall second) of a node at
    /// relative speed `s ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics (debug) if `s` is out of `(0, 1]`.
    pub fn rate_at_speed(&self, s: f64) -> f64 {
        debug_assert!(
            s > 0.0 && s <= 1.0 + 1e-12,
            "relative speed {s} out of range"
        );
        1.0 / (self.alpha / s + (1.0 - self.alpha))
    }

    /// Wall-clock duration of this phase if all nodes run at relative speed
    /// `s` for its entirety.
    pub fn duration_at_speed(&self, s: f64) -> f64 {
        self.work_secs / self.rate_at_speed(s)
    }

    /// Validates the phase invariants; used by constructors and tests.
    pub fn is_valid(&self) -> bool {
        self.work_secs > 0.0
            && (0.0..=1.0).contains(&self.alpha)
            && (0.0..=1.0).contains(&self.cpu_util)
            && (0.0..=1.0).contains(&self.nic_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn phase(alpha: f64) -> Phase {
        Phase {
            kind: PhaseKind::Compute,
            work_secs: 100.0,
            alpha,
            cpu_util: 0.9,
            nic_fraction: 0.1,
        }
    }

    #[test]
    fn full_speed_rate_is_one() {
        for alpha in [0.0, 0.3, 0.7, 1.0] {
            assert!((phase(alpha).rate_at_speed(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_compute_bound_scales_linearly() {
        let p = phase(1.0);
        assert!((p.rate_at_speed(0.5) - 0.5).abs() < 1e-12);
        assert!((p.duration_at_speed(0.5) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn fully_memory_bound_is_frequency_insensitive() {
        let p = phase(0.0);
        assert!((p.rate_at_speed(0.5) - 1.0).abs() < 1e-12);
        assert!((p.duration_at_speed(0.55) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn partial_alpha_interpolates() {
        // α=0.5 at half speed: rate = 1/(0.5/0.5 + 0.5) = 1/1.5.
        let p = phase(0.5);
        assert!((p.rate_at_speed(0.5) - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn validity_checks() {
        assert!(phase(0.5).is_valid());
        assert!(!Phase {
            work_secs: 0.0,
            ..phase(0.5)
        }
        .is_valid());
        assert!(!Phase {
            alpha: 1.5,
            ..phase(0.5)
        }
        .is_valid());
        assert!(!Phase {
            cpu_util: -0.1,
            ..phase(0.5)
        }
        .is_valid());
        assert!(!Phase {
            nic_fraction: 2.0,
            ..phase(0.5)
        }
        .is_valid());
    }

    proptest! {
        /// Rate is monotone in speed, bounded by (0, 1], and duration is
        /// correspondingly monotone decreasing.
        #[test]
        fn prop_rate_monotone_in_speed(alpha in 0.0f64..1.0, s1 in 0.05f64..1.0, s2 in 0.05f64..1.0) {
            let p = phase(alpha);
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(p.rate_at_speed(lo) <= p.rate_at_speed(hi) + 1e-12);
            prop_assert!(p.rate_at_speed(hi) <= 1.0 + 1e-12);
            prop_assert!(p.rate_at_speed(lo) > 0.0);
            prop_assert!(p.duration_at_speed(lo) + 1e-9 >= p.duration_at_speed(hi));
        }

        /// Higher α ⇒ more slowdown at any sub-maximal speed.
        #[test]
        fn prop_alpha_orders_sensitivity(a1 in 0.0f64..1.0, a2 in 0.0f64..1.0, s in 0.05f64..0.99) {
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            prop_assert!(phase(hi).rate_at_speed(s) <= phase(lo).rate_at_speed(s) + 1e-12);
        }
    }
}
