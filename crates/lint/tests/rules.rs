//! One fixture per rule: each asserts the rule fires at the expected
//! lines, that a justified `// ppc-lint: allow(<rule>): reason` suppresses
//! it, and (where relevant) that class/context gating exempts the file.
//!
//! Fixtures live under `tests/fixtures/` — outside any `src/` tree — so
//! the workspace scan never picks them up.

use ppc_lint::{scan_source, FileContext, FileScan, Rule};

/// Context for a library file inside the named crate.
fn lib_ctx(crate_name: &str) -> FileContext {
    FileContext {
        path: format!("crates/{crate_name}/src/fixture.rs"),
        crate_name: crate_name.to_string(),
        is_binary: false,
    }
}

/// Context for a binary target inside the named crate.
fn bin_ctx(crate_name: &str) -> FileContext {
    FileContext {
        path: format!("crates/{crate_name}/src/main.rs"),
        crate_name: crate_name.to_string(),
        is_binary: true,
    }
}

/// Lines at which `rule` fired, in order.
fn lines_for(scan: &FileScan, rule: Rule) -> Vec<usize> {
    scan.diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn unordered_collections_fires_and_allow_suppresses() {
    let src = include_str!("fixtures/unordered_collections.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // Fires on the import, the signature, and inside the test module
    // (determinism rules apply to test code too); BTreeMap stays clean.
    assert_eq!(lines_for(&scan, Rule::UnorderedCollections), vec![3, 9, 15]);
    assert_eq!(scan.diagnostics.len(), 3);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn wall_clock_fires_and_allow_suppresses() {
    let src = include_str!("fixtures/wall_clock.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // Mentions in comments and string literals never fire.
    assert_eq!(lines_for(&scan, Rule::WallClock), vec![3, 6]);
    assert_eq!(scan.diagnostics.len(), 2);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn wall_clock_exempts_timing_crates() {
    let src = include_str!("fixtures/wall_clock.rs");
    let scan = scan_source(&lib_ctx("telemetry"), src);
    // The telemetry crate is the timing boundary — wall-clock reads are
    // its job, so neither the violations nor the suppression register.
    assert!(scan.diagnostics.is_empty());
    assert_eq!(scan.suppressed, 0);
}

#[test]
fn ad_hoc_rng_fires_and_allow_suppresses() {
    let src = include_str!("fixtures/ad_hoc_rng.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    assert_eq!(lines_for(&scan, Rule::AdHocRng), vec![4, 5, 6]);
    assert_eq!(scan.diagnostics.len(), 3);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn panic_path_fires_and_allow_suppresses() {
    let src = include_str!("fixtures/panic_path.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // `.unwrap_or(0)` is total and stays clean; the `#[cfg(test)]` module
    // is exempt — tests may panic.
    assert_eq!(lines_for(&scan, Rule::PanicPath), vec![4, 5, 7]);
    assert_eq!(scan.diagnostics.len(), 3);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn stdout_fires_in_libraries_and_allow_suppresses() {
    let src = include_str!("fixtures/stdout.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // The `#[cfg(test)]` println stays clean — tests may print.
    assert_eq!(lines_for(&scan, Rule::Stdout), vec![4, 5, 6]);
    assert_eq!(scan.diagnostics.len(), 3);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn stdout_exempts_binaries() {
    let src = include_str!("fixtures/stdout.rs");
    let scan = scan_source(&bin_ctx("core"), src);
    // Binary targets own the terminal: no hits, so the allow directive
    // has nothing to suppress either.
    assert!(scan.diagnostics.is_empty());
    assert_eq!(scan.suppressed, 0);
}

#[test]
fn float_eq_fires_in_power_math_and_allow_suppresses() {
    let src = include_str!("fixtures/float_eq.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // Ordered comparisons (`<=`), integer equality, and `0..10` ranges
    // all stay clean.
    assert_eq!(lines_for(&scan, Rule::FloatEq), vec![4, 5]);
    assert_eq!(scan.diagnostics.len(), 2);
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn float_eq_scoped_to_power_model_crates() {
    let src = include_str!("fixtures/float_eq.rs");
    let scan = scan_source(&lib_ctx("simkit"), src);
    // simkit is deterministic but holds no power/budget arithmetic, so
    // the rule does not apply there.
    assert!(scan.diagnostics.is_empty());
    assert_eq!(scan.suppressed, 0);
}

#[test]
fn bare_allow_fires_on_missing_reason_and_unknown_rule() {
    let src = include_str!("fixtures/bare_allow.rs");
    let scan = scan_source(&lib_ctx("core"), src);
    // Line 4: allow(panic-path) with no reason; line 6: unknown rule id.
    assert_eq!(lines_for(&scan, Rule::BareAllow), vec![4, 6]);
    assert_eq!(scan.diagnostics.len(), 2);
    // The bare allow is still honored so CI reports only the bare-allow
    // finding, not the underlying unwrap as well.
    assert_eq!(scan.suppressed, 1);
    assert!(scan.diagnostics[1].message.contains("no-such-rule"));
}
