//! The linter's own output joins the determinism story: CI diffs
//! `LINT_report.json` across PRs, so two scans of the same tree must
//! serialize byte-identically (BTreeMap ordering, pre-sorted diagnostics
//! and taint paths, no wall-clock or iteration-order leaks in the report
//! itself).

use ppc_lint::{scan_workspace, Report};
use std::path::Path;

#[test]
fn workspace_report_is_byte_identical_across_runs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let first = scan_workspace(&root).expect("first workspace scan");
    let second = scan_workspace(&root).expect("second workspace scan");
    let a = Report::from_scan(&first).to_json();
    let b = Report::from_scan(&second).to_json();
    assert_eq!(a, b, "LINT_report.json emission must be byte-stable");
    assert!(a.contains("\"schema\": \"ppc-lint/v2\""));
    assert!(a.contains("\"call_graph\""));
    // The repo itself must be clean: the CI gate relies on it.
    assert!(first.diagnostics.is_empty(), "{:?}", first.diagnostics);
}
