// Fixture: `stdout` — library code must not print; binaries and tests
// are exempt (the test harness passes a binary context separately).
fn lib(x: u32) {
    println!("x = {x}"); // line 4: violation
    eprintln!("oops"); // line 5: violation
    dbg!(x); // line 6: violation
    // ppc-lint: allow(stdout): fixture — operator-facing one-shot diagnostic
    println!("allowed once"); // suppressed
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        println!("tests may print"); // clean
    }
}
