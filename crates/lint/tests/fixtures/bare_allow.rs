// Fixture: `bare-allow` — an allow with no justification or an unknown
// rule name is itself a violation.
fn lib(v: Option<u32>) -> u32 {
    // ppc-lint: allow(panic-path)
    let a = v.unwrap(); // the bare allow above fires bare-allow at line 4
    // ppc-lint: allow(no-such-rule): reason present but the rule is unknown
    let b = v.unwrap_or(0);
    a + b
}
