// Fixture: `float-eq` — exact equality against float literals in the
// power/budget crates fires; ordered comparisons and integers are clean.
fn lib(power_w: f64, budget_w: f64, n: u32) -> bool {
    let exhausted = budget_w == 0.0; // line 4: violation
    let odd = power_w != 1.5; // line 5: violation
    let fine = power_w <= 0.93; // clean: ordered comparison
    let ints = n == 10; // clean: integer equality
    let range = (0..10).len() == n as usize; // clean: range, int
    // ppc-lint: allow(float-eq): fixture — sentinel value set by us, bit-exact by construction
    let sentinel = power_w == -1.0; // suppressed
    exhausted && odd && fine && ints && range && sentinel
}
