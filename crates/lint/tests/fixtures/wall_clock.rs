// Fixture: `wall-clock` — fires on Instant::now/SystemTime in
// deterministic crates; comments and strings never fire.
use std::time::SystemTime; // line 3: violation

fn lib() {
    let t = std::time::Instant::now(); // line 6: violation
    // Instant::now() in a comment is fine.
    let s = "SystemTime in a string is fine";
    // ppc-lint: allow(wall-clock): fixture — coarse wall-clock deadline, not simulation state
    let d = SystemTime::now(); // suppressed
    let _ = (t, s, d);
}
