//! Taint fixture sources: a leaking chain, a clean leaf, an allowed one.

use ppc_core::journal_fixture::Journal;

pub fn leak(j: &mut Journal) {
    let w = std::thread::available_parallelism().map(|n| n.get() as u64);
    j.record_width(w.unwrap_or(1));
}

pub fn harmless() -> u64 {
    let w = std::thread::available_parallelism().map(|n| n.get() as u64);
    w.unwrap_or(1)
}

pub fn pinned(j: &mut Journal) {
    // ppc-lint: allow(fingerprint-taint): fixture — the invariance gate pins width
    let w = std::thread::available_parallelism().map(|n| n.get() as u64);
    j.record_width(w.unwrap_or(1));
}
