//! Shard fixture: fan-out closures must not write fingerprint sinks.

pub struct SpanRecorder;

impl SpanRecorder {
    pub fn open(&mut self, _name: &str, _t: u64) -> u64 {
        0
    }
}

pub struct Pool;

impl Pool {
    pub fn for_each_mut(&self, _items: &mut [u64]) {}
}

pub fn bad(pool: &Pool, spans: &mut SpanRecorder, items: &mut [u64]) {
    pool.for_each_mut(items, |i, _slot| {
        spans.open("shard", i as u64);
    });
}

pub fn good(pool: &Pool, spans: &mut SpanRecorder, items: &mut [u64]) {
    pool.for_each_mut(items, |_i, slot| {
        *slot += 1;
    });
    for (i, _slot) in items.iter().enumerate() {
        spans.open("shard", i as u64);
    }
}

pub fn tolerated(pool: &Pool, spans: &mut SpanRecorder, items: &mut [u64]) {
    pool.for_each_mut(items, |i, _slot| {
        // ppc-lint: allow(shard-join-order): fixture — shard-local recorder merged post-join
        spans.open("shard", i as u64);
    });
}
