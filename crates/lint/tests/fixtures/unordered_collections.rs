// Fixture: `unordered-collections` — fires on HashMap/HashSet, also in
// tests; suppressed by a justified allow; BTreeMap is clean.
use std::collections::HashMap; // line 3: violation
use std::collections::BTreeMap; // clean

// ppc-lint: allow(unordered-collections): fixture — never iterated, key lookup only
use std::collections::HashSet; // suppressed

fn lib(m: &HashMap<u32, u32>) -> u32 { // line 9: violation
    m.len() as u32
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet; // line 15: violation (rule applies in tests)
}
