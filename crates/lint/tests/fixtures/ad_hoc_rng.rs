// Fixture: `ad-hoc-rng` — all randomness must flow from the experiment
// seed; entropy-seeded constructors and thread-local RNGs fire.
fn lib() {
    let mut rng = rand::thread_rng(); // line 4: violation
    let x: f64 = rand::random(); // line 5: violation
    let seeded = SmallRng::from_entropy(); // line 6: violation
    // ppc-lint: allow(ad-hoc-rng): fixture — non-replayed jitter for backoff only
    let jitter = rand::random::<u8>(); // suppressed
    let _ = (rng, x, seeded, jitter);
}
