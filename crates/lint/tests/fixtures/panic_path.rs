// Fixture: `panic-path` — unwrap/expect/panic! in library code fire;
// test code, unwrap_or, and justified allows do not.
fn lib(v: Option<u32>) -> u32 {
    let a = v.unwrap(); // line 4: violation
    let b = v.expect("present"); // line 5: violation
    if a + b > 100 {
        panic!("too big"); // line 7: violation
    }
    let safe = v.unwrap_or(0); // clean: total method
    // ppc-lint: allow(panic-path): fixture — invariant documented here
    let c = v.unwrap(); // suppressed
    a + b + c + safe
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = Some(1);
        x.unwrap(); // clean: tests may panic
        assert!(x.is_some());
    }
}
