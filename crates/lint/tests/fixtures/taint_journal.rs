//! Taint fixture sink: `Journal::record*` feeds the journal fingerprint.

pub struct Journal {
    width: u64,
}

impl Journal {
    pub fn record_width(&mut self, w: u64) {
        self.width = self.width.wrapping_add(w);
    }
}
