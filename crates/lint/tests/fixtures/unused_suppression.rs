//! Stale-allow fixture: one live suppression, one stale.

pub fn live(x: Option<u64>) -> u64 {
    // ppc-lint: allow(panic-path): fixture — caller guarantees Some
    x.unwrap()
}

pub fn stale(x: Option<u64>) -> u64 {
    // ppc-lint: allow(panic-path): fixture — nothing below panics any more
    x.unwrap_or(0)
}
