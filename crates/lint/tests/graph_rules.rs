//! Workspace-level fixtures for the v2 call-graph rules: each new rule
//! gets a positive case (fires, with the full chain in the diagnostic), a
//! negative case (the compliant pattern stays clean), and an allowed case
//! (a justified suppression on the right line silences it and counts as
//! used).
//!
//! These go through [`ppc_lint::scan_units`] — the same multi-pass engine
//! the CLI uses — because the rules only exist at workspace scope: they
//! need the cross-file call graph, not a single-file token scan.

use ppc_lint::{scan_units, FileContext, Rule, WorkspaceScan};

/// Scans a set of (path, source) fixture files as one workspace.
fn scan(files: &[(&str, &str)]) -> WorkspaceScan {
    scan_units(
        files
            .iter()
            .map(|(p, s)| (FileContext::for_path(p), s.to_string()))
            .collect(),
    )
}

/// Lines at which `rule` fired, in order.
fn lines_for(ws: &WorkspaceScan, rule: Rule) -> Vec<usize> {
    ws.diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn fingerprint_taint_fires_across_crates_and_allow_suppresses() {
    let ws = scan(&[
        (
            "crates/core/src/journal_fixture.rs",
            include_str!("fixtures/taint_journal.rs"),
        ),
        (
            "crates/cluster/src/taint_fixture.rs",
            include_str!("fixtures/fingerprint_taint.rs"),
        ),
    ]);
    // `leak` fires at its source line; `harmless` holds a source but
    // reaches no sink; `pinned` is suppressed on the source line.
    assert_eq!(lines_for(&ws, Rule::FingerprintTaint), vec![6]);
    assert_eq!(ws.diagnostics.len(), 1, "{:?}", ws.diagnostics);
    assert_eq!(ws.suppressed, 1);

    // The diagnostic carries the full call chain, hop by hop.
    let d = &ws.diagnostics[0];
    assert_eq!(d.file, "crates/cluster/src/taint_fixture.rs");
    assert!(d.message.contains("available_parallelism"));
    assert!(d.message.contains("cluster::taint_fixture::leak"));
    assert!(d
        .message
        .contains("core::journal_fixture::Journal::record_width"));
    assert!(d.message.contains("called at"));

    // And the structured report mirrors it.
    assert_eq!(ws.taint_paths.len(), 1);
    let p = &ws.taint_paths[0];
    assert_eq!(p.kind, "thread-identity");
    assert_eq!(p.sink_label, "journal fingerprint");
    assert_eq!(p.chain.len(), 2, "source fn plus one hop: {:?}", p.chain);
    assert!(p.ambiguous, "bare method-name resolution is a guess");

    assert_eq!(ws.graph.taint_sinks, 1);
    assert_eq!(ws.graph.taint_sources, 3, "leak, harmless, pinned");
}

#[test]
fn fingerprint_taint_gated_by_crate_class() {
    // The same sources hosted in the telemetry (timing) crate are not
    // live — and the now-pointless allow in `pinned` is flagged stale.
    let ws = scan(&[
        (
            "crates/core/src/journal_fixture.rs",
            include_str!("fixtures/taint_journal.rs"),
        ),
        (
            "crates/telemetry/src/taint_fixture.rs",
            include_str!("fixtures/fingerprint_taint.rs"),
        ),
    ]);
    assert!(lines_for(&ws, Rule::FingerprintTaint).is_empty());
    assert_eq!(
        lines_for(&ws, Rule::UnusedSuppression),
        vec![16],
        "an allow for a rule that cannot fire here is itself stale"
    );
    assert_eq!(ws.suppressed, 0);
}

#[test]
fn shard_join_order_fires_in_closure_and_allow_suppresses() {
    let ws = scan(&[(
        "crates/cluster/src/shard_fixture.rs",
        include_str!("fixtures/shard_join_order.rs"),
    )]);
    // `bad` writes the span inside the fan-out closure; `good` joins
    // first and records serially; `tolerated` carries a justified allow
    // on the offending line.
    assert_eq!(lines_for(&ws, Rule::ShardJoinOrder), vec![19]);
    assert_eq!(ws.diagnostics.len(), 1, "{:?}", ws.diagnostics);
    assert_eq!(ws.suppressed, 1);
    let d = &ws.diagnostics[0];
    assert!(d.message.contains("for_each_mut"));
    assert!(d.message.contains("SpanRecorder::open"));
    assert!(d.message.contains("line 18"), "names the fan-out site");
}

#[test]
fn unused_suppression_flags_stale_allow_only() {
    let ws = scan(&[(
        "crates/core/src/stale_fixture.rs",
        include_str!("fixtures/unused_suppression.rs"),
    )]);
    // `live` suppresses a real unwrap; `stale` covers nothing.
    assert_eq!(lines_for(&ws, Rule::UnusedSuppression), vec![9]);
    assert_eq!(ws.diagnostics.len(), 1, "{:?}", ws.diagnostics);
    assert_eq!(ws.suppressed, 1);
    assert!(ws.diagnostics[0].message.contains("panic-path"));
}
