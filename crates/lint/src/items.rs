//! Brace-aware item parser on top of the [`crate::source`] lexer.
//!
//! Recovers the structure the call-graph passes need from analyzed lines:
//! the inline module tree, `fn` items (with their body line ranges and the
//! `impl` type that owns them), and `use` imports. This is still not a
//! full parser — it never builds an expression tree — but item *headers*
//! in rustfmt'd code are regular enough to recognize with a keyword
//! scanner plus brace/paren depth tracking, and a misparse degrades to a
//! missing or spurious call edge (visible in the report's ambiguity
//! counters), never to silently skipped source text.

use crate::source::Line;

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` (or `trait`) type the fn is defined on, if any.
    pub impl_type: Option<String>,
    /// Inline `mod` chain enclosing the item (innermost last).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the body's opening `{`.
    pub open_line: usize,
    /// 1-based line of the body's closing `}`.
    pub close_line: usize,
    /// True if the fn lives in a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// One `use` import: `alias` names `path` in this file's scope.
#[derive(Debug, Clone)]
pub struct Import {
    /// The name the item is visible under (last segment, or `as` alias).
    pub alias: String,
    /// Full path segments as written (e.g. `["ppc_simkit", "Journal"]`).
    pub path: Vec<String>,
}

/// Everything recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Functions in source order (outer items before nested ones).
    pub fns: Vec<FnItem>,
    /// `use` imports, in source order.
    pub imports: Vec<Import>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendKind {
    Fn,
    Impl,
    Mod,
    Trait,
    Use,
}

struct Pending {
    kind: PendKind,
    buf: String,
    sig_line: usize,
    /// Paren nesting inside the header (a `;` only terminates at depth 0).
    paren: i32,
    /// Brace nesting inside a `use …{…};` tree.
    brace: i32,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
    Fn(usize),
}

struct Scope {
    kind: ScopeKind,
    depth: i64,
}

/// Parses one file's analyzed lines into items.
pub fn parse(lines: &[Line]) -> FileItems {
    let mut out = FileItems::default();
    let mut depth: i64 = 0;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let pend_info = pending.as_ref().map(|p| (p.kind, p.paren, p.brace));
            if let Some((kind, paren, brace)) = pend_info {
                match c {
                    '{' if kind == PendKind::Use => {
                        if let Some(p) = pending.as_mut() {
                            p.brace += 1;
                            p.buf.push(c);
                        }
                        i += 1;
                    }
                    '}' if kind == PendKind::Use && brace > 0 => {
                        if let Some(p) = pending.as_mut() {
                            p.brace -= 1;
                            p.buf.push(c);
                        }
                        i += 1;
                    }
                    '{' if paren == 0 => {
                        // Header complete: open the item's scope.
                        if let Some(p) = pending.take() {
                            depth += 1;
                            open_scope(p, lineno, depth, &mut scopes, &mut out, line.in_test);
                        }
                        i += 1;
                    }
                    ';' if paren == 0 && brace == 0 => {
                        // Declaration without a body (`mod x;`, trait fn,
                        // `use …;`): record imports, drop the rest.
                        if let Some(p) = pending.take() {
                            if p.kind == PendKind::Use {
                                parse_use(&p.buf, &mut out.imports);
                            }
                        }
                        i += 1;
                    }
                    '}' => {
                        // A closing brace while a header is pending means
                        // the "header" was an expression-position keyword
                        // (e.g. an `fn(…)` pointer type in a struct field).
                        pending = None;
                        // Reprocess the `}` as normal code below.
                    }
                    '(' => {
                        if let Some(p) = pending.as_mut() {
                            p.paren += 1;
                            p.buf.push(c);
                        }
                        i += 1;
                    }
                    ')' => {
                        if let Some(p) = pending.as_mut() {
                            p.paren -= 1;
                            p.buf.push(c);
                        }
                        i += 1;
                    }
                    _ => {
                        if let Some(p) = pending.as_mut() {
                            p.buf.push(c);
                        }
                        i += 1;
                    }
                }
                if pending.is_some() || c != '}' {
                    continue;
                }
                // fall through: the `}` that cancelled the pending header
                // is handled by the code path below.
            }
            match c {
                '{' => {
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    if scopes.last().is_some_and(|s| s.depth == depth) {
                        let scope = match scopes.pop() {
                            Some(s) => s,
                            None => break,
                        };
                        if let ScopeKind::Fn(fi) = scope.kind {
                            out.fns[fi].close_line = lineno;
                        }
                    }
                    depth -= 1;
                    i += 1;
                }
                _ if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    let kind = match word.as_str() {
                        "fn" => Some(PendKind::Fn),
                        "impl" => Some(PendKind::Impl),
                        "mod" => Some(PendKind::Mod),
                        "trait" => Some(PendKind::Trait),
                        "use" => Some(PendKind::Use),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        pending = Some(Pending {
                            kind,
                            buf: String::new(),
                            sig_line: lineno,
                            paren: 0,
                            brace: 0,
                        });
                    }
                }
                _ => i += 1,
            }
        }
    }
    // Unterminated items at EOF (truncated input): close them on the last
    // line so body ranges stay well-formed.
    let last = lines.len();
    for scope in scopes {
        if let ScopeKind::Fn(fi) = scope.kind {
            out.fns[fi].close_line = last;
        }
    }
    out
}

/// Pushes the scope for a completed header and records `fn` items.
fn open_scope(
    p: Pending,
    open_line: usize,
    depth: i64,
    scopes: &mut Vec<Scope>,
    out: &mut FileItems,
    in_test: bool,
) {
    let kind = match p.kind {
        PendKind::Fn => {
            let Some(name) = first_ident(&p.buf) else {
                // `fn(…)` pointer type that somehow reached a `{`: treat
                // the brace as an anonymous block.
                scopes.push(Scope {
                    kind: ScopeKind::Mod(String::new()),
                    depth,
                });
                return;
            };
            let impl_type = scopes.iter().rev().find_map(|s| match &s.kind {
                ScopeKind::Impl(t) => Some(t.clone()),
                _ => None,
            });
            let module = scopes
                .iter()
                .filter_map(|s| match &s.kind {
                    ScopeKind::Mod(m) if !m.is_empty() => Some(m.clone()),
                    _ => None,
                })
                .collect();
            out.fns.push(FnItem {
                name,
                impl_type,
                module,
                sig_line: p.sig_line,
                open_line,
                close_line: open_line,
                in_test,
            });
            ScopeKind::Fn(out.fns.len() - 1)
        }
        PendKind::Impl | PendKind::Trait => ScopeKind::Impl(impl_type_name(&p.buf)),
        PendKind::Mod => ScopeKind::Mod(first_ident(&p.buf).unwrap_or_default()),
        // `use` never opens a scope (braces are tracked inside the
        // pending header), but keep the stack symmetric if it does.
        PendKind::Use => ScopeKind::Mod(String::new()),
    };
    scopes.push(Scope { kind, depth });
}

/// First identifier in a header buffer (the fn/mod name).
fn first_ident(buf: &str) -> Option<String> {
    let start = buf.find(|c: char| c.is_alphabetic() || c == '_')?;
    let rest = &buf[start..];
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let ident = &rest[..end];
    (!ident.is_empty()).then(|| ident.to_string())
}

/// The self type of an `impl` header: `<T> Foo<T>` → `Foo`,
/// `fmt::Display for Rule` → `Rule`, `Trait for &mut X<'a>` → `X`.
fn impl_type_name(buf: &str) -> String {
    let s = skip_generics(buf.trim_start());
    // `for` at angle-depth 0 splits trait from self type; bounds like
    // `for<'a>` sit inside generics and were skipped above.
    let target = split_for(s).unwrap_or(s);
    last_path_segment(target)
}

/// Skips a leading `<…>` generic parameter list, guarding `->` arrows.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let b = s.as_bytes();
    let mut angle = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'<' => angle += 1,
            b'>' if i > 0 && b[i - 1] == b'-' => {}
            b'>' => {
                angle -= 1;
                if angle == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
        i += 1;
    }
    s
}

/// Splits `Trait for Type` at a top-level ` for `, returning the type.
fn split_for(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    let mut angle = 0i32;
    let mut i = 0;
    while i + 4 <= b.len() {
        match b[i] {
            b'<' => angle += 1,
            b'>' if i > 0 && b[i - 1] == b'-' => {}
            b'>' => angle -= 1,
            b'f' if angle == 0
                && s[i..].starts_with("for")
                && (i == 0 || !is_ident_char(b[i - 1]))
                && b.get(i + 3).is_some_and(|&c| !is_ident_char(c)) =>
            {
                return Some(s[i + 3..].trim_start());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The last path segment of a type, generics stripped:
/// `&mut a::b::Foo<'x, T>` → `Foo`.
fn last_path_segment(s: &str) -> String {
    let s = s
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("dyn ")
        .trim_start();
    let head = s
        .find(['<', '{', ' ', '('])
        .map_or(s, |end| &s[..end])
        .trim_end();
    head.rsplit("::").next().unwrap_or(head).to_string()
}

/// Parses the body of a `use` declaration (keyword stripped) into imports.
fn parse_use(buf: &str, out: &mut Vec<Import>) {
    let body = buf.trim().trim_start_matches("pub").trim();
    collect_use(body, &[], out);
}

/// Recursive descent over `a::b::{c, d as e, f::g}` trees.
fn collect_use(s: &str, prefix: &[String], out: &mut Vec<Import>) {
    let s = s.trim();
    if s.is_empty() || s == "*" {
        return; // glob imports add nothing the resolver can use
    }
    if let Some(brace) = s.find('{') {
        let head = s[..brace].trim().trim_end_matches("::");
        let mut pre: Vec<String> = prefix.to_vec();
        pre.extend(head.split("::").filter(|p| !p.is_empty()).map(String::from));
        let inner = s[brace + 1..].strip_suffix('}').unwrap_or(&s[brace + 1..]);
        // Split on top-level commas.
        let mut depth = 0i32;
        let mut start = 0;
        let bytes = inner.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                b',' if depth == 0 => {
                    collect_use(&inner[start..i], &pre, out);
                    start = i + 1;
                }
                _ => {}
            }
        }
        collect_use(&inner[start..], &pre, out);
        return;
    }
    let (path_part, alias) = match s.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
        None => (s, None),
    };
    let mut path: Vec<String> = prefix.to_vec();
    path.extend(
        path_part
            .split("::")
            .map(str::trim)
            .filter(|p| !p.is_empty() && *p != "self")
            .map(String::from),
    );
    let Some(last) = path.last().cloned() else {
        return;
    };
    out.push(Import {
        alias: alias.unwrap_or(last),
        path,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source;

    fn parse_src(src: &str) -> FileItems {
        parse(&source::analyze(src))
    }

    #[test]
    fn recovers_free_and_method_fns() {
        let src = "\
pub fn free(x: u32) -> u32 {
    x + 1
}
impl Journal {
    pub fn record(&mut self) {
        self.push();
    }
}
";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "free");
        assert_eq!(items.fns[0].impl_type, None);
        assert_eq!((items.fns[0].open_line, items.fns[0].close_line), (1, 3));
        assert_eq!(items.fns[1].name, "record");
        assert_eq!(items.fns[1].impl_type.as_deref(), Some("Journal"));
        assert_eq!((items.fns[1].open_line, items.fns[1].close_line), (5, 7));
    }

    #[test]
    fn impl_headers_with_generics_and_traits() {
        let src = "\
impl<'a, T: Send> RackSlot<'a, T> {
    fn a(&self) {}
}
impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Ok(())
    }
}
impl<F: Fn(usize) -> u64> Holder<F> {
    fn call(&self) {}
}
";
        let items = parse_src(src);
        assert_eq!(items.fns[0].impl_type.as_deref(), Some("RackSlot"));
        assert_eq!(items.fns[1].impl_type.as_deref(), Some("Rule"));
        assert_eq!(items.fns[1].name, "fmt");
        assert_eq!(items.fns[2].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn inline_modules_and_tests_are_tracked() {
        let src = "\
mod inner {
    pub fn helper() {}
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        helper();
    }
}
";
        let items = parse_src(src);
        assert_eq!(items.fns[0].module, vec!["inner".to_string()]);
        assert!(!items.fns[0].in_test);
        assert_eq!(items.fns[1].name, "t");
        assert!(items.fns[1].in_test);
    }

    #[test]
    fn multiline_signatures_and_where_clauses() {
        let src = "\
pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    body();
}
";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "for_each_mut");
        assert_eq!(items.fns[0].sig_line, 1);
        assert_eq!(items.fns[0].open_line, 5);
        assert_eq!(items.fns[0].close_line, 7);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "\
pub struct Holder {
    callback: fn(u32) -> u32,
}
fn real() {}
";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let src = "\
pub trait Policy {
    fn select(&self) -> u32;
    fn fallback(&self) -> u32 {
        0
    }
}
";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 1, "decl without body is not an item");
        assert_eq!(items.fns[0].name, "fallback");
        assert_eq!(items.fns[0].impl_type.as_deref(), Some("Policy"));
    }

    #[test]
    fn use_trees_flatten() {
        let src = "use ppc_simkit::{Journal, hash::Fnv1a, par as pool};\nuse std::fmt;\n";
        let items = parse_src(src);
        let find = |a: &str| {
            items
                .imports
                .iter()
                .find(|i| i.alias == a)
                .map(|i| i.path.join("::"))
        };
        assert_eq!(find("Journal").as_deref(), Some("ppc_simkit::Journal"));
        assert_eq!(find("Fnv1a").as_deref(), Some("ppc_simkit::hash::Fnv1a"));
        assert_eq!(find("pool").as_deref(), Some("ppc_simkit::par"));
        assert_eq!(find("fmt").as_deref(), Some("std::fmt"));
    }

    #[test]
    fn nested_fn_attributed_to_inner_scope() {
        let src = "\
fn outer() {
    fn inner() {
        x();
    }
    inner();
}
";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "outer");
        assert_eq!(items.fns[1].name, "inner");
        assert_eq!((items.fns[1].open_line, items.fns[1].close_line), (2, 4));
        assert_eq!(items.fns[0].close_line, 6);
    }
}
