//! `ppc-lint` CLI.
//!
//! ```text
//! cargo run -p ppc-lint -- --workspace            # scan, exit 1 on violations
//! cargo run -p ppc-lint -- --workspace --json     # also write LINT_report.json
//! cargo run -p ppc-lint -- --workspace --deny     # stale allows become errors
//! cargo run -p ppc-lint -- --list-rules           # rule catalogue
//! cargo run -p ppc-lint -- crates/core/src/budget.rs   # scan specific files
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 usage/IO error. Without `--deny`,
//! `unused-suppression` findings are advisory (printed, but do not affect
//! the exit code); CI passes `--deny` so stale allows rot for at most one
//! merge.

use ppc_lint::{report, scan, Report, Rule};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    root: PathBuf,
    json: bool,
    deny: bool,
    list_rules: bool,
    workspace: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny: false,
        list_rules: false,
        workspace: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ppc-lint [--root DIR] [--json] [--deny] [--list-rules] \
                     [--workspace | FILES...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"))
            }
            file => args.files.push(file.to_string()),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        args.workspace = true; // the only sensible default
    }
    Ok(args)
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_rules {
        print!("{}", report::render_rules());
        return Ok(0);
    }

    let started = Instant::now();
    let ws = if args.workspace {
        scan::scan_workspace(&args.root)
            .map_err(|e| format!("scanning workspace at {}: {e}", args.root.display()))?
    } else {
        // Explicit file lists still go through the full multi-pass engine:
        // the call graph is just restricted to the named files, so taint
        // chains that leave the set are invisible (the workspace scan is
        // the authority; this mode is for fast iteration on one file).
        let mut inputs = Vec::new();
        for rel in &args.files {
            let text =
                std::fs::read_to_string(args.root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
            inputs.push((scan::FileContext::for_path(rel), text));
        }
        scan::scan_units(inputs)
    };
    let elapsed = started.elapsed();

    if args.json {
        let json = Report::from_scan(&ws).to_json();
        let path = args.root.join("LINT_report.json");
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("{json}");
        eprint!("{}", report::render_text(&ws));
    } else {
        print!("{}", report::render_text(&ws));
    }
    eprintln!(
        "lint-runtime: {} files, {} fns, {} call edges in {:.3}s",
        ws.files_scanned,
        ws.graph.functions,
        ws.graph.edges,
        elapsed.as_secs_f64()
    );

    let hard = ws
        .diagnostics
        .iter()
        .filter(|d| d.rule != Rule::UnusedSuppression)
        .count();
    let stale = ws.diagnostics.len() - hard;
    if !args.deny && hard == 0 && stale > 0 {
        eprintln!("note: {stale} stale allow(s) tolerated without --deny");
    }
    Ok(if hard > 0 || (args.deny && stale > 0) {
        1
    } else {
        0
    })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("ppc-lint: {msg}");
            std::process::exit(2);
        }
    }
}
