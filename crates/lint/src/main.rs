//! `ppc-lint` CLI.
//!
//! ```text
//! cargo run -p ppc-lint -- --workspace            # scan, exit 1 on violations
//! cargo run -p ppc-lint -- --workspace --json     # also write LINT_report.json
//! cargo run -p ppc-lint -- --list-rules           # rule catalogue
//! cargo run -p ppc-lint -- crates/core/src/budget.rs   # scan specific files
//! ```

use ppc_lint::{report, scan, Report};
use std::path::PathBuf;

struct Args {
    root: PathBuf,
    json: bool,
    list_rules: bool,
    workspace: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
        workspace: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: ppc-lint [--root DIR] [--json] [--list-rules] \
                     [--workspace | FILES...]"
                    .to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"))
            }
            file => args.files.push(file.to_string()),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        args.workspace = true; // the only sensible default
    }
    Ok(args)
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_rules {
        print!("{}", report::render_rules());
        return Ok(0);
    }

    let ws = if args.workspace {
        scan::scan_workspace(&args.root)
            .map_err(|e| format!("scanning workspace at {}: {e}", args.root.display()))?
    } else {
        let mut ws = scan::WorkspaceScan::default();
        for rel in &args.files {
            let fs = scan::scan_file(&args.root, rel).map_err(|e| format!("{rel}: {e}"))?;
            ws.diagnostics.extend(fs.diagnostics);
            ws.suppressed += fs.suppressed;
            ws.files_scanned += 1;
        }
        ws
    };

    if args.json {
        let json = Report::from_scan(&ws).to_json();
        let path = args.root.join("LINT_report.json");
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("{json}");
        eprint!("{}", report::render_text(&ws));
    } else {
        print!("{}", report::render_text(&ws));
    }
    Ok(if ws.diagnostics.is_empty() { 0 } else { 1 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("ppc-lint: {msg}");
            std::process::exit(2);
        }
    }
}
