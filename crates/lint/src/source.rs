//! A minimal Rust source lexer: good enough to blank out comments,
//! string/char literal *contents*, and to track `#[cfg(test)]` regions by
//! brace depth — so rule tokens never fire inside a doc comment or a log
//! message, and test-only rules know where tests live.
//!
//! This is deliberately not a full parser. It handles line comments,
//! nested block comments, escaped strings, raw strings (`r"…"`,
//! `r#"…"#`, byte variants), char literals, and the char-literal vs
//! lifetime ambiguity (`'a'` vs `'a`). That covers everything the
//! workspace actually contains; exotic token sequences the lexer
//! misreads would at worst produce a false positive answerable with an
//! `allow` — never a silently missed region of real code.

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments removed and string/char contents
    /// blanked (quotes retained, so `.expect("msg")` still scans as
    /// `.expect("")`).
    pub code: String,
    /// The line's comment text (both `//` and `/* */` bodies), where
    /// `ppc-lint:` directives live.
    pub comment: String,
    /// True if the line is inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Splits `text` into analyzed lines.
pub fn analyze(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        code.push('"');
                        state = State::RawStr(hashes);
                        i += consumed;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal is 'x' or
                        // '\…'; a lifetime tick is followed by an ident
                        // with no closing quote two ahead.
                        if next == Some('\\') {
                            code.push('\'');
                            state = State::Char;
                            i += 2; // skip the backslash so Char sees the escaped char
                        } else if chars.get(i + 2).copied() == Some('\'') && next.is_some() {
                            code.push_str("''");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char (may be a quote) — but leave a
                    // line-continuation newline for the line accounting.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// True if `chars[i..]` opens a raw (byte) string: `r"`, `r#…#"`, `br"`,
/// `b"` is a plain byte string (handled as `Str` would be, but blanking is
/// identical so we treat it as raw with zero hashes only when quoted
/// directly).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else if j > i {
        // plain `b"…"` byte string
        return chars.get(j) == Some(&'"');
    } else {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Returns (hash count, chars consumed through the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i)
}

/// True if the quote at `i` is followed by `hashes` pound signs.
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` regions by tracking the
/// brace depth at which the attributed block opens.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut open_at: Option<i64> = None;
    for line in lines.iter_mut() {
        if open_at.is_none() && (line.code.contains("cfg(test") || line.code.contains("#[test]")) {
            pending = true;
        }
        let mut in_test = open_at.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && open_at.is_none() {
                        open_at = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if open_at == Some(depth) {
                        open_at = None;
                        in_test = true; // the closing line still belongs to the region
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        line.in_test = in_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_and_collected() {
        let lines = analyze("let x = 1; // has HashMap in comment\n/* block HashMap */ let y;");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn string_contents_are_blanked_quotes_kept() {
        let lines = analyze("let s = \"panic! HashMap .unwrap()\";");
        assert_eq!(lines[0].code, "let s = \"\";");
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lines = analyze("let s = r#\"thread_rng \"quoted\"\"#; let t = \"a\\\"b HashSet\";");
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(!lines[0].code.contains("HashSet"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lines = analyze("fn f<'a>(x: &'a str) { let q = '\"'; let n = 'x'; } panic!");
        assert!(lines[0].code.contains("panic!"), "{}", lines[0].code);
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = analyze("/* outer /* inner */ still comment */ code_here");
        assert!(lines[0].code.trim().starts_with("code_here"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let lines = analyze("let s = \"line one HashMap\nline two HashSet\"; done");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(lines[1].code.contains("done"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn lib2() {}
";
        let lines = analyze(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace line belongs to the region");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_attribute_on_fn_is_tracked() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let lines = analyze(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }
}
