//! Rendering: human-readable diagnostics and the machine-readable
//! `LINT_report.json` (rule → count → files) used to track the violation
//! trajectory across PRs, like `BENCH_ppc.json` tracks performance.

use crate::rules::Rule;
use crate::scan::WorkspaceScan;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule tally.
#[derive(Debug, Clone, Serialize)]
pub struct RuleReport {
    /// Unsuppressed violations of this rule.
    pub count: usize,
    /// File → violation count, sorted by path.
    pub files: BTreeMap<String, usize>,
}

/// The full machine-readable report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Format tag for downstream tooling.
    pub schema: String,
    /// Files the scanner covered.
    pub files_scanned: usize,
    /// Total unsuppressed violations (CI gate: must be zero).
    pub violations: usize,
    /// Findings silenced by a justified `allow(...)`.
    pub suppressed: usize,
    /// Rule id → tally, sorted by rule id. Rules with zero violations are
    /// included so trend diffs show rules going *to* zero, not vanishing.
    pub rules: BTreeMap<String, RuleReport>,
}

impl Report {
    /// Builds the report from a workspace scan.
    pub fn from_scan(scan: &WorkspaceScan) -> Report {
        let mut rules: BTreeMap<String, RuleReport> = Rule::ALL
            .iter()
            .map(|r| {
                (
                    r.id().to_string(),
                    RuleReport {
                        count: 0,
                        files: BTreeMap::new(),
                    },
                )
            })
            .collect();
        for d in &scan.diagnostics {
            if let Some(entry) = rules.get_mut(d.rule.id()) {
                entry.count += 1;
                *entry.files.entry(d.file.clone()).or_insert(0) += 1;
            }
        }
        Report {
            schema: "ppc-lint/v1".to_string(),
            files_scanned: scan.files_scanned,
            violations: scan.diagnostics.len(),
            suppressed: scan.suppressed,
            rules,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Renders diagnostics plus a summary line for terminal output.
pub fn render_text(scan: &WorkspaceScan) -> String {
    let mut out = String::new();
    for d in &scan.diagnostics {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
    }
    let _ = writeln!(
        out,
        "ppc-lint: {} file(s), {} violation(s), {} suppression(s)",
        scan.files_scanned,
        scan.diagnostics.len(),
        scan.suppressed
    );
    out
}

/// Renders the rule catalogue for `--list-rules`.
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in Rule::ALL {
        let _ = writeln!(out, "{:22} {}", rule.id(), rule.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Diagnostic;

    #[test]
    fn report_tallies_by_rule_and_file() {
        let scan = WorkspaceScan {
            diagnostics: vec![
                Diagnostic {
                    file: "crates/core/src/a.rs".into(),
                    line: 1,
                    rule: Rule::PanicPath,
                    message: "x".into(),
                },
                Diagnostic {
                    file: "crates/core/src/a.rs".into(),
                    line: 2,
                    rule: Rule::PanicPath,
                    message: "y".into(),
                },
            ],
            suppressed: 3,
            files_scanned: 10,
        };
        let report = Report::from_scan(&scan);
        assert_eq!(report.violations, 2);
        assert_eq!(report.suppressed, 3);
        let pp = &report.rules["panic-path"];
        assert_eq!(pp.count, 2);
        assert_eq!(pp.files["crates/core/src/a.rs"], 2);
        assert_eq!(report.rules["wall-clock"].count, 0, "zero rules present");
        let json = report.to_json();
        assert!(json.contains("\"panic-path\""));
        assert!(json.contains("\"schema\""));
    }

    #[test]
    fn text_rendering_is_stable() {
        let scan = WorkspaceScan {
            diagnostics: vec![],
            suppressed: 0,
            files_scanned: 2,
        };
        let text = render_text(&scan);
        assert!(text.contains("2 file(s), 0 violation(s)"));
        assert!(render_rules().contains("unordered-collections"));
    }
}
