//! Rendering: human-readable diagnostics and the machine-readable
//! `LINT_report.json` (rule → count → files, call-graph stats, taint
//! paths) used to track the violation trajectory across PRs, like
//! `BENCH_ppc.json` tracks performance.
//!
//! v2 schema (`ppc-lint/v2`) adds two sections over v1: `call_graph`
//! (functions/edges/ambiguous-edge counts plus taint source/sink tallies,
//! so a PR that silently grows ambiguity or sources shows up in the diff)
//! and `taint_paths` (every unsuppressed source→sink chain, verbatim).
//! Output is byte-deterministic: all maps are `BTreeMap`, diagnostics and
//! paths arrive pre-sorted from the scanner.

use crate::rules::Rule;
use crate::scan::{GraphStats, TaintPathReport, WorkspaceScan};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule tally.
#[derive(Debug, Clone, Serialize)]
pub struct RuleReport {
    /// Unsuppressed violations of this rule.
    pub count: usize,
    /// File → violation count, sorted by path.
    pub files: BTreeMap<String, usize>,
}

/// Call-graph section of the report.
#[derive(Debug, Clone, Serialize)]
pub struct CallGraphReport {
    /// Function items recovered by the parser.
    pub functions: usize,
    /// Resolved intra-workspace call edges.
    pub edges: usize,
    /// Edges kept under method-name ambiguity (sound over-approximation).
    pub ambiguous_edges: usize,
    /// Nondeterminism sources detected in function bodies.
    pub taint_sources: usize,
    /// Fingerprint sink functions.
    pub taint_sinks: usize,
}

impl CallGraphReport {
    fn from_stats(s: &GraphStats) -> CallGraphReport {
        CallGraphReport {
            functions: s.functions,
            edges: s.edges,
            ambiguous_edges: s.ambiguous_edges,
            taint_sources: s.taint_sources,
            taint_sinks: s.taint_sinks,
        }
    }
}

/// One reported source→sink chain.
#[derive(Debug, Clone, Serialize)]
pub struct TaintPathJson {
    /// Source kind id (e.g. `wall-clock`, `unordered-iter`).
    pub kind: String,
    /// The token that matched at the source line.
    pub token: String,
    /// File and line of the source.
    pub file: String,
    pub line: usize,
    /// Fully qualified source and sink functions.
    pub source_fn: String,
    pub sink_fn: String,
    /// Which fingerprint family the sink feeds.
    pub sink_label: String,
    /// The call chain, source to sink, each entry `fn (file:line)`.
    pub chain: Vec<String>,
    /// True if any hop went through ambiguous method resolution.
    pub ambiguous: bool,
}

impl TaintPathJson {
    fn from_report(p: &TaintPathReport) -> TaintPathJson {
        TaintPathJson {
            kind: p.kind.clone(),
            token: p.token.clone(),
            file: p.file.clone(),
            line: p.line,
            source_fn: p.source_fn.clone(),
            sink_fn: p.sink_fn.clone(),
            sink_label: p.sink_label.clone(),
            chain: p.chain.clone(),
            ambiguous: p.ambiguous,
        }
    }
}

/// The full machine-readable report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Format tag for downstream tooling.
    pub schema: String,
    /// Files the scanner covered.
    pub files_scanned: usize,
    /// Total unsuppressed violations (CI gate: must be zero).
    pub violations: usize,
    /// Findings silenced by a justified `allow(...)`.
    pub suppressed: usize,
    /// Workspace call-graph statistics.
    pub call_graph: CallGraphReport,
    /// Rule id → tally, sorted by rule id. Rules with zero violations are
    /// included so trend diffs show rules going *to* zero, not vanishing.
    pub rules: BTreeMap<String, RuleReport>,
    /// Every unsuppressed source→sink taint chain.
    pub taint_paths: Vec<TaintPathJson>,
}

impl Report {
    /// Builds the report from a workspace scan.
    pub fn from_scan(scan: &WorkspaceScan) -> Report {
        let mut rules: BTreeMap<String, RuleReport> = Rule::ALL
            .iter()
            .map(|r| {
                (
                    r.id().to_string(),
                    RuleReport {
                        count: 0,
                        files: BTreeMap::new(),
                    },
                )
            })
            .collect();
        for d in &scan.diagnostics {
            if let Some(entry) = rules.get_mut(d.rule.id()) {
                entry.count += 1;
                *entry.files.entry(d.file.clone()).or_insert(0) += 1;
            }
        }
        Report {
            schema: "ppc-lint/v2".to_string(),
            files_scanned: scan.files_scanned,
            violations: scan.diagnostics.len(),
            suppressed: scan.suppressed,
            call_graph: CallGraphReport::from_stats(&scan.graph),
            rules,
            taint_paths: scan
                .taint_paths
                .iter()
                .map(TaintPathJson::from_report)
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Renders diagnostics plus a summary line for terminal output.
pub fn render_text(scan: &WorkspaceScan) -> String {
    let mut out = String::new();
    for d in &scan.diagnostics {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
    }
    let _ = writeln!(
        out,
        "ppc-lint: {} file(s), {} violation(s), {} suppression(s)",
        scan.files_scanned,
        scan.diagnostics.len(),
        scan.suppressed
    );
    let g = &scan.graph;
    let _ = writeln!(
        out,
        "call graph: {} fn(s), {} edge(s) ({} ambiguous), {} taint source(s), {} sink(s), {} path(s)",
        g.functions,
        g.edges,
        g.ambiguous_edges,
        g.taint_sources,
        g.taint_sinks,
        scan.taint_paths.len()
    );
    out
}

/// Renders the rule catalogue for `--list-rules`.
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in Rule::ALL {
        let _ = writeln!(out, "{:22} {}", rule.id(), rule.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Diagnostic;

    #[test]
    fn report_tallies_by_rule_and_file() {
        let scan = WorkspaceScan {
            diagnostics: vec![
                Diagnostic {
                    file: "crates/core/src/a.rs".into(),
                    line: 1,
                    rule: Rule::PanicPath,
                    message: "x".into(),
                },
                Diagnostic {
                    file: "crates/core/src/a.rs".into(),
                    line: 2,
                    rule: Rule::PanicPath,
                    message: "y".into(),
                },
            ],
            suppressed: 3,
            files_scanned: 10,
            ..WorkspaceScan::default()
        };
        let report = Report::from_scan(&scan);
        assert_eq!(report.violations, 2);
        assert_eq!(report.suppressed, 3);
        let pp = &report.rules["panic-path"];
        assert_eq!(pp.count, 2);
        assert_eq!(pp.files["crates/core/src/a.rs"], 2);
        assert_eq!(report.rules["wall-clock"].count, 0, "zero rules present");
        assert_eq!(
            report.rules["fingerprint-taint"].count, 0,
            "v2 rules present even at zero"
        );
        let json = report.to_json();
        assert!(json.contains("\"panic-path\""));
        assert!(json.contains("\"schema\": \"ppc-lint/v2\""));
        assert!(json.contains("\"call_graph\""));
        assert!(json.contains("\"taint_paths\""));
    }

    #[test]
    fn text_rendering_is_stable() {
        let scan = WorkspaceScan {
            diagnostics: vec![],
            suppressed: 0,
            files_scanned: 2,
            ..WorkspaceScan::default()
        };
        let text = render_text(&scan);
        assert!(text.contains("2 file(s), 0 violation(s)"));
        assert!(text.contains("call graph:"));
        assert!(render_rules().contains("unordered-collections"));
        assert!(render_rules().contains("fingerprint-taint"));
    }
}
