//! The scanner: applies [`Rule`]s to analyzed source lines, honors
//! `// ppc-lint: allow(rule): reason` directives, and walks the workspace.
//!
//! Scanning is a multi-pass pipeline (v2):
//!
//! 1. per-file token pass (the original line scanner), which also
//!    collects every `allow` directive as an [`AllowSite`];
//! 2. item parse + call-graph build ([`crate::items`], [`crate::graph`]);
//! 3. the determinism-taint and shard-join-order passes
//!    ([`crate::taint`]), whose suppressions attach to source lines;
//! 4. an unused-suppression sweep over every justified allow that ended
//!    the run with zero uses.

use crate::graph::{self, FileUnit};
use crate::rules::{CrateClass, Rule};
use crate::source;
use crate::taint;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path (used in diagnostics and reports).
    pub path: String,
    /// Owning crate's short name (`core`, `simkit`, … or `ppc` for the
    /// root facade).
    pub crate_name: String,
    /// True for binary targets (`main.rs`, `src/bin/*`): allowed to print.
    pub is_binary: bool,
}

impl FileContext {
    /// Builds the context for a workspace-relative path.
    pub fn for_path(rel: &str) -> FileContext {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("ppc")
            .to_string();
        let is_binary =
            rel.ends_with("/main.rs") || rel == "src/main.rs" || rel.contains("/src/bin/");
        FileContext {
            path: rel.to_string(),
            crate_name,
            is_binary,
        }
    }

    fn class(&self) -> CrateClass {
        CrateClass::of(&self.crate_name)
    }

    /// The one file in the `obs` crate allowed to read wall clocks: the
    /// self-profiler measures real recording cost the same way
    /// `telemetry`'s cost meter does, and its output never joins the
    /// determinism fingerprints.
    fn is_obs_profile(&self) -> bool {
        self.path == "crates/obs/src/profile.rs"
    }

    /// Hot-path modules of the incremental tick core: the SoA node
    /// columns and the simkit time wheel run inside every simulation
    /// tick, where a wall-clock read or an unordered collection would
    /// both cost cycles and threaten replay determinism. For these files
    /// the two rules are *not suppressable* — an `allow` directive is
    /// ignored and the finding reported anyway.
    fn is_hot_path(&self) -> bool {
        matches!(
            self.path.as_str(),
            "crates/cluster/src/columns.rs" | "crates/simkit/src/wheel.rs"
        )
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What matched and why it matters.
    pub message: String,
}

/// One `allow(rule)` directive found in a file, with its use count.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// 1-based code line the directive attaches to (the directive's own
    /// line for trailing comments, the next code line otherwise).
    pub code_line: usize,
    /// The rule it suppresses.
    pub rule: Rule,
    /// True when a justification follows the closing parenthesis.
    pub justified: bool,
    /// How many findings this directive silenced, across all passes.
    pub used: usize,
}

/// Result of scanning one file.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// Unsuppressed findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a justified `allow`.
    pub suppressed: usize,
    /// Every allow directive in the file, with token-pass use counts.
    pub allows: Vec<AllowSite>,
}

/// One reported source→sink taint path (structured for the JSON report).
#[derive(Debug, Clone)]
pub struct TaintPathReport {
    /// Source kind id (e.g. `wall-clock`).
    pub kind: String,
    /// The matched source token.
    pub token: String,
    /// File and line of the source.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Fully qualified source fn.
    pub source_fn: String,
    /// Fully qualified sink fn and its sink label.
    pub sink_fn: String,
    /// What fingerprint the sink feeds.
    pub sink_label: String,
    /// Rendered call chain, source to sink: `fq (file:line)` per hop.
    pub chain: Vec<String>,
    /// True if any hop came from ambiguous method resolution.
    pub ambiguous: bool,
}

/// Call-graph size statistics for the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Function items recovered.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Edges from ambiguous method resolution.
    pub ambiguous_edges: usize,
    /// Live taint sources detected.
    pub taint_sources: usize,
    /// Fingerprint sink fns detected.
    pub taint_sinks: usize,
}

/// Result of scanning the whole workspace.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceScan {
    /// Findings across all files, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Total justified suppressions (token and graph passes).
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Call-graph statistics.
    pub graph: GraphStats,
    /// Unsuppressed taint paths, in diagnostic order.
    pub taint_paths: Vec<TaintPathReport>,
}

/// A parsed `ppc-lint:` directive.
enum Directive {
    Allow(Rule),
    BareAllow(Rule),
    Unknown(String),
}

/// Extracts the directives from one line's comment text. A directive must
/// *start* the comment (`// ppc-lint: allow(rule): reason`) so prose that
/// merely mentions the syntax never registers as one.
fn parse_directives(comment: &str) -> Vec<Directive> {
    let mut out = Vec::new();
    let Some(rest) = comment.trim_start().strip_prefix("ppc-lint:") else {
        return out;
    };
    let body = rest.trim_start();
    let parsed = body.strip_prefix("allow(").and_then(|args| {
        let close = args.find(')')?;
        Some((&args[..close], args[close + 1..].trim_start()))
    });
    let Some((names, after)) = parsed else {
        out.push(Directive::Unknown(body.chars().take(40).collect()));
        return out;
    };
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    for name in names.split(',') {
        let name = name.trim();
        match Rule::from_id(name) {
            Some(rule) if has_reason => out.push(Directive::Allow(rule)),
            Some(rule) => out.push(Directive::BareAllow(rule)),
            None => out.push(Directive::Unknown(name.to_string())),
        }
    }
    out
}

/// True if the byte at `i` starts token `tok` with a non-identifier char
/// (or line start) before it.
pub(crate) fn token_at(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(tok) {
        let i = from + at;
        // A token starting with a non-identifier char (e.g. `.unwrap()`)
        // is left-delimited by construction.
        let bounded_left = tok.starts_with(|c: char| !c.is_alphanumeric() && c != '_')
            || i == 0
            || code[..i]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        if bounded_left {
            // Right boundary only matters for pure-identifier tokens.
            let end = i + tok.len();
            let bounded_right = tok.ends_with(|c: char| !c.is_alphanumeric() && c != '_')
                || code[end..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if bounded_right {
                return true;
            }
        }
        from = i + tok.len().max(1);
    }
    false
}

/// Tokens per rule (matched against comment- and string-stripped code).
fn match_rule(rule: Rule, code: &str) -> Option<&'static str> {
    let tokens: &[&'static str] = match rule {
        Rule::UnorderedCollections => &["HashMap", "HashSet"],
        Rule::WallClock => &["Instant::now", "SystemTime", "UNIX_EPOCH"],
        Rule::AdHocRng => &["thread_rng", "from_entropy", "rand::random", "OsRng"],
        Rule::PanicPath => &[
            ".unwrap()",
            ".expect(",
            "panic!",
            "todo!",
            "unimplemented!",
            "unreachable!",
        ],
        Rule::Stdout => &["println!", "eprintln!", "print!", "eprint!", "dbg!"],
        Rule::FloatEq
        | Rule::BareAllow
        | Rule::FingerprintTaint
        | Rule::ShardJoinOrder
        | Rule::UnusedSuppression => &[],
    };
    tokens.iter().find(|t| token_at(code, t)).copied()
}

/// Crates whose arithmetic the `float-eq` rule guards (the power model
/// and the budget/threshold math).
fn in_float_eq_scope(crate_name: &str) -> bool {
    matches!(crate_name, "core" | "node")
}

/// Heuristic: does this comparison line put a float literal on either
/// side of `==`/`!=`?
fn float_eq_hit(code: &str) -> bool {
    let b: Vec<char> = code.chars().collect();
    for i in 0..b.len().saturating_sub(1) {
        let pair = (b[i], b[i + 1]);
        if pair != ('=', '=') && pair != ('!', '=') {
            continue;
        }
        // Exclude <=, >=, ==- chains, != inside `!==`-like runs, and `=>`.
        if b[i] == '='
            && i > 0
            && matches!(
                b[i - 1],
                '<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%'
            )
        {
            continue;
        }
        if b.get(i + 2) == Some(&'=') {
            continue;
        }
        let left: String = operand(&b[..i], true);
        let right: String = operand(&b[i + 2..], false);
        if has_float_literal(&left) || has_float_literal(&right) {
            return true;
        }
    }
    false
}

/// The operand window next to a comparison: chars up to the nearest
/// expression delimiter.
fn operand(chars: &[char], from_end: bool) -> String {
    let stop = |c: &char| matches!(c, ';' | ',' | '{' | '}' | '(' | ')' | '[' | ']' | '&' | '|');
    if from_end {
        let it: Vec<char> = chars
            .iter()
            .rev()
            .take_while(|c| !stop(c))
            .copied()
            .collect();
        it.into_iter().rev().collect()
    } else {
        chars.iter().take_while(|c| !stop(c)).collect()
    }
}

/// True if `s` contains a float literal like `1.0`, `0.93`, `2.5e3`.
fn has_float_literal(s: &str) -> bool {
    let b: Vec<char> = s.chars().collect();
    for i in 0..b.len() {
        if !b[i].is_ascii_digit() || b.get(i + 1) != Some(&'.') {
            continue;
        }
        // `0..n` range and `x.0.1` tuple chains are not floats.
        if b.get(i + 2) == Some(&'.') {
            continue;
        }
        // Walk back over the digit run; a preceding `.` or identifier char
        // means tuple access (`x.0`) or an ident suffix, not a literal.
        let mut j = i;
        while j > 0 && (b[j - 1].is_ascii_digit() || b[j - 1] == '_') {
            j -= 1;
        }
        if j > 0 && (b[j - 1] == '.' || b[j - 1].is_alphanumeric() || b[j - 1] == '_') {
            continue;
        }
        if b.get(i + 2)
            .is_none_or(|c| c.is_ascii_digit() || c.is_whitespace() || *c == ')')
        {
            return true;
        }
    }
    false
}

/// Scans one file's analyzed lines under the given context (token pass).
fn scan_lines(ctx: &FileContext, lines: &[source::Line]) -> FileScan {
    let class = ctx.class();
    let mut out = FileScan::default();
    // Indices into `out.allows` still waiting for their code line.
    let mut pending: Vec<usize> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut here: Vec<usize> = Vec::new();
        for d in parse_directives(&line.comment) {
            match d {
                Directive::Allow(rule) => {
                    here.push(out.allows.len());
                    out.allows.push(AllowSite {
                        line: lineno,
                        code_line: lineno,
                        rule,
                        justified: true,
                        used: 0,
                    });
                }
                Directive::BareAllow(rule) => {
                    out.diagnostics.push(Diagnostic {
                        file: ctx.path.clone(),
                        line: lineno,
                        rule: Rule::BareAllow,
                        message: format!(
                            "allow({}) without a justification — write \
                             `ppc-lint: allow({}): <why>`",
                            rule.id(),
                            rule.id()
                        ),
                    });
                    // Still honored so CI shows only the bare-allow.
                    here.push(out.allows.len());
                    out.allows.push(AllowSite {
                        line: lineno,
                        code_line: lineno,
                        rule,
                        justified: false,
                        used: 0,
                    });
                }
                Directive::Unknown(name) => {
                    out.diagnostics.push(Diagnostic {
                        file: ctx.path.clone(),
                        line: lineno,
                        rule: Rule::BareAllow,
                        message: format!("unknown ppc-lint rule `{name}` in allow directive"),
                    });
                }
            }
        }

        if line.code.trim().is_empty() {
            // Comment-only line: directives carry to the next code line.
            pending.append(&mut here);
            continue;
        }
        let attached: Vec<usize> = pending.drain(..).chain(here).collect();
        for &site in &attached {
            out.allows[site].code_line = lineno;
        }

        for rule in Rule::ALL {
            if rule == Rule::BareAllow || !rule.applies_to(class) {
                continue;
            }
            if line.in_test && !rule.applies_in_tests() {
                continue;
            }
            let hit: Option<String> = match rule {
                Rule::FloatEq => (in_float_eq_scope(&ctx.crate_name) && float_eq_hit(&line.code))
                    .then(|| "float-literal equality comparison".to_string()),
                Rule::Stdout if ctx.is_binary => None,
                Rule::WallClock if ctx.is_obs_profile() => None,
                _ => match_rule(rule, &line.code).map(|tok| format!("`{tok}`")),
            };
            let Some(what) = hit else { continue };
            let unsuppressable =
                ctx.is_hot_path() && matches!(rule, Rule::WallClock | Rule::UnorderedCollections);
            let allow = attached
                .iter()
                .copied()
                .find(|&s| out.allows[s].rule == rule);
            if let Some(site) = allow.filter(|_| !unsuppressable) {
                out.allows[site].used += 1;
                out.suppressed += 1;
            } else {
                let note = if unsuppressable {
                    " (hot-path module: allow directives are ignored here)"
                } else {
                    ""
                };
                out.diagnostics.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: lineno,
                    rule,
                    message: format!("{what}: {}{note}", rule.summary()),
                });
            }
        }
    }
    out
}

/// Scans one file's source text under the given context (token pass
/// only — the call-graph passes need the whole workspace; see
/// [`scan_units`]).
pub fn scan_source(ctx: &FileContext, text: &str) -> FileScan {
    scan_lines(ctx, &source::analyze(text))
}

/// Scans one file from disk.
pub fn scan_file(root: &Path, rel: &str) -> io::Result<FileScan> {
    let text = fs::read_to_string(root.join(rel))?;
    Ok(scan_source(&FileContext::for_path(rel), &text))
}

/// Collects every `.rs` file the lint covers: `crates/*/src/**` plus the
/// root `src/`, in sorted order for stable reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut files)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Renders the head of a taint chain: the source fn at the source line.
fn chain_head(units: &[FileUnit], g: &graph::CallGraph, node: usize, line: usize) -> String {
    format!(
        "{} ({}:{})",
        g.nodes[node].fq(),
        units[g.nodes[node].file].ctx.path,
        line
    )
}

/// Renders one hop of a taint chain: the callee, located by the call
/// site in the *caller's* file (that is where a reader must look next).
fn chain_hop(units: &[FileUnit], g: &graph::CallGraph, e: graph::CallEdge) -> String {
    format!(
        "{} (called at {}:{})",
        g.nodes[e.callee].fq(),
        units[g.nodes[e.caller].file].ctx.path,
        e.line
    )
}

/// Runs the full multi-pass analysis over a set of in-memory files. This
/// is the v2 engine: token rules per file, then the call-graph passes
/// (`fingerprint-taint`, `shard-join-order`) across all of them, then the
/// unused-suppression sweep.
pub fn scan_units(inputs: Vec<(FileContext, String)>) -> WorkspaceScan {
    // Pass 1: lex + item parse + token rules.
    let mut units: Vec<FileUnit> = Vec::with_capacity(inputs.len());
    let mut file_scans: Vec<FileScan> = Vec::with_capacity(inputs.len());
    for (ctx, text) in inputs {
        let unit = FileUnit::new(ctx, &text);
        file_scans.push(scan_lines(&unit.ctx, &unit.lines));
        units.push(unit);
    }

    // Pass 2: workspace call graph.
    let g = graph::build(&units);
    let mut suppressed = 0usize;
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut taint_reports: Vec<TaintPathReport> = Vec::new();

    // Pass 3a: determinism taint. An allow suppresses at the source line.
    let paths = taint::taint_paths(&units, &g);
    let source_count = taint::find_sources(&units, &g).len();
    let sink_count = taint::find_sinks(&g).len();
    for p in &paths {
        let src = &g.nodes[p.source.fn_id];
        let fi = src.file;
        let path = units[fi].ctx.path.clone();
        let allow = file_scans[fi].allows.iter_mut().find(|a| {
            a.justified && a.rule == Rule::FingerprintTaint && a.code_line == p.source.line
        });
        if let Some(a) = allow {
            a.used += 1;
            suppressed += 1;
            continue;
        }
        let mut chain = vec![chain_head(&units, &g, p.source.fn_id, p.source.line)];
        for &ei in &p.hops {
            chain.push(chain_hop(&units, &g, g.edges[ei]));
        }
        let label = taint::sink_label(&g.nodes[p.sink]).unwrap_or("fingerprint");
        let amb = if p.ambiguous {
            " [chain includes ambiguous method resolution]"
        } else {
            ""
        };
        diagnostics.push(Diagnostic {
            file: path.clone(),
            line: p.source.line,
            rule: Rule::FingerprintTaint,
            message: format!(
                "nondeterministic `{}` ({}) reaches the {} sink `{}`: {}{}",
                p.source.token,
                p.source.kind,
                label,
                g.nodes[p.sink].fq(),
                chain.join(" -> "),
                amb
            ),
        });
        taint_reports.push(TaintPathReport {
            kind: p.source.kind.id().to_string(),
            token: p.source.token.to_string(),
            file: path,
            line: p.source.line,
            source_fn: g.nodes[p.source.fn_id].fq(),
            sink_fn: g.nodes[p.sink].fq(),
            sink_label: label.to_string(),
            chain,
            ambiguous: p.ambiguous,
        });
    }

    // Pass 3b: fan-out join discipline. An allow suppresses at the line
    // of the offending sink call.
    for f in taint::shard_join_findings(&units, &g) {
        let fi = g.nodes[f.caller].file;
        let allow = file_scans[fi]
            .allows
            .iter_mut()
            .find(|a| a.justified && a.rule == Rule::ShardJoinOrder && a.code_line == f.line);
        if let Some(a) = allow {
            a.used += 1;
            suppressed += 1;
            continue;
        }
        diagnostics.push(Diagnostic {
            file: units[fi].ctx.path.clone(),
            line: f.line,
            rule: Rule::ShardJoinOrder,
            message: format!(
                "`{}` written inside the `{}` fan-out opened at line {}: sinks must be \
                 combined serially after the join, in index order",
                g.nodes[f.callee].fq(),
                f.fanout,
                f.fanout_line
            ),
        });
    }

    // Pass 4: stale allows. Only justified directives are reported here —
    // bare ones already carry a bare-allow diagnostic.
    for (fi, fscan) in file_scans.iter().enumerate() {
        for a in &fscan.allows {
            if a.justified && a.used == 0 {
                diagnostics.push(Diagnostic {
                    file: units[fi].ctx.path.clone(),
                    line: a.line,
                    rule: Rule::UnusedSuppression,
                    message: format!(
                        "allow({}) suppresses nothing here — the finding it covered is \
                         gone; delete the directive",
                        a.rule.id()
                    ),
                });
            }
        }
    }

    let mut ws = WorkspaceScan {
        files_scanned: units.len(),
        graph: GraphStats {
            functions: g.nodes.len(),
            edges: g.edges.len(),
            ambiguous_edges: g.ambiguous_edges(),
            taint_sources: source_count,
            taint_sinks: sink_count,
        },
        ..WorkspaceScan::default()
    };
    for fscan in file_scans {
        ws.diagnostics.extend(fscan.diagnostics);
        ws.suppressed += fscan.suppressed;
    }
    ws.diagnostics.extend(diagnostics);
    ws.suppressed += suppressed;
    ws.diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    taint_reports.sort_by(|a, b| (&a.file, a.line, &a.kind).cmp(&(&b.file, b.line, &b.kind)));
    ws.taint_paths = taint_reports;
    ws
}

/// Scans the whole workspace rooted at `root` with the full v2 pipeline.
pub fn scan_workspace(root: &Path) -> io::Result<WorkspaceScan> {
    let mut inputs = Vec::new();
    for rel in workspace_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        inputs.push((FileContext::for_path(&rel), text));
    }
    Ok(scan_units(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_ctx() -> FileContext {
        FileContext {
            path: "crates/core/src/x.rs".into(),
            crate_name: "core".into(),
            is_binary: false,
        }
    }

    #[test]
    fn token_boundaries() {
        assert!(token_at("use std::collections::HashMap;", "HashMap"));
        assert!(!token_at("type MyHashMapLike = ();", "HashMap"));
        assert!(!token_at("#[should_panic]", "panic!"));
        assert!(token_at("core::panic!()", "panic!"));
        assert!(!token_at("let printler = 1;", "print!"));
        assert!(token_at("x.unwrap()", ".unwrap()"));
        assert!(!token_at("x.unwrap_or(0)", ".unwrap()"));
    }

    #[test]
    fn float_literal_detection() {
        assert!(has_float_literal("x == 1.0"));
        assert!(has_float_literal("0.93 * peak"));
        assert!(!has_float_literal("0..10"));
        assert!(!has_float_literal("tuple.0"));
        assert!(!has_float_literal("a == b"));
        assert!(float_eq_hit("if power == 0.0 {"));
        assert!(float_eq_hit("x != 1.5"));
        assert!(!float_eq_hit("x <= 1.5"));
        assert!(!float_eq_hit("x == y"));
        assert!(!float_eq_hit("for i in 0..10"));
    }

    #[test]
    fn directive_parsing_and_suppression() {
        let src = "\
let a = x.unwrap(); // ppc-lint: allow(panic-path): invariant — a is Some by construction
// ppc-lint: allow(panic-path): documented on the next line
let b = y.unwrap();
let c = z.unwrap();
";
        let scan = scan_source(&det_ctx(), src);
        assert_eq!(scan.suppressed, 2);
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].line, 4);
        assert_eq!(scan.diagnostics[0].rule, Rule::PanicPath);
    }

    #[test]
    fn bare_allow_is_flagged() {
        let scan = scan_source(
            &det_ctx(),
            "let a = x.unwrap(); // ppc-lint: allow(panic-path)\n",
        );
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, Rule::BareAllow);
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let scan = scan_source(&det_ctx(), "// ppc-lint: allow(no-such-rule): whatever\n");
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, Rule::BareAllow);
    }

    #[test]
    fn class_gating() {
        // Wall clock allowed in telemetry, flagged in core.
        let tele = FileContext {
            path: "crates/telemetry/src/cost.rs".into(),
            crate_name: "telemetry".into(),
            is_binary: false,
        };
        let src = "let t = Instant::now();\n";
        assert!(scan_source(&tele, src).diagnostics.is_empty());
        assert_eq!(scan_source(&det_ctx(), src).diagnostics.len(), 1);
        // Binaries may print; libraries may not.
        let bin = FileContext {
            path: "crates/core/src/bin/tool.rs".into(),
            crate_name: "core".into(),
            is_binary: true,
        };
        let print = "println!();\n";
        assert!(scan_source(&bin, print).diagnostics.is_empty());
        assert_eq!(scan_source(&det_ctx(), print).diagnostics.len(), 1);
    }

    #[test]
    fn obs_class_wall_clock_scoping() {
        // The obs crate is held to the deterministic wall-clock standard…
        let span = FileContext::for_path("crates/obs/src/span.rs");
        let src = "let t = Instant::now();\n";
        let scan = scan_source(&span, src);
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, Rule::WallClock);
        // …except the dedicated self-profiling module.
        let profile = FileContext::for_path("crates/obs/src/profile.rs");
        assert!(scan_source(&profile, src).diagnostics.is_empty());
        // The carve-out is wall-clock only: other rules still fire there.
        let scan = scan_source(&profile, "let a = x.unwrap();\n");
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, Rule::PanicPath);
    }

    #[test]
    fn hot_path_modules_ignore_allows_for_determinism_rules() {
        // In the tick-core hot-path files, wall-clock and unordered-
        // collection findings cannot be suppressed, even with a reason…
        for path in [
            "crates/cluster/src/columns.rs",
            "crates/simkit/src/wheel.rs",
        ] {
            let ctx = FileContext::for_path(path);
            let src = "\
// ppc-lint: allow(wall-clock): tempting but forbidden
let t = Instant::now();
// ppc-lint: allow(unordered-collections): also forbidden
use std::collections::HashMap;
";
            let scan = scan_source(&ctx, src);
            assert_eq!(scan.diagnostics.len(), 2, "{path}");
            assert_eq!(scan.suppressed, 0, "{path}");
            assert!(scan.diagnostics[0].message.contains("hot-path module"));
        }
        // …while other rules keep the normal allow semantics there.
        let ctx = FileContext::for_path("crates/simkit/src/wheel.rs");
        let scan = scan_source(
            &ctx,
            "// ppc-lint: allow(panic-path): invariant documented\nlet a = x.unwrap();\n",
        );
        assert!(scan.diagnostics.is_empty());
        assert_eq!(scan.suppressed, 1);
    }

    #[test]
    fn test_region_exemptions() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { x.unwrap(); }
}
";
        let scan = scan_source(&det_ctx(), src);
        // HashMap still fires in tests (determinism rule); unwrap does not.
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, Rule::UnorderedCollections);
    }

    #[test]
    fn context_classification() {
        let ctx = FileContext::for_path("crates/simkit/src/par.rs");
        assert_eq!(ctx.crate_name, "simkit");
        assert!(!ctx.is_binary);
        let ctx = FileContext::for_path("crates/bench/src/bin/bench_ppc.rs");
        assert!(ctx.is_binary);
        let ctx = FileContext::for_path("src/lib.rs");
        assert_eq!(ctx.crate_name, "ppc");
    }
}
