//! Determinism-taint analysis over the call graph.
//!
//! The four CI gate fingerprints (journal, power trace, span tree,
//! metrics registry) all funnel through a handful of *sink* functions:
//! the FNV-1a hasher's `write_*` family, `Journal::record*`, the
//! `SpanRecorder` mutators and the `MetricsRegistry` mutators, plus any
//! `fingerprint()` fold. A nondeterministic *source* — unordered-map
//! iteration, a wall-clock read, thread/machine identity, an environment
//! read, a float reduction over unordered iteration — that can reach one
//! of those sinks through any call chain is exactly the bug class the
//! width-invariance tests only catch after the fact. This pass reports
//! every source→sink path (with the full chain) that is not covered by a
//! justified `ppc-lint: allow(fingerprint-taint): …` on the source line.
//!
//! The same machinery checks the pool fan-out discipline
//! (`shard-join-order`): closures handed to `WorkerPool` fan-out calls
//! run on arbitrary workers in arbitrary interleavings, so they must not
//! write to any fingerprint sink — all journal/span/metrics bookkeeping
//! belongs in the serial post-join pass, in index order (the discipline
//! `cluster::sim` and `whatif` already follow).

use crate::graph::{CallGraph, FileUnit, FnNode};
use crate::rules::CrateClass;
use crate::scan::{token_at, FileContext};
use std::fmt;

/// What kind of nondeterminism a source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `HashMap`/`HashSet`: iteration order varies run to run.
    UnorderedIter,
    /// `Instant::now`/`SystemTime`/`UNIX_EPOCH`.
    WallClock,
    /// `thread_rng`/`from_entropy`/`rand::random`/`OsRng`.
    AdHocRng,
    /// `thread::current`/`ThreadId`/`available_parallelism`: values that
    /// differ per thread or per machine.
    ThreadIdentity,
    /// `env::var`/`env::vars`/`env::args`/`var_os` outside binary targets.
    EnvRead,
    /// A float `sum`/`fold` over an unordered projection
    /// (`values()`/`keys()` of a hash map): accumulation order varies.
    FloatReduce,
}

impl SourceKind {
    /// Stable id used in diagnostics and the JSON report.
    pub fn id(self) -> &'static str {
        match self {
            SourceKind::UnorderedIter => "unordered-iteration",
            SourceKind::WallClock => "wall-clock",
            SourceKind::AdHocRng => "ad-hoc-rng",
            SourceKind::ThreadIdentity => "thread-identity",
            SourceKind::EnvRead => "env-read",
            SourceKind::FloatReduce => "float-reduction",
        }
    }

    /// Whether this source kind is live in the given file. Mirrors the
    /// token-rule class gating: the timing and bench crates read wall
    /// clocks by design, binaries parse `env::args`, and the dedicated
    /// obs self-profiler is carved out file-by-file in the scanner.
    fn applies(self, ctx: &FileContext) -> bool {
        let class = CrateClass::of(&ctx.crate_name);
        match self {
            SourceKind::UnorderedIter | SourceKind::AdHocRng | SourceKind::FloatReduce => {
                class != CrateClass::Tool
            }
            SourceKind::WallClock | SourceKind::ThreadIdentity => {
                matches!(class, CrateClass::Deterministic | CrateClass::Obs)
                    && ctx.path != "crates/obs/src/profile.rs"
            }
            SourceKind::EnvRead => {
                matches!(class, CrateClass::Deterministic | CrateClass::Obs) && !ctx.is_binary
            }
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One detected source site.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Node index of the containing fn.
    pub fn_id: usize,
    /// 1-based line of the source token.
    pub line: usize,
    /// Kind of nondeterminism.
    pub kind: SourceKind,
    /// The matched token, for the diagnostic.
    pub token: &'static str,
}

/// One source→sink path through the call graph.
#[derive(Debug, Clone)]
pub struct TaintPath {
    /// The source site.
    pub source: TaintSource,
    /// Node index of the sink fn.
    pub sink: usize,
    /// Edge indices from source fn to sink fn, in call order.
    pub hops: Vec<usize>,
    /// True if any hop came from ambiguous method resolution.
    pub ambiguous: bool,
}

/// Tokens per source kind.
fn detect_sources(code: &str) -> Vec<(SourceKind, &'static str)> {
    const TOKENS: &[(SourceKind, &[&str])] = &[
        (SourceKind::UnorderedIter, &["HashMap", "HashSet"]),
        (
            SourceKind::WallClock,
            &["Instant::now", "SystemTime", "UNIX_EPOCH"],
        ),
        (
            SourceKind::AdHocRng,
            &["thread_rng", "from_entropy", "rand::random", "OsRng"],
        ),
        (
            SourceKind::ThreadIdentity,
            &["thread::current", "ThreadId", "available_parallelism"],
        ),
        (
            SourceKind::EnvRead,
            &["env::var", "env::vars", "env::args", "var_os"],
        ),
    ];
    let mut out = Vec::new();
    for &(kind, tokens) in TOKENS {
        for &tok in tokens {
            if token_at(code, tok) {
                out.push((kind, tok));
                break;
            }
        }
    }
    // Float reduction over an unordered projection: both halves must sit
    // on the line (rustfmt keeps short iterator chains on one line; a
    // split chain still registers via the `HashMap` type token upstream).
    let unordered_proj = ["values()", "keys()", "into_values()", "into_keys()"]
        .iter()
        .any(|t| code.contains(t));
    let reduces = [".sum(", ".sum::<", ".fold(", ".product("]
        .iter()
        .any(|t| code.contains(t));
    if unordered_proj && reduces {
        out.push((SourceKind::FloatReduce, "values()/keys() reduction"));
    }
    out
}

/// Finds every live source site in the workspace. Test regions are
/// exempt: a test that hashes a `HashMap` is asserting behavior, and the
/// determinism gate re-checks the real pipeline dynamically.
pub fn find_sources(units: &[FileUnit], graph: &CallGraph) -> Vec<TaintSource> {
    let mut out = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let unit = &units[node.file];
        for lineno in node.body.0..=node.body.1.min(unit.lines.len()) {
            let line = &unit.lines[lineno - 1];
            if line.in_test {
                continue;
            }
            for (kind, token) in detect_sources(&line.code) {
                if kind.applies(&unit.ctx) {
                    out.push(TaintSource {
                        fn_id: id,
                        line: lineno,
                        kind,
                        token,
                    });
                }
            }
        }
    }
    out
}

/// Classifies a fn node as a fingerprint sink.
pub fn sink_label(node: &FnNode) -> Option<&'static str> {
    match node.impl_type.as_deref() {
        Some("Fnv1a") if node.name.starts_with("write") => Some("Fnv1a hash input"),
        Some("Journal") if node.name.starts_with("record") => Some("journal fingerprint"),
        Some("SpanRecorder") if matches!(node.name.as_str(), "open" | "attr" | "close") => {
            Some("span fingerprint")
        }
        Some("MetricsRegistry") if matches!(node.name.as_str(), "inc" | "set" | "observe") => {
            Some("metrics fingerprint")
        }
        // Health-plane fingerprints join the determinism gate (DESIGN
        // §17): the rollup tree, quantile sketch, SLO engine and ring
        // series each fold their full state.
        Some("QuantileSketch" | "RollupTree" | "SloEngine" | "RingSeries")
            if node.name == "fingerprint" =>
        {
            Some("health fingerprint")
        }
        _ if node.name == "fingerprint" || node.name == "digest_of" => Some("gate fingerprint"),
        _ => None,
    }
}

/// All sink node indices, in id order.
pub fn find_sinks(graph: &CallGraph) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| sink_label(n).is_some())
        .map(|(i, _)| i)
        .collect()
}

/// Multi-source BFS from the sinks over reversed edges. Returns, per
/// node, the first edge of a shortest path toward a sink (deterministic:
/// sinks seeded in id order, edges relaxed in id order).
fn route_to_sinks(graph: &CallGraph, sinks: &[usize]) -> Vec<Option<usize>> {
    let mut next_edge: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut seen = vec![false; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &s in sinks {
        seen[s] = true;
        queue.push_back(s);
    }
    while let Some(n) = queue.pop_front() {
        for &ei in &graph.incoming[n] {
            let e = graph.edges[ei];
            if !seen[e.caller] {
                seen[e.caller] = true;
                next_edge[e.caller] = Some(ei);
                queue.push_back(e.caller);
            }
        }
    }
    next_edge
}

/// Computes every source→sink taint path. A source fn that is itself a
/// sink (e.g. a `fingerprint()` that iterates a hash map) yields a
/// zero-hop path.
pub fn taint_paths(units: &[FileUnit], graph: &CallGraph) -> Vec<TaintPath> {
    let sinks = find_sinks(graph);
    let is_sink = {
        let mut v = vec![false; graph.nodes.len()];
        for &s in &sinks {
            v[s] = true;
        }
        v
    };
    let next_edge = route_to_sinks(graph, &sinks);
    let mut out = Vec::new();
    for source in find_sources(units, graph) {
        let reachable = is_sink[source.fn_id] || next_edge[source.fn_id].is_some();
        if !reachable {
            continue;
        }
        let mut hops = Vec::new();
        let mut ambiguous = false;
        let mut at = source.fn_id;
        while !is_sink[at] {
            let Some(ei) = next_edge[at] else {
                break;
            };
            let e = graph.edges[ei];
            hops.push(ei);
            ambiguous |= e.ambiguous;
            at = e.callee;
        }
        out.push(TaintPath {
            source,
            sink: at,
            hops,
            ambiguous,
        });
    }
    out
}

/// One fan-out-discipline violation: a sink written from inside a
/// parallel closure.
#[derive(Debug, Clone)]
pub struct ShardFinding {
    /// Node index of the fn containing the fan-out.
    pub caller: usize,
    /// 1-based line of the offending sink call.
    pub line: usize,
    /// Node index of the sink being called.
    pub callee: usize,
    /// 1-based line where the fan-out call opens.
    pub fanout_line: usize,
    /// The fan-out API that owns the closure.
    pub fanout: &'static str,
}

/// Pool fan-out entry points whose closure arguments run on workers.
const FANOUT_TOKENS: &[&str] = &[
    "for_each_mut(",
    "par_for_each_mut(",
    "map_reduce(",
    "par_map_reduce(",
    "sum_f64(",
    "par_sum_f64(",
    "par_map(",
    "pool.map(",
];

/// Finds the line where the paren group opening at (`start_line`,
/// `start_col` = index of `(`) closes, scanning blanked code lines.
fn paren_close_line(unit: &FileUnit, start_line: usize, start_col: usize) -> usize {
    let mut depth = 0i32;
    let mut first = true;
    for lineno in start_line..=unit.lines.len() {
        let code = &unit.lines[lineno - 1].code;
        let skip = if first { start_col } else { 0 };
        first = false;
        for c in code.chars().skip(skip) {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return lineno;
                    }
                }
                _ => {}
            }
        }
    }
    unit.lines.len()
}

/// Checks the serial-post-join discipline: no direct sink call inside a
/// fan-out closure. Indirect writes (a callee that itself records) are
/// left to the width-invariance tests — flagging them statically would
/// outlaw the legitimate pattern of sub-managers journaling into their
/// own per-shard buffers that are merged serially afterwards.
pub fn shard_join_findings(units: &[FileUnit], graph: &CallGraph) -> Vec<ShardFinding> {
    let mut out = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let unit = &units[node.file];
        if CrateClass::of(&unit.ctx.crate_name) == CrateClass::Tool {
            continue;
        }
        // Fan-out regions in this fn.
        let mut regions: Vec<(usize, usize, &'static str)> = Vec::new();
        for lineno in node.body.0..=node.body.1.min(unit.lines.len()) {
            let code = &unit.lines[lineno - 1].code;
            for &tok in FANOUT_TOKENS {
                let Some(pos) = code.find(tok) else { continue };
                let open_col = pos + tok.len() - 1;
                let end = paren_close_line(unit, lineno, open_col);
                regions.push((lineno, end, tok.trim_end_matches('(')));
            }
        }
        if regions.is_empty() {
            continue;
        }
        for &ei in &graph.out[id] {
            let e = graph.edges[ei];
            if sink_label(&graph.nodes[e.callee]).is_none() {
                continue;
            }
            if let Some(&(start, _end, tok)) = regions
                .iter()
                .find(|&&(start, end, _)| e.line >= start && e.line <= end)
            {
                out.push(ShardFinding {
                    caller: id,
                    line: e.line,
                    callee: e.callee,
                    fanout_line: start,
                    fanout: tok,
                });
            }
        }
    }
    out.sort_by_key(|f| (f.caller, f.line, f.callee));
    out.dedup_by_key(|f| (f.caller, f.line, f.callee));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(p, s)| FileUnit::new(FileContext::for_path(p), s))
            .collect()
    }

    #[test]
    fn direct_source_to_sink_in_one_fn() {
        let u = units(&[(
            "crates/core/src/x.rs",
            "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
}
pub fn leak(j: &mut Journal) {
    let t = SystemTime::now();
    j.record();
}
",
        )]);
        let g = graph::build(&u);
        let paths = taint_paths(&u, &g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].source.kind, SourceKind::WallClock);
        assert_eq!(paths[0].source.line, 6);
        assert_eq!(g.nodes[paths[0].sink].fq(), "core::x::Journal::record");
        assert_eq!(paths[0].hops.len(), 1);
    }

    #[test]
    fn chain_through_two_crates() {
        let u = units(&[
            (
                "crates/simkit/src/journal.rs",
                "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
}
",
            ),
            (
                "crates/cluster/src/sim.rs",
                "\
use ppc_simkit::Journal;
pub fn tick(j: &mut Journal) {
    observe(j);
}
fn observe(j: &mut Journal) {
    j.record();
}
",
            ),
            (
                "crates/core/src/sample.rs",
                "\
use std::collections::HashMap;
pub fn sample(m: &HashMap<u32, f64>) -> f64 {
    m.len() as f64
}
",
            ),
        ]);
        let g = graph::build(&u);
        // `sample` holds a source but reaches no sink: no path.
        let paths = taint_paths(&u, &g);
        assert!(
            paths.is_empty(),
            "source without sink reachability must not fire: {paths:?}"
        );

        // Now give core::sample a route into the cluster tick.
        let mut u2 = u.clone();
        u2[2] = FileUnit::new(
            FileContext::for_path("crates/core/src/sample.rs"),
            "\
use std::collections::HashMap;
use ppc_cluster::sim::tick;
pub fn sample(m: &HashMap<u32, f64>, j: &mut ppc_simkit::Journal) {
    tick(j);
}
",
        );
        let g2 = graph::build(&u2);
        let paths = taint_paths(&u2, &g2);
        assert_eq!(paths.len(), 1, "HashMap token on the signature line");
        let p = &paths[0];
        assert_eq!(p.source.kind, SourceKind::UnorderedIter);
        // source fn → tick → observe → record: three hops.
        assert_eq!(p.hops.len(), 3);
        assert_eq!(g2.nodes[p.sink].fq(), "simkit::journal::Journal::record");
    }

    #[test]
    fn class_gating_exempts_timing_bench_and_binaries() {
        let u = units(&[
            (
                "crates/telemetry/src/cost.rs",
                "pub fn measure() -> u64 {\n    let t = Instant::now();\n    fingerprint()\n}\npub fn fingerprint() -> u64 {\n    0\n}\n",
            ),
            (
                "crates/bench/src/bin/gate.rs",
                "fn main() {\n    let args = std::env::args();\n    let t = Instant::now();\n}\n",
            ),
        ]);
        let g = graph::build(&u);
        assert!(taint_paths(&u, &g).is_empty());
    }

    #[test]
    fn thread_identity_and_float_reduce_detect() {
        let hits = detect_sources("let w = std::thread::available_parallelism();");
        assert!(hits.iter().any(|(k, _)| *k == SourceKind::ThreadIdentity));
        let hits = detect_sources("let total: f64 = map.values().sum();");
        assert!(hits.iter().any(|(k, _)| *k == SourceKind::FloatReduce));
        let hits = detect_sources("let v = series.values().to_vec();");
        assert!(hits.is_empty(), "projection without reduction is clean");
    }

    #[test]
    fn health_plane_fingerprints_are_labeled_sinks() {
        let u = units(&[(
            "crates/obs/src/sketch.rs",
            "\
pub struct QuantileSketch;
impl QuantileSketch {
    pub fn fingerprint(&self) -> u64 { 0 }
}
pub struct SloEngine;
impl SloEngine {
    pub fn fingerprint(&self) -> u64 { 0 }
}
pub fn leak(s: &QuantileSketch) -> u64 {
    let t = SystemTime::now();
    s.fingerprint()
}
",
        )]);
        let g = graph::build(&u);
        let labels: Vec<_> = find_sinks(&g)
            .into_iter()
            .filter_map(|i| sink_label(&g.nodes[i]))
            .collect();
        assert!(
            labels
                .iter()
                .filter(|&&l| l == "health fingerprint")
                .count()
                >= 2,
            "sketch and slo fingerprints must classify as health sinks: {labels:?}"
        );
        // And a wall-clock source reaching one is a reportable path.
        let paths = taint_paths(&u, &g);
        assert_eq!(paths.len(), 1, "{paths:?}");
        assert_eq!(paths[0].source.kind, SourceKind::WallClock);
    }

    #[test]
    fn shard_join_order_flags_sink_in_closure_only() {
        let u = units(&[(
            "crates/cluster/src/shard.rs",
            "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
}
pub struct Pool;
impl Pool {
    pub fn for_each_mut(&self, _items: &mut [u32]) {}
}
pub fn bad(pool: &Pool, items: &mut [u32], j: &mut Journal) {
    pool.for_each_mut(items, |_i, _x| {
        j.record();
    });
}
pub fn good(pool: &Pool, items: &mut [u32], j: &mut Journal) {
    pool.for_each_mut(items, |_i, _x| {
        work();
    });
    j.record();
}
fn work() {}
",
        )]);
        let g = graph::build(&u);
        let findings = shard_join_findings(&u, &g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(g.nodes[findings[0].caller].name, "bad");
        assert_eq!(findings[0].fanout, "for_each_mut");
        assert_eq!(g.nodes[findings[0].callee].name, "record");
    }
}
