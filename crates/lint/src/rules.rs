//! Rule and crate-class definitions.
//!
//! Which rules apply where is a function of the *crate class*: the
//! simulation crates must be bit-deterministic end to end, the telemetry
//! and bench crates legitimately read wall clocks (management-cost
//! measurement, benchmark timing), and the lint tool itself only has to
//! be panic- and print-clean. Unknown crates default to the strictest
//! class so a future crate is covered before anyone thinks about it.

use std::fmt;

/// How a crate is treated by the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Part of the deterministic simulation stack: every rule applies.
    Deterministic,
    /// In the sim loop but allowlisted for wall-clock timing
    /// (management-cost measurement).
    Timing,
    /// Experiment drivers and benchmarks: prints results, times runs, and
    /// may panic on malformed CLI input; only determinism rules apply.
    Bench,
    /// Observability: the span recorder, metrics registry, exporters and
    /// the fleet health plane (`rollup`, `sketch`, `slo`, `timeseries`,
    /// `hub`) feed determinism fingerprints, so every rule applies —
    /// except that the dedicated self-profiling module
    /// (`crates/obs/src/profile.rs`) may read wall clocks; that one-file
    /// carve-out lives in the scanner.
    Obs,
    /// Host-side tooling (this linter): panic/print hygiene only.
    Tool,
}

impl CrateClass {
    /// Classifies a crate by its directory name under `crates/` (the root
    /// `ppc` facade classifies as deterministic).
    pub fn of(crate_name: &str) -> CrateClass {
        match crate_name {
            "telemetry" => CrateClass::Timing,
            "bench" => CrateClass::Bench,
            "obs" => CrateClass::Obs,
            "lint" => CrateClass::Tool,
            // core, cluster, simkit, faults, node, workload, metrics,
            // whatif, ppc — and any crate added later — get the strict
            // treatment. `whatif` in particular must stay deterministic:
            // its branched projections feed CI's branch-and-replay gate,
            // and latency timing belongs to `bench` (whatif_serve). The
            // hierarchical control plane (`core`'s topology, budget
            // delegation and hierarchy modules; `cluster`'s sharded
            // evaluation) is likewise strict: budget splits and rollups
            // feed every determinism fingerprint.
            _ => CrateClass::Deterministic,
        }
    }
}

/// One lint rule. See DESIGN.md §11 for the full rationale table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in deterministic crates: iteration order varies
    /// run to run (and with `RandomState`, process to process), which
    /// silently breaks bit-identical replay. Use `BTreeMap`/`BTreeSet` or
    /// dense `Vec` indexing. Applies to test code too — a test that
    /// iterates an unordered map can flake.
    UnorderedCollections,
    /// `Instant::now`/`SystemTime`/`UNIX_EPOCH` in deterministic crates:
    /// simulation time is `SimTime`; wall-clock reads make results depend
    /// on host load. `telemetry` (management-cost measurement) and `bench`
    /// (run timing) are allowlisted via their crate class.
    WallClock,
    /// `thread_rng`/`from_entropy`/`rand::random`: all randomness must
    /// flow from the experiment seed through `RngFactory` so runs replay.
    AdHocRng,
    /// `.unwrap()`/`.expect(...)`/`panic!`/`todo!`/`unimplemented!`/
    /// `unreachable!` in library code: a panic in the control loop takes
    /// down the manager
    /// mid-experiment. Return typed errors, or document the invariant with
    /// an `allow` justification. Test code is exempt.
    PanicPath,
    /// `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code:
    /// output must route through the journal/telemetry so experiments stay
    /// machine-readable. Binary targets (`main.rs`, `src/bin/*`) are
    /// exempt.
    Stdout,
    /// `==`/`!=` against a float literal in the power-model and budget
    /// crates (`core`, `node`): exact float equality on computed watts is
    /// almost always a tolerance bug. Compare with an epsilon or on
    /// `to_bits()` when bit-identity is the point. Test code is exempt
    /// (bit-exactness assertions are deliberate there).
    FloatEq,
    /// An `// ppc-lint: allow(rule)` directive with no justification after
    /// the closing parenthesis, or naming an unknown rule. Suppressions
    /// must say why.
    BareAllow,
    /// Call-graph pass: a nondeterministic source (unordered-map
    /// iteration, wall-clock, thread/machine identity, env read, float
    /// reduction over unordered iteration) can reach a fingerprint sink
    /// (`Fnv1a::write*`, `Journal::record*`, `SpanRecorder`,
    /// `MetricsRegistry`, any `fingerprint()`) through some call chain.
    /// The diagnostic carries the full chain; suppress on the *source*
    /// line with `allow(fingerprint-taint): <invariant>`.
    FingerprintTaint,
    /// Call-graph pass: a fingerprint sink written directly from inside a
    /// closure handed to a `WorkerPool` fan-out (`for_each_mut`, `map`,
    /// `map_reduce`, `sum_f64`, `par_*`). Worker interleaving is
    /// nondeterministic, so all journal/span/metrics bookkeeping must run
    /// in the serial post-join pass, in index order.
    ShardJoinOrder,
    /// Workspace pass: a justified `allow(...)` that no longer suppresses
    /// anything. The finding it silenced is gone, so the directive — and
    /// the invariant it claims — is stale. Delete it, or fix the code it
    /// was meant to cover.
    UnusedSuppression,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 10] = [
        Rule::UnorderedCollections,
        Rule::WallClock,
        Rule::AdHocRng,
        Rule::PanicPath,
        Rule::Stdout,
        Rule::FloatEq,
        Rule::BareAllow,
        Rule::FingerprintTaint,
        Rule::ShardJoinOrder,
        Rule::UnusedSuppression,
    ];

    /// Stable kebab-case id used in diagnostics and `allow(...)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "unordered-collections",
            Rule::WallClock => "wall-clock",
            Rule::AdHocRng => "ad-hoc-rng",
            Rule::PanicPath => "panic-path",
            Rule::Stdout => "stdout",
            Rule::FloatEq => "float-eq",
            Rule::BareAllow => "bare-allow",
            Rule::FingerprintTaint => "fingerprint-taint",
            Rule::ShardJoinOrder => "shard-join-order",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parses an id as written inside `allow(...)`.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// One-line description for `--list-rules` and reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => {
                "HashMap/HashSet in deterministic crates (iteration order is unstable)"
            }
            Rule::WallClock => "Instant::now/SystemTime in deterministic crates (use SimTime)",
            Rule::AdHocRng => "thread_rng/from_entropy/rand::random (all RNG must be seeded)",
            Rule::PanicPath => "unwrap/expect/panic! in library code (return typed errors)",
            Rule::Stdout => "println!/dbg! in library code (route through the journal)",
            Rule::FloatEq => "float-literal ==/!= in power/budget arithmetic (use a tolerance)",
            Rule::BareAllow => "ppc-lint allow directive without a justification",
            Rule::FingerprintTaint => {
                "nondeterministic source reaches a fingerprint sink via the call graph"
            }
            Rule::ShardJoinOrder => {
                "fingerprint sink written inside a pool fan-out closure (join serially, in index order)"
            }
            Rule::UnusedSuppression => "allow directive whose rule no longer fires (stale suppression)",
        }
    }

    /// Whether the rule applies to code inside `#[cfg(test)]`/`#[test]`
    /// regions. Determinism rules do (flaky tests are still flaky);
    /// panic/print/float hygiene does not (tests assert and panic on
    /// purpose).
    pub fn applies_in_tests(self) -> bool {
        matches!(
            self,
            Rule::UnorderedCollections
                | Rule::WallClock
                | Rule::AdHocRng
                | Rule::BareAllow
                | Rule::UnusedSuppression
        )
    }

    /// Whether the rule applies to a crate of the given class.
    pub fn applies_to(self, class: CrateClass) -> bool {
        match self {
            Rule::UnorderedCollections | Rule::AdHocRng => class != CrateClass::Tool,
            // `Obs` output joins the fingerprints, so it is held to the
            // deterministic standard; its profile.rs carve-out is
            // file-scoped in scan.rs, not class-wide.
            Rule::WallClock => matches!(class, CrateClass::Deterministic | CrateClass::Obs),
            Rule::PanicPath => !matches!(class, CrateClass::Bench),
            Rule::Stdout => !matches!(class, CrateClass::Bench),
            // Scoped further to the power-model/budget crates in scan.rs.
            Rule::FloatEq => class == CrateClass::Deterministic,
            Rule::BareAllow => true,
            // Source kinds carry their own finer class gating in
            // `taint::SourceKind::applies`; the class-level statement is
            // just "the tool does not analyze itself".
            Rule::FingerprintTaint | Rule::ShardJoinOrder => class != CrateClass::Tool,
            Rule::UnusedSuppression => true,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}
