//! `ppc-lint` — repo-specific determinism & safety static analysis.
//!
//! The whole value of this reproduction rests on bit-identical
//! deterministic simulation: the worker pool is width-invariant, fault
//! schedules replay from a seed, and CI compares journal hashes across
//! runs. Nothing in the compiler prevents a future change from quietly
//! reintroducing nondeterminism (unordered `HashMap` iteration, wall-clock
//! reads, ad-hoc RNG) or panic paths into the control loop — so this crate
//! does, with a hand-rolled line scanner over the workspace source (the
//! build environment has no registry access, so no syn/proc-macro
//! machinery: a small lexer strips comments and string literals, tracks
//! `#[cfg(test)]` regions by brace depth, and matches rule tokens against
//! the remaining code).
//!
//! v2 grew the scanner into a multi-pass analyzer: [`items`] recovers the
//! module tree and fn/impl items from the lexed lines, [`graph`] resolves
//! intra-workspace call edges into a workspace call graph, and [`taint`]
//! walks it to find paths from nondeterminism sources (unordered-map
//! iteration, wall clocks, thread identity, env reads, unordered float
//! reduction) to fingerprint sinks (`Fnv1a::write*`, `Journal::record*`,
//! `SpanRecorder`, `MetricsRegistry`). See DESIGN.md §16.
//!
//! Rules are documented in [`rules::Rule`] and DESIGN.md §11/§16. Every
//! rule has an inline escape hatch:
//!
//! ```text
//! // ppc-lint: allow(panic-path): lock poisoning is unrecoverable here
//! ```
//!
//! placed either on the offending line (trailing comment) or on the line
//! directly above. The justification after the closing parenthesis is
//! mandatory — a bare `allow` is itself a violation (`bare-allow`), so
//! every suppression in the tree documents *why* the invariant does not
//! apply.
//!
//! Run it as `cargo run -p ppc-lint -- --workspace` (add `--json` to also
//! write `LINT_report.json` for trend tracking, like `BENCH_ppc.json`).

pub mod graph;
pub mod items;
pub mod report;
pub mod rules;
pub mod scan;
pub mod source;
pub mod taint;

pub use graph::{CallEdge, CallGraph, FileUnit, FnNode};
pub use report::Report;
pub use rules::{CrateClass, Rule};
pub use scan::{
    scan_source, scan_units, scan_workspace, Diagnostic, FileContext, FileScan, GraphStats,
    TaintPathReport, WorkspaceScan,
};
pub use taint::SourceKind;
