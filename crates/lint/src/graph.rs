//! Workspace call graph with per-edge provenance.
//!
//! Nodes are the `fn` items recovered by [`crate::items`]; edges are
//! name-resolved intra-workspace calls. Resolution is deliberately an
//! over-approximation: a method call that matches several `impl` blocks
//! produces an edge to *every* candidate (marked `ambiguous`), because the
//! taint pass built on this graph is a safety analysis — a spurious edge
//! costs a justification comment, a missing edge hides a real
//! nondeterminism leak. Calls that resolve to nothing in the workspace
//! (std, vendored deps) produce no edge at all.

use crate::items::{self, FileItems};
use crate::scan::FileContext;
use crate::source::{self, Line};
use std::collections::{BTreeMap, BTreeSet};

/// One file prepared for whole-workspace analysis.
#[derive(Debug, Clone)]
pub struct FileUnit {
    /// Where the file sits (path, crate, binary-ness).
    pub ctx: FileContext,
    /// Lexed lines (comments stripped, strings blanked).
    pub lines: Vec<Line>,
    /// Parsed items.
    pub items: FileItems,
}

impl FileUnit {
    /// Lexes and parses one file's source under the given context.
    pub fn new(ctx: FileContext, text: &str) -> FileUnit {
        let lines = source::analyze(text);
        let items = items::parse(&lines);
        FileUnit { ctx, lines, items }
    }
}

/// One function node in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning [`FileUnit`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Owning `impl`/`trait` type, if a method.
    pub impl_type: Option<String>,
    /// Module chain rooted at the crate name (e.g. `["core", "policy"]`).
    pub module: Vec<String>,
    /// 1-based signature line.
    pub sig_line: usize,
    /// 1-based body range (opening to closing brace).
    pub body: (usize, usize),
    /// True for fns inside `#[cfg(test)]`/`#[test]` regions.
    pub in_test: bool,
}

impl FnNode {
    /// Fully qualified display name: `core::policy::Greedy::select`.
    pub fn fq(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(t) = &self.impl_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling fn (node index).
    pub caller: usize,
    /// Called fn (node index).
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// True when name resolution matched more than one candidate.
    pub ambiguous: bool,
}

/// The whole-workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All fns, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// All edges, deduplicated, in deterministic order.
    pub edges: Vec<CallEdge>,
    /// Outgoing edge indices per node.
    pub out: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub incoming: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Count of ambiguous edges (report statistic).
    pub fn ambiguous_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.ambiguous).count()
    }
}

/// Module chain for a file path: `crates/core/src/policy/greedy.rs` →
/// `["core", "policy", "greedy"]`; binary targets collapse onto the crate
/// root so `Type::method` references still resolve.
fn file_module(ctx: &FileContext) -> Vec<String> {
    let mut out = vec![ctx.crate_name.clone()];
    let rel = ctx
        .path
        .strip_prefix(&format!("crates/{}/src/", ctx.crate_name))
        .or_else(|| ctx.path.strip_prefix("src/"))
        .unwrap_or(&ctx.path);
    for seg in rel.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if matches!(seg, "lib" | "main" | "mod" | "bin") || seg.is_empty() {
            continue;
        }
        if ctx.is_binary {
            continue; // bin targets are their own crate root
        }
        out.push(seg.to_string());
    }
    out
}

/// A call site found in one source line.
#[derive(Debug)]
struct CallSite {
    /// Path segments as written (`["Journal", "record"]`).
    path: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    is_method: bool,
    /// True when the method receiver is literally `self`.
    self_recv: bool,
}

const KEYWORDS: &[&str] = &[
    "if", "for", "while", "match", "return", "loop", "fn", "in", "as", "let", "mut", "ref", "move",
    "unsafe", "else", "where", "impl", "dyn", "break", "continue", "use", "pub", "mod", "crate",
    "super", "self", "Self", "static", "const", "type", "enum", "struct", "trait", "await",
];

/// Extracts call sites from one blanked code line.
fn calls_in_line(code: &str) -> Vec<CallSite> {
    let b: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut prev_word = String::new();
    while i < b.len() {
        let c = b[i];
        if !(c.is_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        let path_start = i;
        let mut path: Vec<String> = Vec::new();
        loop {
            let seg_start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            path.push(b[seg_start..i].iter().collect());
            if i + 1 < b.len() && b[i] == ':' && b[i + 1] == ':' {
                let j = i + 2;
                if b.get(j).is_some_and(|&c| c.is_alphabetic() || c == '_') {
                    i = j;
                    continue;
                }
                if b.get(j) == Some(&'<') {
                    // Turbofish: skip the angle group, then expect `(`.
                    if let Some(after) = skip_angles(&b, j) {
                        i = after;
                    }
                }
            }
            break;
        }
        let name = match path.last() {
            Some(n) => n.clone(),
            None => continue,
        };
        let next = b.get(i).copied();
        if next == Some('!') {
            prev_word = name;
            i += 1;
            continue; // macro invocation
        }
        if next != Some('(') {
            prev_word = name;
            continue;
        }
        let defines = prev_word == "fn";
        prev_word = name.clone();
        if defines
            || KEYWORDS.contains(&name.as_str())
            || name.chars().next().is_some_and(|c| c.is_uppercase())
        {
            continue;
        }
        let is_method = path.len() == 1
            && path_start > 0
            && b[path_start - 1] == '.'
            && (path_start < 2 || b[path_start - 2] != '.');
        let self_recv = is_method && receiver_is_self(&b, path_start - 1);
        out.push(CallSite {
            path,
            is_method,
            self_recv,
        });
    }
    out
}

/// Skips a `<…>` group starting at `open`; returns the index after `>`.
fn skip_angles(b: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            '<' => depth += 1,
            '>' if i > 0 && b[i - 1] == '-' => {}
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// True if the chars before the `.` at `dot` are exactly `self`.
fn receiver_is_self(b: &[char], dot: usize) -> bool {
    let mut end = dot;
    while end > 0 && b[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (b[start - 1].is_alphanumeric() || b[start - 1] == '_') {
        start -= 1;
    }
    let ident: String = b[start..end].iter().collect();
    ident == "self" && (start == 0 || b[start - 1] != '.')
}

/// Normalizes a crate-ish path segment: `ppc_core` → `core`.
fn norm_crate(seg: &str) -> &str {
    seg.strip_prefix("ppc_").unwrap_or(seg)
}

struct Resolver {
    /// (impl type, name) → node ids.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// method name → node ids (any impl type).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// free-fn name → node ids.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// (module chain joined with `::`, name) → node id.
    free_by_module: BTreeMap<(String, String), usize>,
}

impl Resolver {
    fn build(nodes: &[FnNode]) -> Resolver {
        let mut r = Resolver {
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            free_by_module: BTreeMap::new(),
        };
        for (id, n) in nodes.iter().enumerate() {
            match &n.impl_type {
                Some(t) => {
                    r.methods
                        .entry((t.clone(), n.name.clone()))
                        .or_default()
                        .push(id);
                    r.methods_by_name
                        .entry(n.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    r.free_by_name.entry(n.name.clone()).or_default().push(id);
                    r.free_by_module
                        .entry((n.module.join("::"), n.name.clone()))
                        .or_insert(id);
                }
            }
        }
        r
    }

    /// Resolves one call site to `(candidates, ambiguous)`. Test-only fns
    /// are candidates only for test-code callers, so a lib fn can never
    /// grow a spurious edge into a test helper that shares its name.
    fn resolve(
        &self,
        site: &CallSite,
        caller: &FnNode,
        nodes: &[FnNode],
        imports: &BTreeMap<String, Vec<String>>,
    ) -> (Vec<usize>, bool) {
        let filter = |ids: &[usize]| -> Vec<usize> {
            ids.iter()
                .copied()
                .filter(|&id| caller.in_test || !nodes[id].in_test)
                .collect()
        };
        let name = match site.path.last() {
            Some(n) => n.as_str(),
            None => return (Vec::new(), false),
        };
        if site.is_method {
            if site.self_recv {
                if let Some(t) = &caller.impl_type {
                    if let Some(ids) = self.methods.get(&(t.clone(), name.to_string())) {
                        let ids = filter(ids);
                        if !ids.is_empty() {
                            let amb = ids.len() > 1;
                            return (ids, amb);
                        }
                    }
                }
            }
            // Unknown receiver type: every same-named workspace method is
            // a candidate, and even a single match is a guess (the real
            // receiver may be a std or vendored type), so the edge is
            // always marked ambiguous.
            let ids = self
                .methods_by_name
                .get(name)
                .map(|v| filter(v))
                .unwrap_or_default();
            let amb = !ids.is_empty();
            return (ids, amb);
        }
        if site.path.len() >= 2 {
            let qual = site.path[site.path.len() - 2].as_str();
            let qual = if qual == "Self" {
                match &caller.impl_type {
                    Some(t) => t.as_str(),
                    None => qual,
                }
            } else {
                qual
            };
            if let Some(ids) = self.methods.get(&(qual.to_string(), name.to_string())) {
                let ids = filter(ids);
                if !ids.is_empty() {
                    let amb = ids.len() > 1;
                    return (ids, amb);
                }
            }
            // Module-qualified free fn: match the immediate parent module
            // (or crate) against each candidate's chain.
            let want = norm_crate(qual);
            let ids: Vec<usize> = self
                .free_by_name
                .get(name)
                .map(|v| filter(v))
                .unwrap_or_default()
                .into_iter()
                .filter(|&id| {
                    let n = &nodes[id];
                    want == "crate" && n.module.first() == caller.module.first()
                        || n.module.iter().any(|m| m == want)
                })
                .collect();
            let amb = ids.len() > 1;
            return (ids, amb);
        }
        // Bare call: same module first.
        if let Some(&id) = self
            .free_by_module
            .get(&(caller.module.join("::"), name.to_string()))
        {
            if caller.in_test || !nodes[id].in_test {
                return (vec![id], false);
            }
        }
        // Imported name.
        if let Some(path) = imports.get(name) {
            if let Some(first) = path.first() {
                let krate = norm_crate(first);
                let ids: Vec<usize> = self
                    .free_by_name
                    .get(name)
                    .map(|v| filter(v))
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&id| nodes[id].module.first().is_some_and(|c| c == krate))
                    .collect();
                if ids.len() == 1 {
                    return (ids, false);
                }
            }
        }
        // Same-crate free fns, then a unique workspace-wide match.
        let same_crate: Vec<usize> = self
            .free_by_name
            .get(name)
            .map(|v| filter(v))
            .unwrap_or_default()
            .into_iter()
            .filter(|&id| nodes[id].module.first() == caller.module.first())
            .collect();
        match same_crate.len() {
            1 => return (same_crate, false),
            n if n > 1 => return (same_crate, true),
            _ => {}
        }
        let anywhere = self
            .free_by_name
            .get(name)
            .map(|v| filter(v))
            .unwrap_or_default();
        if anywhere.len() == 1 {
            return (anywhere, false);
        }
        (Vec::new(), false)
    }
}

/// Builds the call graph over the given files.
pub fn build(units: &[FileUnit]) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    // (file, line) → owning fn, innermost item winning.
    let mut line_owner: Vec<Vec<Option<usize>>> = Vec::with_capacity(units.len());
    for (fi, unit) in units.iter().enumerate() {
        let base = file_module(&unit.ctx);
        let mut owners = vec![None; unit.lines.len() + 1];
        for item in &unit.items.fns {
            let mut module = base.clone();
            module.extend(item.module.iter().cloned());
            let id = nodes.len();
            nodes.push(FnNode {
                file: fi,
                name: item.name.clone(),
                impl_type: item.impl_type.clone(),
                module,
                sig_line: item.sig_line,
                body: (item.open_line, item.close_line),
                in_test: item.in_test,
            });
            let last = item.close_line.min(unit.lines.len());
            for owner in &mut owners[item.open_line..=last] {
                *owner = Some(id);
            }
        }
        line_owner.push(owners);
    }

    let resolver = Resolver::build(&nodes);
    let mut edge_set: BTreeSet<(usize, usize, usize, bool)> = BTreeSet::new();
    for (fi, unit) in units.iter().enumerate() {
        let imports: BTreeMap<String, Vec<String>> = unit
            .items
            .imports
            .iter()
            .map(|im| (im.alias.clone(), im.path.clone()))
            .collect();
        for (idx, line) in unit.lines.iter().enumerate() {
            let lineno = idx + 1;
            let Some(caller) = line_owner[fi][lineno] else {
                continue;
            };
            for site in calls_in_line(&line.code) {
                let (ids, amb) = resolver.resolve(&site, &nodes[caller], &nodes, &imports);
                for callee in ids {
                    edge_set.insert((caller, callee, lineno, amb));
                }
            }
        }
    }

    let edges: Vec<CallEdge> = edge_set
        .into_iter()
        .map(|(caller, callee, line, ambiguous)| CallEdge {
            caller,
            callee,
            line,
            ambiguous,
        })
        .collect();
    let mut out = vec![Vec::new(); nodes.len()];
    let mut incoming = vec![Vec::new(); nodes.len()];
    for (ei, e) in edges.iter().enumerate() {
        out[e.caller].push(ei);
        incoming[e.callee].push(ei);
    }
    CallGraph {
        nodes,
        edges,
        out,
        incoming,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit::new(FileContext::for_path(path), src)
    }

    fn find(g: &CallGraph, fq: &str) -> usize {
        match g.nodes.iter().position(|n| n.fq() == fq) {
            Some(i) => i,
            None => {
                let all: Vec<String> = g.nodes.iter().map(|n| n.fq()).collect();
                panic!("no node {fq}; have {all:?}")
            }
        }
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let (f, t) = (find(g, from), find(g, to));
        g.edges.iter().any(|e| e.caller == f && e.callee == t)
    }

    #[test]
    fn resolves_same_module_and_method_calls() {
        let g = build(&[unit(
            "crates/core/src/budget.rs",
            "\
pub fn split(total: f64) -> f64 {
    clamp(total)
}
fn clamp(x: f64) -> f64 {
    x
}
pub struct Budget;
impl Budget {
    pub fn apply(&mut self) {
        self.draw();
    }
    fn draw(&mut self) {}
}
",
        )]);
        assert!(has_edge(&g, "core::budget::split", "core::budget::clamp"));
        assert!(has_edge(
            &g,
            "core::budget::Budget::apply",
            "core::budget::Budget::draw"
        ));
        assert_eq!(g.ambiguous_edges(), 0);
    }

    #[test]
    fn resolves_cross_module_and_cross_crate_calls() {
        let g = build(&[
            unit(
                "crates/simkit/src/journal.rs",
                "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
}
",
            ),
            unit(
                "crates/cluster/src/sim.rs",
                "\
use ppc_simkit::Journal;
pub fn step(j: &mut Journal) {
    j.record();
    helper::observe();
}
pub mod helper {
    pub fn observe() {}
}
",
            ),
        ]);
        assert!(has_edge(
            &g,
            "cluster::sim::step",
            "simkit::journal::Journal::record"
        ));
        assert!(has_edge(
            &g,
            "cluster::sim::step",
            "cluster::sim::helper::observe"
        ));
    }

    #[test]
    fn method_ambiguity_produces_marked_edges_to_all_candidates() {
        let g = build(&[unit(
            "crates/simkit/src/two.rs",
            "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
}
pub struct Stats;
impl Stats {
    pub fn record(&mut self) {}
}
pub fn touch(s: &mut Stats) {
    s.record();
}
",
        )]);
        let touch = find(&g, "simkit::two::touch");
        let targets: Vec<&str> = g
            .edges
            .iter()
            .filter(|e| e.caller == touch)
            .map(|e| g.nodes[e.callee].name.as_str())
            .collect();
        assert_eq!(targets.len(), 2, "both record() impls are candidates");
        assert!(g
            .edges
            .iter()
            .filter(|e| e.caller == touch)
            .all(|e| e.ambiguous));
    }

    #[test]
    fn self_receiver_disambiguates() {
        let g = build(&[unit(
            "crates/simkit/src/two.rs",
            "\
pub struct Journal;
impl Journal {
    pub fn record(&mut self) {}
    pub fn record_with(&mut self) {
        self.record();
    }
}
pub struct Stats;
impl Stats {
    pub fn record(&mut self) {}
}
",
        )]);
        let rw = find(&g, "simkit::two::Journal::record_with");
        let edges: Vec<&CallEdge> = g.edges.iter().filter(|e| e.caller == rw).collect();
        assert_eq!(edges.len(), 1, "self.record() resolves to the own impl");
        assert!(!edges[0].ambiguous);
        assert_eq!(
            g.nodes[edges[0].callee].fq(),
            "simkit::two::Journal::record"
        );
    }

    #[test]
    fn recursion_and_qualified_type_calls() {
        let g = build(&[unit(
            "crates/core/src/walk.rs",
            "\
pub fn descend(n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    descend(n - 1)
}
pub struct Fnv1a;
impl Fnv1a {
    pub fn write_u64(&mut self, _v: u64) {}
}
pub fn digest() {
    let mut h = Fnv1a;
    Fnv1a::write_u64(&mut h, 1);
}
",
        )]);
        let d = find(&g, "core::walk::descend");
        assert!(
            g.edges.iter().any(|e| e.caller == d && e.callee == d),
            "self-loop"
        );
        assert!(has_edge(
            &g,
            "core::walk::digest",
            "core::walk::Fnv1a::write_u64"
        ));
    }

    #[test]
    fn lib_fns_never_call_test_helpers() {
        let g = build(&[unit(
            "crates/core/src/x.rs",
            "\
pub fn entry() {
    helper();
}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {
        helper();
    }
}
",
        )]);
        let entry = find(&g, "core::x::entry");
        assert!(
            g.edges.iter().all(|e| e.caller != entry),
            "no lib→test edge"
        );
        let t = find(&g, "core::x::tests::t");
        assert!(
            g.edges.iter().any(|e| e.caller == t),
            "test→test edge stays"
        );
    }

    #[test]
    fn macros_and_ctors_are_not_calls() {
        let g = build(&[unit(
            "crates/core/src/y.rs",
            "\
pub struct NodeId(pub u32);
pub fn make() -> NodeId {
    let v = vec![1, 2];
    assert_ne!(v.len(), 0);
    NodeId(0)
}
",
        )]);
        let m = find(&g, "core::y::make");
        assert!(g.edges.iter().all(|e| e.caller != m));
    }
}
