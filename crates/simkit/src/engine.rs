//! A minimal discrete-event simulation engine.
//!
//! The engine owns an [`EventQueue`] and a clock; user state lives outside
//! and is threaded through the [`EventHandler`] callback. Handlers may
//! schedule further events via the [`ScheduleHandle`] they receive, which is
//! how periodic processes (sampling ticks, control cycles, job arrivals)
//! re-arm themselves.

use crate::error::SimError;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Capability handed to event handlers for scheduling follow-up events.
///
/// It only exposes *future* scheduling relative to the event being handled,
/// which structurally prevents causality violations.
pub struct ScheduleHandle<'q, E> {
    now: SimTime,
    queue: &'q mut EventQueue<E>,
}

impl<'q, E> ScheduleHandle<'q, E> {
    /// The time of the event currently being processed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current event.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at absolute instant `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::ScheduleInPast {
                now_ms: self.now.as_millis(),
                at_ms: at.as_millis(),
            });
        }
        self.queue.push(at, event);
        Ok(())
    }
}

/// What the handler tells the engine after processing one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep processing events.
    Continue,
    /// Stop the run immediately (remaining events stay queued).
    Halt,
}

/// Event-processing callback: `(state, time-ordered event, scheduler)`.
pub trait EventHandler<S, E> {
    /// Handles one event, mutating `state` and optionally scheduling more.
    fn handle(&mut self, state: &mut S, event: E, sched: &mut ScheduleHandle<'_, E>) -> Flow;
}

impl<S, E, F> EventHandler<S, E> for F
where
    F: FnMut(&mut S, E, &mut ScheduleHandle<'_, E>) -> Flow,
{
    fn handle(&mut self, state: &mut S, event: E, sched: &mut ScheduleHandle<'_, E>) -> Flow {
        self(state, event, sched)
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulation time when the run stopped.
    pub ended_at: SimTime,
    /// Number of events processed.
    pub events_processed: u64,
    /// True if the handler requested a halt (vs. queue drained / horizon hit).
    pub halted: bool,
}

/// The discrete-event engine.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    event_budget: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at t=0 with a generous default event budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            event_budget: u64::MAX,
        }
    }

    /// Caps the total number of events a run may process. A runaway
    /// self-scheduling event then surfaces as [`SimError::EventBudgetExhausted`]
    /// instead of an endless loop.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an initial event at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::ScheduleInPast {
                now_ms: self.now.as_millis(),
                at_ms: at.as_millis(),
            });
        }
        self.queue.push(at, event);
        Ok(())
    }

    /// Runs until the queue drains, the handler halts, or `horizon` is
    /// passed (events strictly after `horizon` are left queued).
    pub fn run_until<S, H>(
        &mut self,
        state: &mut S,
        horizon: SimTime,
        handler: &mut H,
    ) -> Result<RunReport, SimError>
    where
        H: EventHandler<S, E>,
    {
        let mut processed = 0u64;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            if processed >= self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    budget: self.event_budget,
                });
            }
            // The peek above guarantees a queued event; an empty pop would
            // be a queue bug — stop cleanly rather than panic mid-run.
            let Some((at, event)) = self.queue.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "event queue returned an out-of-order event");
            self.now = at;
            processed += 1;
            let mut handle = ScheduleHandle {
                now: at,
                queue: &mut self.queue,
            };
            if handler.handle(state, event, &mut handle) == Flow::Halt {
                return Ok(RunReport {
                    ended_at: self.now,
                    events_processed: processed,
                    halted: true,
                });
            }
        }
        // A drained queue leaves `now` at the last processed event; a horizon
        // stop advances the clock to the horizon so callers can resume.
        if self.queue.peek_time().is_some() {
            self.now = horizon;
        }
        Ok(RunReport {
            ended_at: self.now,
            events_processed: processed,
            halted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick,
        Stop,
    }

    #[test]
    fn periodic_event_self_reschedules() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(1), Ev::Tick).unwrap();
        let mut count = 0u32;
        let report = engine
            .run_until(
                &mut count,
                SimTime::from_secs(10),
                &mut |c: &mut u32, ev, sched: &mut ScheduleHandle<'_, Ev>| {
                    assert_eq!(ev, Ev::Tick);
                    *c += 1;
                    sched.schedule_in(SimDuration::from_secs(1), Ev::Tick);
                    Flow::Continue
                },
            )
            .unwrap();
        // Ticks at t=1..=10 inclusive.
        assert_eq!(count, 10);
        assert!(!report.halted);
        assert_eq!(report.events_processed, 10);
    }

    #[test]
    fn halt_stops_early() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(1), Ev::Tick).unwrap();
        engine.schedule(SimTime::from_secs(2), Ev::Stop).unwrap();
        engine.schedule(SimTime::from_secs(3), Ev::Tick).unwrap();
        let mut seen = Vec::new();
        let report = engine
            .run_until(
                &mut seen,
                SimTime::from_secs(100),
                &mut |s: &mut Vec<&'static str>, ev, _: &mut ScheduleHandle<'_, Ev>| match ev {
                    Ev::Tick => {
                        s.push("tick");
                        Flow::Continue
                    }
                    Ev::Stop => Flow::Halt,
                },
            )
            .unwrap();
        assert!(report.halted);
        assert_eq!(report.ended_at, SimTime::from_secs(2));
        assert_eq!(seen, vec!["tick"]);
        assert_eq!(engine.pending(), 1, "post-halt events remain queued");
    }

    #[test]
    fn horizon_leaves_future_events_queued() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), Ev::Tick).unwrap();
        engine.schedule(SimTime::from_secs(50), Ev::Tick).unwrap();
        let mut count = 0u32;
        let report = engine
            .run_until(
                &mut count,
                SimTime::from_secs(10),
                &mut |c: &mut u32, _, _: &mut ScheduleHandle<'_, Ev>| {
                    *c += 1;
                    Flow::Continue
                },
            )
            .unwrap();
        assert_eq!(count, 1);
        assert_eq!(report.ended_at, SimTime::from_secs(10));
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_secs(10));
    }

    #[test]
    fn schedule_in_past_rejected() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::from_secs(5), Ev::Tick).unwrap();
        let mut unit = ();
        engine
            .run_until(
                &mut unit,
                SimTime::from_secs(5),
                &mut |_: &mut (), _, sched: &mut ScheduleHandle<'_, Ev>| {
                    let err = sched.schedule_at(SimTime::from_secs(1), Ev::Tick);
                    assert!(matches!(err, Err(SimError::ScheduleInPast { .. })));
                    Flow::Continue
                },
            )
            .unwrap();
        let err = engine.schedule(SimTime::from_secs(1), Ev::Tick);
        assert!(matches!(err, Err(SimError::ScheduleInPast { .. })));
    }

    #[test]
    fn event_budget_catches_runaway() {
        let mut engine = Engine::new().with_event_budget(100);
        engine.schedule(SimTime::ZERO, Ev::Tick).unwrap();
        let mut unit = ();
        let err = engine.run_until(
            &mut unit,
            SimTime::MAX,
            &mut |_: &mut (), _, sched: &mut ScheduleHandle<'_, Ev>| {
                sched.schedule_in(SimDuration::ZERO, Ev::Tick);
                Flow::Continue
            },
        );
        assert_eq!(err, Err(SimError::EventBudgetExhausted { budget: 100 }));
    }
}
