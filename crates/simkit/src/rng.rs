//! Deterministic, splittable random-number streams.
//!
//! Reproducibility is a hard requirement for the experiment harness: a run
//! must produce identical traces regardless of thread count or platform.
//! We therefore implement the generator in-crate rather than relying on a
//! dependency's unspecified default algorithm:
//!
//! * [`DetRng`] — xoshiro256++ (public-domain algorithm by Blackman &
//!   Vigna), with uniform, range, Bernoulli, normal (Box–Muller) and
//!   exponential helpers. It also implements [`rand::RngCore`], so it plugs
//!   into `rand` adapters (e.g. `SliceRandom::shuffle`) where convenient.
//! * [`RngFactory`] — derives statistically independent child streams from
//!   one experiment seed using SplitMix64 over `(label, index)` pairs. Each
//!   node, each job, each noise source gets its own stream, so parallel
//!   execution order cannot perturb results.

use rand::RngCore;

/// SplitMix64 step: the standard seed-expansion permutation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Seeds the generator, expanding the 64-bit seed with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection loop guarantees exact uniformity.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform index in `[0, len)` for slice access.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choice on empty slice");
        &items[self.index(items.len())]
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (caches the paired output).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential with the given mean (`1/λ`).
    ///
    /// # Panics
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Derives independent child streams from one experiment seed.
///
/// Streams are addressed by a domain label plus an integer index, e.g.
/// `factory.stream("node.noise", 17)`. The same address always yields the
/// same stream; distinct addresses yield decorrelated streams.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    root: u64,
}

impl RngFactory {
    /// Creates a factory from the experiment seed.
    pub fn new(root_seed: u64) -> Self {
        RngFactory { root: root_seed }
    }

    /// The root experiment seed.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// Deterministically derives the child seed for `(label, index)`.
    pub fn child_seed(&self, label: &str, index: u64) -> u64 {
        let mut state = self.root ^ 0xA076_1D64_78BD_642F;
        for &b in label.as_bytes() {
            state ^= b as u64;
            splitmix64(&mut state);
        }
        state ^= index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        splitmix64(&mut state)
    }

    /// A fresh generator for `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> DetRng {
        DetRng::seed_from_u64(self.child_seed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn determinism_same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_modulus() {
        let mut rng = DetRng::seed_from_u64(99);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.below(6) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = DetRng::seed_from_u64(5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = rng.normal(10.0, 2.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut rng = DetRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn factory_streams_are_stable_and_independent() {
        let f = RngFactory::new(123);
        let mut a1 = f.stream("node", 4);
        let mut a2 = f.stream("node", 4);
        let mut b = f.stream("node", 5);
        let mut c = f.stream("meter", 4);
        assert_eq!(a1.next_u64_raw(), a2.next_u64_raw());
        let x = a1.next_u64_raw();
        assert_ne!(x, b.next_u64_raw());
        assert_ne!(x, c.next_u64_raw());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements staying put is ~impossible"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rand::RngCore::fill_bytes(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut rng = DetRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(n) < n);
            }
        }

        #[test]
        fn prop_range_u64_in_range(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
            let mut rng = DetRng::seed_from_u64(seed);
            let hi = lo + span;
            for _ in 0..16 {
                let x = rng.range_u64(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        #[test]
        fn prop_child_seed_stable(root in any::<u64>(), idx in any::<u64>()) {
            let f = RngFactory::new(root);
            prop_assert_eq!(f.child_seed("lbl", idx), f.child_seed("lbl", idx));
            // Label must matter: "lbl"/idx and "lbm"/idx should differ
            // (probabilistically certain for a 64-bit mix).
            prop_assert_ne!(f.child_seed("lbl", idx), f.child_seed("lbm", idx));
        }
    }
}
