//! Append-only time series with integration helpers.
//!
//! Power traces are recorded as `(SimTime, f64)` samples. The ΔP×T metric
//! needs `∫ P(t) dt` and `∫_{P>P_th} (P(t) − P_th) dt`; both are provided
//! here under step-wise (sample-and-hold, matching a metered trace) and
//! trapezoid interpolation.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How to interpolate between samples when integrating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interp {
    /// Sample-and-hold: the value at `t_i` holds until `t_{i+1}`. This is
    /// what a polling power meter actually observes and is the default for
    /// all paper metrics.
    Step,
    /// Linear interpolation between consecutive samples.
    Trapezoid,
}

/// An append-only series of `(time, value)` samples with non-decreasing time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded sample or `v` is not finite.
    pub fn push(&mut self, t: SimTime, v: f64) {
        assert!(v.is_finite(), "sample value must be finite, got {v}");
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "samples must have non-decreasing time");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample iterator.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// FNV-1a fingerprint over the raw bits of every value (byte
    /// discipline — the same stream CI's determinism gate has always
    /// hashed): equal fingerprints mean a bit-identical trace.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::Fnv1a::new();
        for v in &self.values {
            h.write_u64(v.to_bits());
        }
        h.finish()
    }

    /// The raw value slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw time slice.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Time-weighted mean over the recorded span (step interpolation),
    /// or `None` with fewer than two samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        let total = self.span()?.as_secs_f64();
        if total == 0.0 {
            return None;
        }
        Some(self.integrate(Interp::Step) / total)
    }

    /// Recorded span (first to last sample time).
    pub fn span(&self) -> Option<SimDuration> {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => Some(b - a),
            _ => None,
        }
    }

    /// `∫ v(t) dt` over the recorded span, in value·seconds.
    pub fn integrate(&self, interp: Interp) -> f64 {
        if self.times.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..self.times.len() - 1 {
            let dt = (self.times[i + 1] - self.times[i]).as_secs_f64();
            acc += match interp {
                Interp::Step => self.values[i] * dt,
                Interp::Trapezoid => 0.5 * (self.values[i] + self.values[i + 1]) * dt,
            };
        }
        acc
    }

    /// `∫ max(v(t) − threshold, 0) dt` over the recorded span.
    ///
    /// With `Interp::Step` each sample's value is held until the next
    /// sample. With `Interp::Trapezoid`, segments crossing the threshold are
    /// split analytically at the crossing point.
    pub fn integrate_excess_above(&self, threshold: f64, interp: Interp) -> f64 {
        if self.times.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..self.times.len() - 1 {
            let dt = (self.times[i + 1] - self.times[i]).as_secs_f64();
            if dt == 0.0 {
                continue;
            }
            let v0 = self.values[i];
            let v1 = self.values[i + 1];
            acc += match interp {
                Interp::Step => (v0 - threshold).max(0.0) * dt,
                Interp::Trapezoid => trapezoid_excess(v0, v1, threshold, dt),
            };
        }
        acc
    }

    /// Fraction of the recorded span during which `v(t) > threshold`
    /// (step interpolation). Returns 0 for fewer than two samples.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.times.len() < 2 {
            return 0.0;
        }
        let Some(span) = self.span() else { return 0.0 };
        let total = span.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let mut above = 0.0;
        for i in 0..self.times.len() - 1 {
            if self.values[i] > threshold {
                above += (self.times[i + 1] - self.times[i]).as_secs_f64();
            }
        }
        above / total
    }

    /// The sub-series of samples at or after `t0` (e.g. the measurement
    /// window of a trace that includes a training prefix).
    pub fn since(&self, t0: SimTime) -> TimeSeries {
        let start = self.times.partition_point(|&t| t < t0);
        TimeSeries {
            times: self.times[start..].to_vec(),
            values: self.values[start..].to_vec(),
        }
    }

    /// Downsamples by keeping every `stride`-th sample (always keeping the
    /// first and last). Useful for plotting long traces.
    pub fn decimate(&self, stride: usize) -> TimeSeries {
        assert!(stride > 0, "stride must be positive");
        let n = self.len();
        let mut out = TimeSeries::new();
        for i in (0..n).step_by(stride) {
            out.push(self.times[i], self.values[i]);
        }
        if n > 0 && !(n - 1).is_multiple_of(stride) {
            out.push(self.times[n - 1], self.values[n - 1]);
        }
        out
    }
}

/// Excess-above-threshold area of one linear segment of length `dt` going
/// from `v0` to `v1`.
fn trapezoid_excess(v0: f64, v1: f64, threshold: f64, dt: f64) -> f64 {
    let e0 = v0 - threshold;
    let e1 = v1 - threshold;
    match (e0 > 0.0, e1 > 0.0) {
        (true, true) => 0.5 * (e0 + e1) * dt,
        (false, false) => 0.0,
        // The segment crosses the threshold once; integrate the triangular
        // part on the positive side of the crossing.
        (true, false) => {
            let frac = e0 / (e0 - e1);
            0.5 * e0 * frac * dt
        }
        (false, true) => {
            let frac = e1 / (e1 - e0);
            0.5 * e1 * frac * dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn series(samples: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in samples {
            s.push(SimTime::from_secs(t), v);
        }
        s
    }

    #[test]
    fn push_rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(2), 1.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.push(SimTime::from_secs(1), 1.0)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn push_rejects_nan() {
        let mut s = TimeSeries::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.push(SimTime::ZERO, f64::NAN)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn step_integration_of_constant() {
        let s = series(&[(0, 5.0), (10, 5.0)]);
        assert_eq!(s.integrate(Interp::Step), 50.0);
        assert_eq!(s.integrate(Interp::Trapezoid), 50.0);
    }

    #[test]
    fn trapezoid_integration_of_ramp() {
        let s = series(&[(0, 0.0), (10, 10.0)]);
        assert_eq!(s.integrate(Interp::Trapezoid), 50.0);
        // Step holds 0.0 for the whole segment.
        assert_eq!(s.integrate(Interp::Step), 0.0);
    }

    #[test]
    fn excess_above_threshold_step() {
        // 10s at 8.0 (excess 3), 10s at 4.0 (no excess), threshold 5.
        let s = series(&[(0, 8.0), (10, 4.0), (20, 4.0)]);
        assert_eq!(s.integrate_excess_above(5.0, Interp::Step), 30.0);
    }

    #[test]
    fn excess_above_threshold_trapezoid_crossing() {
        // Ramp 0→10 over 10s, threshold 5: excess area is a triangle with
        // base 5s and height 5 → 12.5.
        let s = series(&[(0, 0.0), (10, 10.0)]);
        let e = s.integrate_excess_above(5.0, Interp::Trapezoid);
        assert!((e - 12.5).abs() < 1e-9, "e={e}");
        // Falling ramp is symmetric.
        let s2 = series(&[(0, 10.0), (10, 0.0)]);
        let e2 = s2.integrate_excess_above(5.0, Interp::Trapezoid);
        assert!((e2 - 12.5).abs() < 1e-9, "e2={e2}");
    }

    #[test]
    fn fraction_above_counts_held_intervals() {
        let s = series(&[(0, 9.0), (10, 1.0), (30, 9.0), (40, 9.0)]);
        // Above 5: [0,10) and [30,40) → 20 of 40 seconds.
        assert!((s.fraction_above(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_min_mean_span() {
        let s = series(&[(0, 2.0), (10, 6.0), (20, 4.0)]);
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.span(), Some(SimDuration::from_secs(20)));
        // Step mean: (2*10 + 6*10) / 20 = 4.
        assert_eq!(s.time_weighted_mean(), Some(4.0));
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.integrate(Interp::Step), 0.0);
        let one = series(&[(5, 3.0)]);
        assert_eq!(one.integrate(Interp::Step), 0.0);
        assert_eq!(one.time_weighted_mean(), None);
        assert_eq!(one.fraction_above(0.0), 0.0);
    }

    #[test]
    fn since_slices_at_boundary() {
        let s = series(&[(0, 1.0), (5, 2.0), (10, 3.0), (15, 4.0)]);
        let tail = s.since(SimTime::from_secs(5));
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.since(SimTime::from_secs(99)).len(), 0);
        assert_eq!(s.since(SimTime::ZERO).len(), 4);
    }

    #[test]
    fn decimate_keeps_endpoints() {
        let s = series(&[(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        let d = s.decimate(2);
        let times: Vec<u64> = d.times().iter().map(|t| t.as_millis() / 1000).collect();
        assert_eq!(times, vec![0, 2, 4]);
        let d3 = s.decimate(3);
        let times3: Vec<u64> = d3.times().iter().map(|t| t.as_millis() / 1000).collect();
        assert_eq!(times3, vec![0, 3, 4], "last sample must be kept");
    }

    proptest! {
        /// Excess integral is within [0, full integral shifted], and zero when
        /// the threshold is above the maximum.
        #[test]
        fn prop_excess_bounds(vals in proptest::collection::vec(0.0f64..100.0, 2..50), th in 0.0f64..120.0) {
            let mut s = TimeSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                s.push(SimTime::from_secs(i as u64), v);
            }
            for interp in [Interp::Step, Interp::Trapezoid] {
                let excess = s.integrate_excess_above(th, interp);
                prop_assert!(excess >= 0.0);
                let max = s.max().unwrap();
                if th >= max {
                    prop_assert!(excess == 0.0);
                }
                // Excess can never exceed the integral of the trace itself
                // when the threshold is non-negative.
                prop_assert!(excess <= s.integrate(interp) + 1e-9);
            }
        }

        /// Integration is additive when splitting a series at any sample.
        #[test]
        fn prop_integral_additive(vals in proptest::collection::vec(0.0f64..50.0, 3..30), split in 1usize..28) {
            prop_assume!(split < vals.len() - 1);
            let build = |range: std::ops::Range<usize>| {
                let mut s = TimeSeries::new();
                for i in range {
                    s.push(SimTime::from_secs(i as u64), vals[i]);
                }
                s
            };
            let whole = build(0..vals.len());
            let left = build(0..split + 1);
            let right = build(split..vals.len());
            let sum = left.integrate(Interp::Trapezoid) + right.integrate(Interp::Trapezoid);
            prop_assert!((whole.integrate(Interp::Trapezoid) - sum).abs() < 1e-6);
        }
    }
}
