//! Bounded simulation event journal.
//!
//! Long experiments need an audit trail — which job started where, when
//! the power state flipped, what the manager commanded — without growing
//! memory unboundedly over hundreds of thousands of ticks. [`Journal`] is
//! a fixed-capacity ring of categorized events; when full, the oldest
//! events are dropped and counted, never silently.

use crate::hash::Fnv1a;
use crate::time::SimTime;
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, serde::Deserialize)]
pub enum Severity {
    /// High-volume detail (per-cycle actions).
    Debug,
    /// Notable state changes (job lifecycle, threshold adjustment).
    Info,
    /// Conditions worth an operator's attention (red state, failures).
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
        })
    }
}

/// One recorded event. (Serialize-only: the static category tag cannot
/// be deserialized into a `'static` borrow.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Event {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Static category tag (e.g. `"job"`, `"state"`, `"command"`).
    pub category: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:5} {:8} {}",
            self.at, self.severity, self.category, self.message
        )
    }
}

/// A fixed-capacity event ring.
#[derive(Debug, Clone, Serialize)]
pub struct Journal {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
    min_severity: Severity,
}

impl Journal {
    /// Creates a journal holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            min_severity: Severity::Debug,
        }
    }

    /// Sets the minimum severity recorded (cheap filtering at the source).
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// True if an event of `severity` would be recorded. Callers on hot
    /// paths check this (or use [`Journal::record_with`]) to avoid
    /// formatting messages that would be filtered out.
    pub fn enabled(&self, severity: Severity) -> bool {
        severity >= self.min_severity
    }

    /// Records an event (dropping the oldest when full).
    pub fn record(
        &mut self,
        at: SimTime,
        severity: Severity,
        category: &'static str,
        message: impl Into<String>,
    ) {
        if severity < self.min_severity {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            at,
            severity,
            category,
            message: message.into(),
        });
    }

    /// Records an event whose message is built lazily: `message()` runs
    /// only if `severity` passes the filter, so hot loops pay no `format!`
    /// allocation for journaling that is turned off.
    pub fn record_with(
        &mut self,
        at: SimTime,
        severity: Severity,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled(severity) {
            return;
        }
        self.record(at, severity, category, message());
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Iterates retained events of one category.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// The most recent `n` events, oldest of those first.
    pub fn tail(&self, n: usize) -> Vec<&Event> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).collect()
    }

    /// Order-sensitive FNV-1a hash over every retained event (time,
    /// severity, category, message) plus the drop count.
    ///
    /// Two runs of the same seeded experiment must produce the same
    /// fingerprint whatever the worker-pool width — CI's dynamic
    /// determinism gate and the tier-1 double-run test compare exactly
    /// this value, so any nondeterminism that reaches a journaled event
    /// (job lifecycle, state flips, commands, faults) is caught.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.dropped);
        for e in &self.events {
            h.write_u64(e.at.as_millis());
            h.write_u8(e.severity as u8);
            h.write_bytes(e.category.as_bytes());
            h.write_bytes(e.message.as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(cap: usize) -> Journal {
        Journal::new(cap)
    }

    #[test]
    fn record_and_read_back() {
        let mut j = journal(8);
        j.record(SimTime::from_secs(1), Severity::Info, "job", "j0 started");
        j.record(SimTime::from_secs(2), Severity::Warn, "state", "red");
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
        let msgs: Vec<&str> = j.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["j0 started", "red"]);
        assert_eq!(j.by_category("state").count(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut j = journal(3);
        for i in 0..10u64 {
            j.record(SimTime::from_secs(i), Severity::Info, "x", format!("e{i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let msgs: Vec<&str> = j.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e7", "e8", "e9"]);
    }

    #[test]
    fn severity_filter_at_source() {
        let mut j = journal(8).with_min_severity(Severity::Info);
        j.record(SimTime::ZERO, Severity::Debug, "x", "invisible");
        j.record(SimTime::ZERO, Severity::Info, "x", "visible");
        j.record(SimTime::ZERO, Severity::Warn, "x", "also visible");
        assert_eq!(j.len(), 2);
        assert!(!j.enabled(Severity::Debug));
        assert!(j.enabled(Severity::Warn));
    }

    #[test]
    fn record_with_skips_message_construction_when_filtered() {
        let mut j = journal(8).with_min_severity(Severity::Info);
        let mut built = 0u32;
        j.record_with(SimTime::ZERO, Severity::Debug, "x", || {
            built += 1;
            "expensive".to_string()
        });
        assert_eq!(built, 0, "filtered record must not format its message");
        assert!(j.is_empty());
        j.record_with(SimTime::ZERO, Severity::Warn, "x", || {
            built += 1;
            "kept".to_string()
        });
        assert_eq!(built, 1);
        assert_eq!(j.iter().next().unwrap().message, "kept");
    }

    #[test]
    fn tail_returns_newest() {
        let mut j = journal(10);
        for i in 0..5u64 {
            j.record(SimTime::from_secs(i), Severity::Info, "x", format!("e{i}"));
        }
        let t: Vec<&str> = j.tail(2).iter().map(|e| e.message.as_str()).collect();
        assert_eq!(t, vec!["e3", "e4"]);
        assert_eq!(j.tail(100).len(), 5);
    }

    #[test]
    fn display_formats() {
        let mut j = journal(2);
        j.record(
            SimTime::from_secs(61),
            Severity::Warn,
            "state",
            "red entered",
        );
        let line = j.iter().next().unwrap().to_string();
        assert!(line.contains("WARN"));
        assert!(line.contains("00:01:01"));
        assert!(line.contains("red entered"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Journal::new(0);
    }

    #[test]
    fn fingerprint_is_deterministic_and_order_sensitive() {
        let fill = |order: &[(&'static str, &str)]| {
            let mut j = journal(8);
            for (i, (cat, msg)) in order.iter().enumerate() {
                j.record(SimTime::from_secs(i as u64), Severity::Info, cat, *msg);
            }
            j.fingerprint()
        };
        let a = fill(&[("job", "j0"), ("state", "red")]);
        let b = fill(&[("job", "j0"), ("state", "red")]);
        assert_eq!(a, b, "same events, same fingerprint");
        let swapped = fill(&[("state", "red"), ("job", "j0")]);
        assert_ne!(a, swapped, "order must matter");
        let edited = fill(&[("job", "j0"), ("state", "rex")]);
        assert_ne!(a, edited, "content must matter");
    }

    #[test]
    fn fingerprint_counts_dropped_events() {
        let mut a = journal(2);
        let mut b = journal(2);
        for i in 0..4u64 {
            a.record(SimTime::from_secs(i), Severity::Info, "x", format!("e{i}"));
        }
        // b holds the same two retained events but dropped nothing.
        for i in 2..4u64 {
            b.record(SimTime::from_secs(i), Severity::Info, "x", format!("e{i}"));
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_field_boundaries_are_unambiguous() {
        let mut a = journal(4);
        a.record(SimTime::ZERO, Severity::Info, "jo", "bx");
        let mut b = journal(4);
        b.record(SimTime::ZERO, Severity::Info, "job", "x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
