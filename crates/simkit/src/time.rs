//! Fixed-point simulation time.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both held
//! as integer milliseconds. Integer time makes event ordering exact (two
//! events scheduled at the same instant compare equal on every platform)
//! and lets the control loop express its cycle periods without rounding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Milliseconds in one second, the crate-wide fixed-point scale.
pub const MILLIS_PER_SEC: u64 = 1_000;

/// An absolute simulation instant, in milliseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SEC)
    }

    /// Raw millisecond count since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy; for metrics/printing).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Span since `earlier`, saturating at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MILLIS_PER_SEC)
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * MILLIS_PER_SEC)
    }

    /// Builds a span from float seconds, rounding to the nearest millisecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Raw millisecond count.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float (lossy; for metrics/printing).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of whole `other` spans contained in `self`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero SimDuration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        let h = total_ms / 3_600_000;
        let m = (total_ms / 60_000) % 60;
        let s = (total_ms / 1_000) % 60;
        let ms = total_ms % 1_000;
        if ms == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(4));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn div_duration_counts_whole_periods() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.div_duration(SimDuration::from_secs(3)), 3);
        assert_eq!(d.div_duration(SimDuration::from_secs(10)), 1);
        assert_eq!(d.div_duration(SimDuration::from_secs(11)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_duration_by_zero_panics() {
        SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "00:00:01.500");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.5s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(5),
            SimTime::ZERO,
            SimTime::from_millis(10),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_secs(5)
            ]
        );
    }
}
