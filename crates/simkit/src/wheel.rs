//! Hierarchical timer wheel for tick-indexed event scheduling.
//!
//! The cluster simulation advances on a fixed control period τ, but most
//! ticks carry no *discrete* event: job arrivals, actuation-retry thaws and
//! fault edges are sparse. A timer wheel stores "wake me at tick N" entries
//! in O(1) per insert/drain so the tick core can ask "what is due now?"
//! without scanning every pending event (as a binary heap would re-order
//! equal-priority entries, breaking replay determinism).
//!
//! Layout: `LEVELS` wheels of `SLOTS = 64` slots each. Level `l` covers
//! `64^(l+1)` ticks at a granularity of `64^l`; entries further out than the
//! top level sit in an overflow list and re-enter the wheel as time
//! approaches. Draining is **deterministic**: entries due at the same tick
//! come out in insertion order (a monotonic sequence number breaks ties),
//! regardless of how many cascades they travelled through.

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64, as in kernel timer wheels).
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of hierarchical levels; covers `64^4 = 16.7M` ticks directly.
const LEVELS: usize = 4;

#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// A hierarchical timer wheel holding items keyed by an absolute tick index.
///
/// `T` is the event payload. All operations are deterministic: two wheels
/// fed the same schedule in the same order drain identically.
#[derive(Debug, Clone)]
pub struct TimeWheel<T> {
    /// `levels[l][slot]` holds entries due within that slot's tick span.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Entries beyond the top level's horizon.
    overflow: Vec<Entry<T>>,
    /// The current tick; entries are never due before it.
    now: u64,
    /// Monotonic insertion counter used to keep same-tick drain order stable.
    seq: u64,
    len: usize,
    /// Scratch buffer reused by [`pop_due_into`](Self::pop_due_into) so the
    /// steady-state drain allocates nothing.
    drain: Vec<Entry<T>>,
}

impl<T> Default for TimeWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimeWheel<T> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimeWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            now: 0,
            seq: 0,
            len: 0,
            drain: Vec::new(),
        }
    }

    /// Number of scheduled entries not yet drained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `item` at absolute tick `at`. Ticks in the past are clamped
    /// to the current tick so the entry drains on the next `pop_due`.
    pub fn schedule(&mut self, at: u64, item: T) {
        let at = at.max(self.now);
        let entry = Entry {
            at,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        self.len += 1;
        self.place(entry);
    }

    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.at - self.now;
        for l in 0..LEVELS {
            // Level l spans 64^(l+1) ticks from `now`.
            if delta >> (SLOT_BITS * (l as u32 + 1)) == 0 {
                let slot = (entry.at >> (SLOT_BITS * l as u32)) as usize & (SLOTS - 1);
                self.levels[l][slot].push(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Earliest tick with a scheduled entry, if any. O(entries) scan —
    /// acceptable for the sparse schedules this simulator keeps.
    pub fn next_due(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |at: u64| match best {
            Some(b) if b <= at => {}
            _ => best = Some(at),
        };
        for level in &self.levels {
            for slot in level {
                for e in slot {
                    consider(e.at);
                }
            }
        }
        for e in &self.overflow {
            consider(e.at);
        }
        best
    }

    /// Advances the wheel to `tick` and returns every entry due at or before
    /// it, ordered by (due tick, insertion order).
    pub fn pop_due(&mut self, tick: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_due_into(tick, &mut out);
        out
    }

    /// Like [`pop_due`](Self::pop_due) but drains into `out` (cleared
    /// first). The wheel reuses an internal scratch buffer, so a steady
    /// state caller allocates nothing per drain.
    pub fn pop_due_into(&mut self, tick: u64, out: &mut Vec<T>) {
        out.clear();
        let mut due = std::mem::take(&mut self.drain);
        due.clear();
        while self.now <= tick {
            let slot = (self.now as usize) & (SLOTS - 1);
            if !self.levels[0][slot].is_empty() {
                due.append(&mut self.levels[0][slot]);
            }
            if self.now == tick {
                break;
            }
            self.now += 1;
            self.cascade();
        }
        // Entries at the same tick must drain in insertion order; entries at
        // earlier ticks first. `seq` is monotonic, so (at, seq) is total.
        due.sort_by_key(|e| (e.at, e.seq));
        self.len -= due.len();
        out.extend(due.drain(..).map(|e| e.item));
        self.drain = due;
    }

    /// After `now` advanced, re-home entries from coarser levels whose span
    /// boundary was crossed.
    fn cascade(&mut self) {
        for l in 1..LEVELS {
            // Level l's slots advance once per 64^l ticks.
            if self.now & ((1u64 << (SLOT_BITS * l as u32)) - 1) != 0 {
                break;
            }
            let slot = (self.now >> (SLOT_BITS * l as u32)) as usize & (SLOTS - 1);
            let entries = std::mem::take(&mut self.levels[l][slot]);
            for e in entries {
                self.place(e);
            }
        }
        // The overflow re-enters when the top level wraps.
        if self.now & ((1u64 << (SLOT_BITS * LEVELS as u32)) - 1) == 0 {
            let entries = std::mem::take(&mut self.overflow);
            for e in entries {
                self.place(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_tick_then_insertion_order() {
        let mut w = TimeWheel::new();
        w.schedule(5, "b");
        w.schedule(3, "a");
        w.schedule(5, "c");
        assert_eq!(w.pop_due(10), vec!["a", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_ticks_clamp_to_now() {
        let mut w = TimeWheel::new();
        w.pop_due(100);
        w.schedule(7, "late");
        assert_eq!(w.next_due(), Some(100));
        assert_eq!(w.pop_due(100), vec!["late"]);
    }

    #[test]
    fn far_future_entries_survive_cascades() {
        let mut w = TimeWheel::new();
        // One entry per level span, plus one beyond the wheel horizon.
        let ticks = [1u64, 70, 64 * 64 + 3, 64 * 64 * 64 + 9, 20_000_000];
        for (i, &t) in ticks.iter().enumerate() {
            w.schedule(t, i);
        }
        let mut seen = Vec::new();
        let mut now = 0;
        while !w.is_empty() {
            now += 777_777;
            seen.extend(w.pop_due(now));
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_due_is_exclusive_of_future_ticks() {
        let mut w = TimeWheel::new();
        w.schedule(4, "now");
        w.schedule(5, "later");
        assert_eq!(w.pop_due(4), vec!["now"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_due(), Some(5));
        assert_eq!(w.pop_due(5), vec!["later"]);
    }

    #[test]
    fn same_schedule_drains_identically() {
        let build = || {
            let mut w = TimeWheel::new();
            for i in 0..500u64 {
                w.schedule((i * 37) % 300, i);
            }
            let mut out = Vec::new();
            let mut now = 0;
            while !w.is_empty() {
                now += 13;
                out.extend(w.pop_due(now));
            }
            out
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn cascaded_same_tick_entries_keep_insertion_order() {
        let mut w = TimeWheel::new();
        // Both land at tick 100 but are inserted at different distances,
        // so one cascades and one is placed directly after advancing.
        w.schedule(100, "first");
        w.pop_due(90);
        w.schedule(100, "second");
        assert_eq!(w.pop_due(100), vec!["first", "second"]);
    }
}
