//! Error type shared by the simulation substrate.

use std::fmt;

/// Errors raised by the simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An event was scheduled in the past relative to the engine clock.
    ScheduleInPast {
        /// Current engine time.
        now_ms: u64,
        /// Requested (earlier) event time.
        at_ms: u64,
    },
    /// The engine ran past its configured event budget — almost always a
    /// runaway self-rescheduling event.
    EventBudgetExhausted {
        /// The configured budget that was exceeded.
        budget: u64,
    },
    /// A component was configured inconsistently.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleInPast { now_ms, at_ms } => write!(
                f,
                "event scheduled in the past: now={now_ms}ms, requested={at_ms}ms"
            ),
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "event budget of {budget} events exhausted")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ScheduleInPast {
            now_ms: 100,
            at_ms: 50,
        };
        assert!(e.to_string().contains("now=100ms"));
        assert!(SimError::EventBudgetExhausted { budget: 7 }
            .to_string()
            .contains('7'));
        assert!(SimError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
    }
}
