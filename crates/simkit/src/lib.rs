//! # ppc-simkit — deterministic simulation substrate
//!
//! This crate provides the foundations every other `ppc` crate builds on:
//!
//! * [`time`] — fixed-point simulation time ([`SimTime`], [`SimDuration`])
//!   with millisecond resolution, so event ordering is exact and
//!   platform-independent (no floating-point clock drift).
//! * [`queue`] / [`engine`] — a discrete-event queue with stable FIFO
//!   ordering for simultaneous events and a small DES engine driving it.
//! * [`clock`] — a fixed-timestep ticker used by the cluster simulation's
//!   control/sampling cycles.
//! * [`rng`] — splittable, seeded random-number streams. Every source of
//!   randomness in a simulation derives its own independent stream from the
//!   experiment seed, which keeps runs bit-reproducible even when node
//!   updates execute in parallel.
//! * [`par`] — data-parallel helpers on a persistent worker pool
//!   ([`par::WorkerPool`]): static index-ordered chunking and ordered
//!   reductions keep results bit-identical across pool sizes, and inputs
//!   below an inline threshold skip the handoff entirely.
//! * [`hash`] — stable 64-bit FNV-1a hashing for determinism
//!   fingerprints (journal, span tree, metrics registry).
//! * [`series`] — append-only time series with trapezoid/step integration,
//!   used for power traces and the ΔP×T overspend metric.
//! * [`stats`] — running statistics (Welford) and fixed-bin histograms.
//! * [`wheel`] — hierarchical timer wheel ([`TimeWheel`]) for sparse
//!   tick-indexed events (arrivals, retry thaws) with deterministic
//!   insertion-order drains.
//!
//! Nothing in this crate knows about power, nodes or jobs; it is a generic
//! substrate comparable to what a production simulator would keep in a
//! `util`/`runtime` layer.

pub mod clock;
pub mod engine;
pub mod error;
pub mod hash;
pub mod journal;
pub mod par;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod wheel;

pub use clock::TickClock;
pub use engine::{Engine, EventHandler, ScheduleHandle};
pub use error::SimError;
pub use hash::Fnv1a;
pub use journal::{Event, Journal, Severity};
pub use par::WorkerPool;
pub use queue::EventQueue;
pub use rng::{DetRng, RngFactory};
pub use series::TimeSeries;
pub use stats::{Histogram, RunningStats};
pub use time::{SimDuration, SimTime};
pub use wheel::TimeWheel;
