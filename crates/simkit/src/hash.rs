//! Stable, dependency-free hashing for determinism fingerprints.
//!
//! [`Fnv1a`] is a minimal 64-bit FNV-1a hasher — unlike
//! `std::collections::hash_map::DefaultHasher` it is not randomly keyed
//! per process, so fingerprints are comparable across runs, platforms and
//! processes. The journal, the observability span recorder and the
//! metrics registry all fold their state through this hasher, and CI's
//! determinism gate compares the resulting values across worker-pool
//! widths.

/// Minimal FNV-1a (64-bit) streaming hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Absorbs a byte slice, terminated by its length so adjacent
    /// variable-width fields cannot alias (`("ab","c")` ≠ `("a","bc")`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
        self.write_u64(bytes.len() as u64);
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs an `f64` by bit pattern. Fingerprint equality therefore
    /// means *bit* equality — exactly the contract the determinism gate
    /// checks.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis; of "a" it is the
        // published 64-bit test vector (before the length terminator).
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = Fnv1a::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv1a::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_is_hashed_by_bits() {
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish(), "-0.0 and 0.0 differ in bits");
    }
}
