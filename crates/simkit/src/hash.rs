//! Stable, dependency-free hashing for determinism fingerprints.
//!
//! [`Fnv1a`] is a minimal 64-bit FNV-1a hasher — unlike
//! `std::collections::hash_map::DefaultHasher` it is not randomly keyed
//! per process, so fingerprints are comparable across runs, platforms and
//! processes. The journal, the observability span recorder and the
//! metrics registry all fold their state through this hasher, and CI's
//! determinism gate compares the resulting values across worker-pool
//! widths.

/// Minimal FNV-1a (64-bit) streaming hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Absorbs a byte slice, terminated by its length so adjacent
    /// variable-width fields cannot alias (`("ab","c")` ≠ `("a","bc")`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
        self.write_u64(bytes.len() as u64);
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs an `f64` by bit pattern. Fingerprint equality therefore
    /// means *bit* equality — exactly the contract the determinism gate
    /// checks.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a `u64` as one 64-bit word: a single xor + multiply rather
    /// than eight byte steps. This is the hot-path absorb for fixed-width
    /// fields (the span recorder folds ~10 words per span every control
    /// cycle). Word and byte absorbs produce *different* streams — a
    /// fingerprint must pick one discipline and keep it; all the
    /// determinism properties (cross-run, cross-width, cross-process
    /// stability) hold either way because the fold is pure.
    pub fn write_word(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::PRIME);
    }

    /// FNV-1a digest of a byte string (with the length terminator), for
    /// pre-hashing interned `&'static str` values into a single word that
    /// [`Fnv1a::write_word`] can absorb on the hot path.
    pub fn digest_of(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_bytes(bytes);
        h.finish()
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis; of "a" it is the
        // published 64-bit test vector (before the length terminator).
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = Fnv1a::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv1a::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn word_absorb_is_deterministic_and_order_sensitive() {
        let fold = |words: &[u64]| {
            let mut h = Fnv1a::new();
            for &w in words {
                h.write_word(w);
            }
            h.finish()
        };
        assert_eq!(fold(&[1, 2, 3]), fold(&[1, 2, 3]));
        assert_ne!(fold(&[1, 2, 3]), fold(&[3, 2, 1]), "order must matter");
        // One word step ≠ eight byte steps: distinct disciplines.
        let mut bytes = Fnv1a::new();
        bytes.write_u64(7);
        let mut word = Fnv1a::new();
        word.write_word(7);
        assert_ne!(bytes.finish(), word.finish());
    }

    #[test]
    fn digest_of_matches_write_bytes() {
        let mut h = Fnv1a::new();
        h.write_bytes(b"cycle");
        assert_eq!(Fnv1a::digest_of(b"cycle"), h.finish());
        assert_ne!(Fnv1a::digest_of(b"cycle"), Fnv1a::digest_of(b"select"));
    }

    #[test]
    fn f64_is_hashed_by_bits() {
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish(), "-0.0 and 0.0 differ in bits");
    }
}
