//! Running statistics and histograms.
//!
//! [`RunningStats`] uses Welford's algorithm so long traces can be
//! summarized in O(1) memory; [`Histogram`] gives fixed-bin distributions
//! and approximate percentiles for report tables.

use serde::{Deserialize, Serialize};

/// Single-pass mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observation must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel-friendly Chan et al. update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "observation must be finite, got {x}");
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against rounding landing exactly on bins.len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Under- and overflow counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`): the left edge of the bin
    /// containing the q-th observation. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + i as f64 * width);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1); // 5.0
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        let median = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median), "median={median}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((97.0..=99.0).contains(&p99), "p99={p99}");
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = RunningStats::new();
            for &x in &data {
                s.push(x);
            }
            let n = data.len() as f64;
            let mean: f64 = data.iter().sum::<f64>() / n;
            let var: f64 = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        }

        #[test]
        fn prop_histogram_conserves_counts(data in proptest::collection::vec(-10.0f64..110.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 13);
            for &x in &data {
                h.record(x);
            }
            let (under, over) = h.outliers();
            let binned: u64 = h.bins().iter().sum();
            prop_assert_eq!(under + over + binned, data.len() as u64);
        }
    }
}
