//! Fixed-timestep ticker.
//!
//! The cluster simulation advances node/job state on a fixed step `dt`
//! (the paper's sampling interval τ), with the power-capping control loop
//! running every `control_every` ticks and threshold adjustment every
//! `t_p` control cycles. [`TickClock`] centralizes that bookkeeping so the
//! simulation loop cannot drift or double-fire a cycle.

use crate::time::{SimDuration, SimTime};

/// A fixed-step simulation clock with tick counting.
#[derive(Debug, Clone)]
pub struct TickClock {
    now: SimTime,
    dt: SimDuration,
    tick: u64,
}

impl TickClock {
    /// Creates a clock at t=0 advancing by `dt` per tick.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn new(dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "tick step must be positive");
        TickClock {
            now: SimTime::ZERO,
            dt,
            tick: 0,
        }
    }

    /// Current simulation time (time of the most recent completed tick; t=0
    /// before the first `advance`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fixed step.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// The step in float seconds (for power integration).
    pub fn dt_secs(&self) -> f64 {
        self.dt.as_secs_f64()
    }

    /// Number of completed ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances one step and returns the new time.
    pub fn advance(&mut self) -> SimTime {
        self.tick += 1;
        self.now += self.dt;
        self.now
    }

    /// True on ticks that are a multiple of `period` (never on tick 0).
    pub fn every(&self, period: u64) -> bool {
        period > 0 && self.tick > 0 && self.tick.is_multiple_of(period)
    }

    /// Number of ticks needed to cover `span` (rounding up).
    pub fn ticks_in(&self, span: SimDuration) -> u64 {
        let ms = span.as_millis();
        let dt = self.dt.as_millis();
        ms.div_ceil(dt)
    }

    /// Resets to t=0, tick 0.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_by_dt() {
        let mut c = TickClock::new(SimDuration::from_secs(1));
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.advance(), SimTime::from_secs(1));
        assert_eq!(c.advance(), SimTime::from_secs(2));
        assert_eq!(c.tick(), 2);
    }

    #[test]
    fn every_fires_on_multiples_only() {
        let mut c = TickClock::new(SimDuration::from_millis(500));
        assert!(!c.every(2), "tick 0 must not fire");
        let mut fired = Vec::new();
        for _ in 0..8 {
            c.advance();
            if c.every(3) {
                fired.push(c.tick());
            }
        }
        assert_eq!(fired, vec![3, 6]);
        assert!(!c.every(0), "period 0 never fires");
    }

    #[test]
    fn ticks_in_rounds_up() {
        let c = TickClock::new(SimDuration::from_secs(2));
        assert_eq!(c.ticks_in(SimDuration::from_secs(10)), 5);
        assert_eq!(c.ticks_in(SimDuration::from_secs(11)), 6);
        assert_eq!(c.ticks_in(SimDuration::ZERO), 0);
    }

    #[test]
    fn reset_returns_to_epoch() {
        let mut c = TickClock::new(SimDuration::from_secs(1));
        c.advance();
        c.advance();
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.tick(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        TickClock::new(SimDuration::ZERO);
    }
}
