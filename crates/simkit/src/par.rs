//! Deterministic data parallelism on a persistent worker pool.
//!
//! The cluster simulation advances hundreds of independent node states per
//! tick and samples them through per-node agents — classic data-parallel
//! work, but on the *hot path*: a managed experiment executes tens of
//! thousands of control cycles, and paying a thread spawn/join per cycle
//! (the previous scoped-thread design) dominates exactly as the cluster
//! grows. [`WorkerPool`] instead creates its threads once and hands work
//! out through a generation-stamped barrier; per-call cost is one condvar
//! broadcast instead of N `clone(2)`s.
//!
//! Determinism is preserved by construction, for every pool size:
//!
//! * chunk boundaries are static functions of `(len, workers)` — no work
//!   stealing, no racing for items;
//! * every output is written to its pre-assigned slot (index-addressed);
//! * reductions fold per-item results in index order, so floating-point
//!   accumulation is bit-identical to a sequential loop.
//!
//! Inputs smaller than the pool's inline threshold run on the calling
//! thread: below a few dozen items the handoff latency exceeds the work
//! itself, and an inline loop produces the same bits anyway.

use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Default work-size threshold: inputs with fewer items than this run
/// inline on the calling thread instead of paying pool handoff latency.
pub const INLINE_THRESHOLD: usize = 64;

/// Hard cap on pool width; beyond this, handoff and cache traffic beat
/// any speedup for the per-item costs this codebase sees.
const MAX_WORKERS: usize = 32;

/// Spin iterations a worker burns watching for the next generation before
/// parking on the condvar (dispatches arrive back-to-back on the tick
/// path, so a short spin usually catches the next one hot). Zeroed when
/// the pool is wider than the machine — spinning while oversubscribed
/// starves the threads doing real work.
const WORKER_SPIN: u32 = 1 << 12;

/// Spin iterations the submitter burns waiting for worker completion
/// before parking; its own chunk is already done, so spinning longer than
/// the workers' tail latency is pure win (same oversubscription caveat).
const SUBMIT_SPIN: u32 = 1 << 15;

/// `yield_now` rounds between spinning and parking — a cheap second
/// chance before the condvar round-trip. Skipped along with the spin when
/// the pool oversubscribes the machine: many waiters yielding to each
/// other on too few cores is a context-switch storm, and parking at once
/// is strictly cheaper there.
const YIELD_ROUNDS: u32 = 32;

/// Spin–yield–park wait ladder. Returns as soon as `ready()` holds; may
/// also return spuriously after a park wake — callers re-check in a loop.
fn wait_for(ready: impl Fn() -> bool, spin: u32, mutex: &Mutex<()>, cv: &Condvar) {
    let mut spins = 0u32;
    let mut yields = 0u32;
    let yield_rounds = if spin == 0 { 0 } else { YIELD_ROUNDS };
    while !ready() {
        if spins < spin {
            spins += 1;
            std::hint::spin_loop();
        } else if yields < yield_rounds {
            yields += 1;
            std::thread::yield_now();
        } else {
            let guard = mutex.lock().unwrap_or_else(PoisonError::into_inner);
            // Re-check under the mutex; `Shared::wake` serializes with
            // this, so the flag flip cannot slip between check and wait.
            if !ready() {
                drop(cv.wait(guard).unwrap_or_else(PoisonError::into_inner));
            }
            return;
        }
    }
}

/// Lifetime-erased pointer to the current dispatch's task closure.
///
/// Soundness: [`WorkerPool::run`] does not return until every worker has
/// finished the generation that references this pointer, so the pointee
/// (a closure on the submitting thread's stack) strictly outlives all
/// uses.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the barrier in
// `run` keeps it alive for the whole dispatch.
unsafe impl Send for TaskRef {}

/// Single-writer task mailbox, synchronized by the generation protocol:
/// the submitter writes while no dispatch is in flight (`remaining == 0`)
/// and publishes with a `Release` bump of `generation`; workers read only
/// after an `Acquire` load observes the bump.
struct TaskCell(UnsafeCell<Option<TaskRef>>);

// SAFETY: see the generation protocol above — writes and reads never
// overlap, and the Release/Acquire pair on `generation` orders them.
unsafe impl Sync for TaskCell {}

struct Shared {
    /// Per-worker spin budget before yielding/parking (0 when the pool is
    /// wider than the machine's available parallelism).
    worker_spin: u32,
    /// Bumped once per dispatch; workers run each generation exactly once.
    generation: AtomicU64,
    /// Spawned workers still running the current generation. The final
    /// `Release` decrement / `Acquire` zero-read pair publishes all of the
    /// workers' output writes to the submitter.
    remaining: AtomicUsize,
    task: TaskCell,
    /// Set when a worker's task panicked (re-raised by the submitter).
    panicked: AtomicBool,
    /// Ends the worker loops (pool drop).
    shutdown: AtomicBool,
    /// Pairs with `generation` for the workers' parked wait.
    work_mutex: Mutex<()>,
    work_cv: Condvar,
    /// Pairs with `remaining` for the submitter's parked wait.
    done_mutex: Mutex<()>,
    done_cv: Condvar,
}

impl Shared {
    /// Wakes anyone parked on `(mutex, cv)`. Locking (and dropping) the
    /// mutex after the atomic update guarantees a waiter either re-checks
    /// the condition after our update or is already inside `wait` and
    /// receives the notification — the standard flag-publication pairing,
    /// with the atomics replacing the mutex-protected flag.
    fn wake(mutex: &Mutex<()>, cv: &Condvar) {
        drop(mutex.lock().unwrap_or_else(PoisonError::into_inner));
        cv.notify_all();
    }
}

thread_local! {
    /// True while this thread is executing a pool task; nested parallel
    /// calls then run inline instead of deadlocking on the submit lock.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent, deterministic worker pool.
///
/// Threads are created once (lazily for the [global](WorkerPool::global)
/// pool, eagerly for explicit [`WorkerPool::new`] handles) and reused for
/// every dispatch. The calling thread participates as worker 0, so a pool
/// of `workers` logical workers spawns `workers − 1` threads and a
/// 1-worker pool is a pure inline executor.
///
/// Results are bit-identical across pool sizes — see the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Logical worker count, including the caller (≥ 1).
    workers: usize,
    /// Inputs smaller than this run inline.
    inline_threshold: usize,
    /// Submitter spin budget (0 when the pool oversubscribes the machine).
    submit_spin: u32,
    /// Serializes dispatches from different threads.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("inline_threshold", &self.inline_threshold)
            .finish()
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    // Everything this thread ever runs is a pool task.
    IN_PARALLEL.with(|c| c.set(true));
    let mut last_gen = 0u64;
    loop {
        // Spin first — the tick path dispatches back-to-back — then park.
        wait_for(
            || {
                shared.generation.load(Ordering::Acquire) != last_gen
                    || shared.shutdown.load(Ordering::Acquire)
            },
            shared.worker_spin,
            &shared.work_mutex,
            &shared.work_cv,
        );
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.generation.load(Ordering::Acquire) == last_gen {
            continue; // spurious park wake
        }
        last_gen = shared.generation.load(Ordering::Acquire);
        // SAFETY: the Acquire load above observed this generation's
        // Release publication, so the mailbox write is visible and no
        // writer touches it until we decrement `remaining`.
        // ppc-lint: allow(panic-path): the generation handshake publishes the task before the bump (see SAFETY)
        let task = unsafe { (*shared.task.0.get()).expect("generation implies task").0 };
        // SAFETY: `task` is valid for this whole generation (see TaskRef).
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*task)(index) }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last finisher wakes the submitter (it may be parked).
            Shared::wake(&shared.done_mutex, &shared.done_cv);
        }
    }
}

impl WorkerPool {
    /// Creates a pool with the given logical worker count (clamped to
    /// `1..=32`). The calling thread is worker 0; `workers − 1` threads
    /// are spawned.
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, MAX_WORKERS);
        // Spinning only pays when every worker owns a hardware thread;
        // oversubscribed (or single-core) machines go straight to
        // yield/park so waiters never starve the thread doing the work.
        // ppc-lint: allow(fingerprint-taint): selects spin-vs-park only; the width-invariance gate pins all fingerprints across worker counts
        let hw = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let (worker_spin, submit_spin) = if workers <= hw {
            (WORKER_SPIN, SUBMIT_SPIN)
        } else {
            (0, 0)
        };
        let shared = Arc::new(Shared {
            worker_spin,
            generation: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            task: TaskCell(UnsafeCell::new(None)),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            work_mutex: Mutex::new(()),
            work_cv: Condvar::new(),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppc-par-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    // ppc-lint: allow(panic-path): OS thread-spawn failure at pool construction is unrecoverable
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            inline_threshold: INLINE_THRESHOLD,
            submit_spin,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// Overrides the inline work-size threshold (0 forces every non-empty
    /// input through the pool — used by determinism tests).
    pub fn with_inline_threshold(mut self, items: usize) -> Self {
        self.inline_threshold = items;
        self
    }

    /// The process-wide shared pool (created on first use, sized to the
    /// available parallelism, capped at 32).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_workers()))
    }

    /// Logical worker count (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatches `task` so that `task(w)` runs exactly once for every
    /// `w in 0..self.workers`, then waits for completion. Worker 0 runs on
    /// the calling thread. Panics in any task are re-raised here, after
    /// the barrier (so no task ever outlives its referents).
    fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() || IN_PARALLEL.with(|c| c.get()) {
            // Single-worker pool, or a nested call from inside a task.
            for w in 0..self.workers {
                task(w);
            }
            return;
        }
        let _submit = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
        let shared = &*self.shared;
        // SAFETY: lifetime erasure is sound because of the completion
        // barrier below — `run` returns only after every worker finished.
        let erased = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task)
        });
        // SAFETY: no dispatch is in flight (we hold `submit` and the
        // previous barrier saw `remaining == 0`), so no worker reads the
        // mailbox until the generation bump below publishes this write.
        unsafe { *shared.task.0.get() = Some(erased) };
        shared
            .remaining
            .store(self.handles.len(), Ordering::Relaxed);
        shared.generation.fetch_add(1, Ordering::Release);
        Shared::wake(&shared.work_mutex, &shared.work_cv);
        // The caller is worker 0; its share overlaps the spawned workers.
        IN_PARALLEL.with(|c| c.set(true));
        let own = panic::catch_unwind(AssertUnwindSafe(|| task(0)));
        IN_PARALLEL.with(|c| c.set(false));
        // Completion barrier: after this, `task` is no longer referenced
        // and every worker's output writes are visible (Acquire pairs
        // with the workers' Release decrements).
        while shared.remaining.load(Ordering::Acquire) != 0 {
            wait_for(
                || shared.remaining.load(Ordering::Acquire) == 0,
                self.submit_spin,
                &shared.done_mutex,
                &shared.done_cv,
            );
        }
        let worker_panicked = shared.panicked.swap(false, Ordering::AcqRel);
        if let Err(payload) = own {
            panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "parallel worker panicked");
    }

    /// Applies `f` to every element in place; `f` receives the global
    /// index. Bit-identical to the sequential loop for any pool size.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n < self.inline_threshold.max(2) {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(self.workers.min(n));
        let base = SendPtr(items.as_mut_ptr());
        let task = move |w: usize| {
            let start = w * chunk;
            if start >= n {
                return; // pool wider than the chunk count
            }
            let len = chunk.min(n - start);
            // SAFETY: worker w exclusively owns [start, start+len); chunks
            // are disjoint and cover 0..n exactly once.
            let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
            for (j, item) in slice.iter_mut().enumerate() {
                f(start + j, item);
            }
        };
        self.run(&task);
    }

    /// Maps every element, preserving order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n < self.inline_threshold.max(2) {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
        let chunk = n.div_ceil(self.workers.min(n));
        let dst = SendPtr(out.as_mut_ptr());
        let task = move |w: usize| {
            let start = w * chunk;
            if start >= n {
                return;
            }
            let end = (start + chunk).min(n);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                let value = f(i, item);
                // SAFETY: slot i is written exactly once, by this worker.
                unsafe { dst.get().add(i).write(MaybeUninit::new(value)) };
            }
        };
        self.run(&task);
        // Every slot in 0..n was initialized (chunks cover the range; a
        // panic would have propagated out of `run` with `out` still empty,
        // leaking initialized slots rather than reading uninitialized
        // ones).
        let mut out = ManuallyDrop::new(out);
        let (ptr, cap) = (out.as_mut_ptr(), out.capacity());
        // SAFETY: n initialized elements of U in an allocation of `cap`.
        unsafe { Vec::from_raw_parts(ptr.cast::<U>(), n, cap) }
    }

    /// Parallel map followed by an ordered sequential fold: the fold runs
    /// over per-item results in index order, so non-commutative
    /// accumulation (or floating-point summation) gives the same answer
    /// as a sequential loop.
    pub fn map_reduce<T, U, A, M, R>(&self, items: &[T], map: M, init: A, mut reduce: R) -> A
    where
        T: Sync,
        U: Send,
        M: Fn(usize, &T) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        let mapped = self.map(items, map);
        let mut acc = init;
        for u in mapped {
            acc = reduce(acc, u);
        }
        acc
    }

    /// Deterministic parallel sum of `f` over `items` (ordered
    /// accumulation; bit-identical to the sequential sum).
    pub fn sum_f64<T, F>(&self, items: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        self.map_reduce(items, f, 0.0, |acc, x| acc + x)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        Shared::wake(&self.shared.work_mutex, &self.shared.work_cv);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw-pointer wrapper the dispatch closures capture to hand each worker
/// its disjoint output range. (Accessed via [`SendPtr::get`] so closures
/// capture the whole wrapper — 2021 precise capture would otherwise grab
/// the bare non-`Sync` pointer field.)
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every use partitions the pointee range disjointly per worker.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

fn default_workers() -> usize {
    // ppc-lint: allow(fingerprint-taint): picks the pool width only; results are width-invariant by construction (static chunking, index-order joins)
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_WORKERS)
}

/// Applies `f` to every element in parallel, in place, via the global
/// pool. Deterministic: chunking is static and `f` receives
/// `(global_index, item)`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    WorkerPool::global().for_each_mut(items, f);
}

/// Maps every element in parallel via the global pool, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    WorkerPool::global().map(items, f)
}

/// Parallel map followed by an ordered sequential fold (global pool).
pub fn par_map_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, reduce: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(usize, &T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    WorkerPool::global().map_reduce(items, map, init, reduce)
}

/// Deterministic parallel sum of `f` over `items` (ordered accumulation,
/// global pool).
pub fn par_sum_f64<T, F>(items: &[T], f: F) -> f64
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    WorkerPool::global().sum_f64(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut v: Vec<u64> = (0..10_000).collect();
        par_for_each_mut(&mut v, |i, x| {
            assert_eq!(*x, i as u64, "index passed to closure must be global");
            *x += 1;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn for_each_mut_handles_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        par_for_each_mut(&mut empty, |_, _| panic!("must not be called"));
        let mut one = vec![5u8];
        par_for_each_mut(&mut one, |i, x| {
            assert_eq!(i, 0);
            *x = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..5_000).collect();
        let doubled = par_map(&v, |_, &x| x * 2);
        assert_eq!(doubled.len(), v.len());
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn map_reduce_matches_sequential_float_sum() {
        // Floating-point addition is non-associative; ordered reduction must
        // agree exactly with the sequential result.
        let v: Vec<f64> = (0..4_321).map(|i| (i as f64) * 0.1 + 0.003).collect();
        let seq: f64 = v.iter().map(|x| x.sin()).sum();
        let par = par_sum_f64(&v, |_, x| x.sin());
        assert_eq!(
            seq.to_bits(),
            par.to_bits(),
            "ordered reduction must be exact"
        );
    }

    #[test]
    fn all_items_visited_in_parallel_mode() {
        let v: Vec<u32> = (0..777).collect();
        let count = AtomicUsize::new(0);
        let _ = par_map(&v, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 777);
    }

    /// Pools of every width produce the same bits as the sequential loop —
    /// the heart of the determinism contract, including float ordering.
    #[test]
    fn pool_results_invariant_across_worker_counts() {
        let inputs: Vec<f64> = (0..3_000).map(|i| (i as f64).sqrt() * 0.7 - 11.0).collect();
        let seq_sum: f64 = inputs.iter().map(|x| x.sin() * x.cos()).sum();
        let seq_map: Vec<f64> = inputs.iter().map(|x| x.tan()).collect();
        let mut seq_each = inputs.clone();
        for (i, x) in seq_each.iter_mut().enumerate() {
            *x = x.mul_add(1.0000001, i as f64 * 1e-9);
        }
        for workers in [1usize, 2, 3, 8, 32] {
            // Threshold 0 forces even tiny inputs through the pool path.
            let pool = WorkerPool::new(workers).with_inline_threshold(0);
            let sum = pool.sum_f64(&inputs, |_, x| x.sin() * x.cos());
            assert_eq!(sum.to_bits(), seq_sum.to_bits(), "sum, {workers} workers");
            let mapped = pool.map(&inputs, |_, x| x.tan());
            assert_eq!(mapped.len(), seq_map.len());
            for (a, b) in mapped.iter().zip(&seq_map) {
                assert_eq!(a.to_bits(), b.to_bits(), "map, {workers} workers");
            }
            let mut each = inputs.clone();
            pool.for_each_mut(&mut each, |i, x| *x = x.mul_add(1.0000001, i as f64 * 1e-9));
            for (a, b) in each.iter().zip(&seq_each) {
                assert_eq!(a.to_bits(), b.to_bits(), "for_each_mut, {workers} workers");
            }
        }
    }

    #[test]
    fn pool_handles_empty_and_single_inputs() {
        for workers in [1usize, 2, 7] {
            let pool = WorkerPool::new(workers).with_inline_threshold(0);
            let empty: Vec<f64> = vec![];
            assert_eq!(pool.sum_f64(&empty, |_, x| *x).to_bits(), 0f64.to_bits());
            assert!(pool.map(&empty, |_, x: &f64| *x).is_empty());
            let mut none: Vec<u8> = vec![];
            pool.for_each_mut(&mut none, |_, _| panic!("must not run"));
            let one = [2.5f64];
            assert_eq!(
                pool.sum_f64(&one, |_, x| *x * 2.0).to_bits(),
                5f64.to_bits()
            );
            assert_eq!(pool.map(&one, |i, x| (i, *x)), vec![(0, 2.5)]);
            let mut mut_one = [1u32];
            pool.for_each_mut(&mut mut_one, |i, x| *x += i as u32 + 9);
            assert_eq!(mut_one, [10]);
        }
    }

    #[test]
    fn pool_is_reused_across_many_dispatches() {
        let pool = WorkerPool::new(4).with_inline_threshold(0);
        for round in 0..200u64 {
            let v: Vec<u64> = (0..97).collect();
            let total = pool.map_reduce(&v, |_, &x| x + round, 0u64, |a, b| a + b);
            assert_eq!(total, (0..97).sum::<u64>() + 97 * round);
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let pool = WorkerPool::new(4).with_inline_threshold(0);
        let mut outer: Vec<u64> = (0..64).collect();
        pool.for_each_mut(&mut outer, |_, x| {
            // A nested global-pool call from inside a pool task must not
            // deadlock; it falls back to the inline path.
            let inner: Vec<u64> = (0..50).collect();
            *x += par_sum_f64(&inner, |_, &y| y as f64) as u64;
        });
        let inner_sum: u64 = (0..50).sum();
        assert!(outer
            .iter()
            .enumerate()
            .all(|(i, &x)| x == i as u64 + inner_sum));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4).with_inline_threshold(0);
        let v: Vec<u32> = (0..500).collect();
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_mut(&mut v.clone(), |i, _| {
                assert!(i != 437, "injected failure");
            });
        }));
        assert!(boom.is_err(), "panic must propagate to the submitter");
        // The pool must stay serviceable after a task panic.
        let sum = pool.sum_f64(&v, |_, &x| x as f64);
        assert_eq!(sum as u64, (0..500).sum::<u32>() as u64);
    }

    proptest! {
        /// Property: for arbitrary inputs and pool widths, the pool's
        /// ordered float sum and map are bit-identical to sequential.
        #[test]
        fn prop_pool_bitwise_matches_sequential(
            values in prop::collection::vec(-1e6f64..1e6, 0..300),
            workers in 1usize..9,
        ) {
            let pool = WorkerPool::new(workers).with_inline_threshold(0);
            let seq: f64 = values.iter().map(|x| x * 1.5 + 0.25).sum();
            let par = pool.sum_f64(&values, |_, x| x * 1.5 + 0.25);
            prop_assert_eq!(seq.to_bits(), par.to_bits());
            let mapped = pool.map(&values, |i, x| x + i as f64);
            let expect: Vec<f64> = values.iter().enumerate().map(|(i, x)| x + i as f64).collect();
            prop_assert_eq!(mapped.len(), expect.len());
            for (a, b) in mapped.iter().zip(&expect) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
