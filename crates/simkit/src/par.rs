//! Data-parallel helpers on crossbeam scoped threads.
//!
//! The cluster simulation advances hundreds of independent node states per
//! tick and samples them through per-node agents — classic data-parallel
//! work. These helpers follow the Rayon model (split, work-steal-free static
//! chunking, ordered results) without pulling in a full work-stealing
//! runtime: chunk boundaries are deterministic, outputs are written to
//! pre-assigned slots, and reductions fold in index order, so parallel runs
//! are bit-identical to sequential ones.

use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped so
/// tiny inputs do not pay spawn overhead.
fn worker_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).min(32)
}

/// Applies `f` to every element in parallel, in place.
///
/// Deterministic: chunking is static and `f` receives `(global_index, item)`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    crossbeam::scope(|scope| {
        for (ci, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = ci * chunk;
                for (j, item) in slice.iter_mut().enumerate() {
                    f(base + j, item);
                }
            });
        }
    })
    .expect("parallel worker panicked");
}

/// Maps every element in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    crossbeam::scope(|scope| {
        let in_chunks = items.chunks(chunk);
        let out_chunks = out.chunks_mut(chunk);
        for (ci, (ins, outs)) in in_chunks.zip(out_chunks).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = ci * chunk;
                for (j, item) in ins.iter().enumerate() {
                    outs[j] = Some(f(base + j, item));
                }
            });
        }
    })
    .expect("parallel worker panicked");
    out.into_iter()
        .map(|slot| slot.expect("every slot must be written"))
        .collect()
}

/// Parallel map followed by an ordered sequential fold.
///
/// The fold runs over per-item results in index order, so non-commutative
/// accumulation (or floating-point summation) gives the same answer as a
/// sequential loop.
pub fn par_map_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, mut reduce: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(usize, &T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    let mapped = par_map(items, map);
    let mut acc = init;
    for u in mapped {
        acc = reduce(acc, u);
    }
    acc
}

/// Deterministic parallel sum of `f` over `items` (ordered accumulation).
pub fn par_sum_f64<T, F>(items: &[T], f: F) -> f64
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    par_map_reduce(items, f, 0.0, |acc, x| acc + x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut v: Vec<u64> = (0..10_000).collect();
        par_for_each_mut(&mut v, |i, x| {
            assert_eq!(*x, i as u64, "index passed to closure must be global");
            *x += 1;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn for_each_mut_handles_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        par_for_each_mut(&mut empty, |_, _| panic!("must not be called"));
        let mut one = vec![5u8];
        par_for_each_mut(&mut one, |i, x| {
            assert_eq!(i, 0);
            *x = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..5_000).collect();
        let doubled = par_map(&v, |_, &x| x * 2);
        assert_eq!(doubled.len(), v.len());
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn map_reduce_matches_sequential_float_sum() {
        // Floating-point addition is non-associative; ordered reduction must
        // agree exactly with the sequential result.
        let v: Vec<f64> = (0..4_321).map(|i| (i as f64) * 0.1 + 0.003).collect();
        let seq: f64 = v.iter().map(|x| x.sin()).sum();
        let par = par_sum_f64(&v, |_, x| x.sin());
        assert_eq!(seq.to_bits(), par.to_bits(), "ordered reduction must be exact");
    }

    #[test]
    fn all_items_visited_in_parallel_mode() {
        let v: Vec<u32> = (0..777).collect();
        let count = AtomicUsize::new(0);
        let _ = par_map(&v, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 777);
    }
}
