//! Discrete-event priority queue with stable FIFO ordering for ties.
//!
//! `std::collections::BinaryHeap` is not stable for equal keys, which would
//! make simultaneous events fire in an unspecified order and break run
//! reproducibility. [`EventQueue`] pairs every event with a monotonically
//! increasing sequence number so that events scheduled for the same instant
//! pop in the order they were pushed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-ordered by `(time, seq)`.
#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue with FIFO semantics for simultaneous events.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popping must yield a non-decreasing time sequence, and among
        /// equal times the original push order must be preserved.
        #[test]
        fn prop_pop_order_is_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "times must be non-decreasing");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated for simultaneous events");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Every pushed payload comes back exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
