//! Per-node fault lifecycle engine.

use crate::schedule::{FaultKind, FaultSchedule};
use ppc_node::NodeId;
use ppc_simkit::SimTime;
use serde::Serialize;

/// Health of one node, as tracked by the engine.
///
/// Down dominates: a crashed node is neither hung nor silent — those
/// overlays are cleared on crash and ignored while down.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeHealth {
    /// `Some(t)` while the node is down; it reboots at `t`.
    pub down_until: Option<SimTime>,
    /// `Some(t)` while the DVFS actuator is frozen; it thaws at `t`.
    pub hung_until: Option<SimTime>,
    /// `Some(t)` while the node's telemetry is dark; it resumes at `t`.
    pub silent_until: Option<SimTime>,
    /// Instant the current outage started (accounting).
    down_since: Option<SimTime>,
}

/// An edge transition the cluster layer must react to.
///
/// Within one tick, recoveries are reported first (in node-id order), then
/// newly striking faults (in schedule order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTransition {
    /// Node lost power: evict its job, drop it from scheduling and from the
    /// candidate set.
    NodeDown(NodeId),
    /// Node rebooted: it rejoins at the lowest DVFS level.
    NodeUp(NodeId),
    /// DVFS actuator frozen: commands to this node will fail.
    HangStart(NodeId),
    /// Actuator thawed.
    HangEnd(NodeId),
    /// Telemetry dark: the agent stops producing samples.
    SilenceStart(NodeId),
    /// Telemetry restored.
    SilenceEnd(NodeId),
}

/// Availability accounting accumulated by the engine.
///
/// `node_seconds_lost` and `repair_secs_total` include outages still open
/// at the instant [`FaultEngine::stats_at`] is called.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Up→down transitions (a crash landing on an already-down node only
    /// extends the outage).
    pub crashes: u64,
    /// Hang windows started.
    pub hangs: u64,
    /// Silence windows started (partitions count once per affected node).
    pub silences: u64,
    /// Completed reboots.
    pub repairs: u64,
    /// Total node-seconds of downtime.
    pub node_seconds_lost: f64,
    /// Total seconds from crash to reboot over completed repairs (MTTR
    /// numerator).
    pub repair_secs_total: f64,
}

/// Replays a [`FaultSchedule`] against simulation time.
///
/// Call [`advance`](FaultEngine::advance) once per tick with the current
/// instant; it returns the transitions that fired. Health queries are O(1)
/// array lookups, cheap enough for per-node hot paths (power summation,
/// telemetry sweeps).
#[derive(Debug, Clone)]
pub struct FaultEngine {
    events: Vec<crate::schedule::FaultEvent>,
    next_event: usize,
    health: Vec<NodeHealth>,
    stats: FaultStats,
    transitions: Vec<FaultTransition>,
}

impl FaultEngine {
    /// Builds an engine for a `node_count`-node cluster.
    ///
    /// # Panics
    /// Panics if the schedule fails [`FaultSchedule::validate`] — an
    /// out-of-range schedule is a configuration error, not a runtime
    /// condition.
    pub fn new(schedule: &FaultSchedule, node_count: u32) -> Self {
        if let Err(msg) = schedule.validate(node_count) {
            // ppc-lint: allow(panic-path): documented constructor contract — an out-of-range schedule is a configuration error
            panic!("invalid fault schedule: {msg}");
        }
        FaultEngine {
            events: schedule.events().to_vec(),
            next_event: 0,
            health: vec![NodeHealth::default(); node_count as usize],
            stats: FaultStats::default(),
            transitions: Vec::new(),
        }
    }

    /// [`FaultEngine::advance`] with span recording: wraps the sweep in a
    /// `faults` span carrying the number of transitions that fired (the
    /// span is only opened when something fired, so quiet ticks stay out
    /// of the trace).
    pub fn advance_traced(
        &mut self,
        now: SimTime,
        spans: &mut ppc_obs::SpanRecorder,
    ) -> &[FaultTransition] {
        let fired = !self.advance(now).is_empty();
        if fired {
            spans.open("faults", now);
            spans.attr(
                "transitions",
                ppc_obs::AttrValue::U64(self.transitions.len() as u64),
            );
            spans.close(now);
        }
        &self.transitions
    }

    /// Advances to `now`, returning the transitions that fired since the
    /// previous call. Recoveries first (node-id order), then new faults
    /// (schedule order). The returned slice is valid until the next call.
    pub fn advance(&mut self, now: SimTime) -> &[FaultTransition] {
        self.transitions.clear();

        // Recoveries: scan in node-id order so the output is deterministic.
        for (i, h) in self.health.iter_mut().enumerate() {
            let node = NodeId(i as u32);
            if let Some(t) = h.down_until {
                if t <= now {
                    h.down_until = None;
                    // ppc-lint: allow(panic-path): down_until and down_since are always set together in strike_crash
                    let since = h.down_since.take().expect("down node has a start instant");
                    let lost = (now - since).as_secs_f64();
                    self.stats.node_seconds_lost += lost;
                    self.stats.repair_secs_total += lost;
                    self.stats.repairs += 1;
                    self.transitions.push(FaultTransition::NodeUp(node));
                }
            }
            if let Some(t) = h.hung_until {
                if t <= now {
                    h.hung_until = None;
                    self.transitions.push(FaultTransition::HangEnd(node));
                }
            }
            if let Some(t) = h.silent_until {
                if t <= now {
                    h.silent_until = None;
                    self.transitions.push(FaultTransition::SilenceEnd(node));
                }
            }
        }

        // Newly striking faults.
        while self.next_event < self.events.len() && self.events[self.next_event].at <= now {
            let e = self.events[self.next_event];
            self.next_event += 1;
            match e.kind {
                FaultKind::Crash { reboot } => self.strike_crash(e.node, now + reboot, now),
                FaultKind::Hang { duration } => {
                    let h = &mut self.health[e.node.0 as usize];
                    if h.down_until.is_some() {
                        continue; // down dominates
                    }
                    let until = now + duration;
                    let fresh = h.hung_until.is_none();
                    h.hung_until = Some(h.hung_until.map_or(until, |t| t.max(until)));
                    if fresh {
                        self.stats.hangs += 1;
                        self.transitions.push(FaultTransition::HangStart(e.node));
                    }
                }
                FaultKind::AgentSilence { duration } => self.strike_silence(e.node, now + duration),
                FaultKind::SubtreePartition { width, duration } => {
                    for n in e.node.0..e.node.0 + width {
                        self.strike_silence(NodeId(n), now + duration);
                    }
                }
            }
        }

        &self.transitions
    }

    fn strike_crash(&mut self, node: NodeId, until: SimTime, now: SimTime) {
        let h = &mut self.health[node.0 as usize];
        if let Some(down_until) = h.down_until {
            // Already down: the new crash only extends the outage.
            h.down_until = Some(down_until.max(until));
            return;
        }
        // Down dominates any hang/silence overlay.
        if h.hung_until.take().is_some() {
            self.transitions.push(FaultTransition::HangEnd(node));
        }
        if h.silent_until.take().is_some() {
            self.transitions.push(FaultTransition::SilenceEnd(node));
        }
        h.down_until = Some(until);
        h.down_since = Some(now);
        self.stats.crashes += 1;
        self.transitions.push(FaultTransition::NodeDown(node));
    }

    fn strike_silence(&mut self, node: NodeId, until: SimTime) {
        let h = &mut self.health[node.0 as usize];
        if h.down_until.is_some() {
            return; // down dominates
        }
        let fresh = h.silent_until.is_none();
        h.silent_until = Some(h.silent_until.map_or(until, |t| t.max(until)));
        if fresh {
            self.stats.silences += 1;
            self.transitions.push(FaultTransition::SilenceStart(node));
        }
    }

    /// True if the node is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.health[node.0 as usize].down_until.is_some()
    }

    /// True if the node's DVFS actuator is currently frozen.
    pub fn is_hung(&self, node: NodeId) -> bool {
        self.health[node.0 as usize].hung_until.is_some()
    }

    /// True if the node's telemetry is currently dark (explicit silence or
    /// partition; down nodes are dark too, but report via [`is_down`]).
    ///
    /// [`is_down`]: FaultEngine::is_down
    pub fn is_silent(&self, node: NodeId) -> bool {
        self.health[node.0 as usize].silent_until.is_some()
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| h.down_until.is_some())
            .count()
    }

    /// Health record for one node.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.health[node.0 as usize]
    }

    /// Availability accounting as of `now`, charging outages still open at
    /// `now` for the time they have already lasted.
    pub fn stats_at(&self, now: SimTime) -> FaultStats {
        let mut s = self.stats;
        for h in &self.health {
            if h.down_until.is_some() {
                // ppc-lint: allow(panic-path): down_until and down_since are always set together in strike_crash
                let since = h.down_since.expect("down node has a start instant");
                s.node_seconds_lost += (now - since).as_secs_f64();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultSchedule};
    use ppc_simkit::SimDuration;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn crash_lifecycle_and_accounting() {
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: secs(5),
            node: NodeId(1),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(10),
            },
        }]);
        let mut eng = FaultEngine::new(&sched, 4);

        assert!(eng.advance(secs(4)).is_empty());
        assert_eq!(
            eng.advance(secs(5)),
            &[FaultTransition::NodeDown(NodeId(1))]
        );
        assert!(eng.is_down(NodeId(1)));
        assert!(eng.advance(secs(14)).is_empty());
        // Mid-outage stats charge the open outage.
        assert!((eng.stats_at(secs(14)).node_seconds_lost - 9.0).abs() < 1e-9);
        assert_eq!(eng.advance(secs(15)), &[FaultTransition::NodeUp(NodeId(1))]);
        assert!(!eng.is_down(NodeId(1)));

        let s = eng.stats_at(secs(20));
        assert_eq!((s.crashes, s.repairs), (1, 1));
        assert!((s.node_seconds_lost - 10.0).abs() < 1e-9);
        assert!((s.repair_secs_total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn crash_clears_hang_and_silence_overlays() {
        let sched = FaultSchedule::new(vec![
            FaultEvent {
                at: secs(1),
                node: NodeId(0),
                kind: FaultKind::Hang {
                    duration: SimDuration::from_secs(100),
                },
            },
            FaultEvent {
                at: secs(1),
                node: NodeId(0),
                kind: FaultKind::AgentSilence {
                    duration: SimDuration::from_secs(100),
                },
            },
            FaultEvent {
                at: secs(2),
                node: NodeId(0),
                kind: FaultKind::Crash {
                    reboot: SimDuration::from_secs(5),
                },
            },
        ]);
        let mut eng = FaultEngine::new(&sched, 1);
        eng.advance(secs(1));
        assert!(eng.is_hung(NodeId(0)) && eng.is_silent(NodeId(0)));
        let tr = eng.advance(secs(2)).to_vec();
        assert!(tr.contains(&FaultTransition::HangEnd(NodeId(0))));
        assert!(tr.contains(&FaultTransition::SilenceEnd(NodeId(0))));
        assert!(tr.contains(&FaultTransition::NodeDown(NodeId(0))));
        assert!(!eng.is_hung(NodeId(0)) && !eng.is_silent(NodeId(0)));
        // The stale hang/silence recoveries do not re-fire after reboot.
        assert_eq!(eng.advance(secs(7)), &[FaultTransition::NodeUp(NodeId(0))]);
    }

    #[test]
    fn partition_darkens_the_whole_subtree_once() {
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: secs(3),
            node: NodeId(4),
            kind: FaultKind::SubtreePartition {
                width: 4,
                duration: SimDuration::from_secs(6),
            },
        }]);
        let mut eng = FaultEngine::new(&sched, 8);
        let tr = eng.advance(secs(3)).to_vec();
        assert_eq!(tr.len(), 4);
        for n in 4..8u32 {
            assert!(tr.contains(&FaultTransition::SilenceStart(NodeId(n))));
            assert!(eng.is_silent(NodeId(n)));
        }
        assert!(!eng.is_silent(NodeId(0)));
        let tr = eng.advance(secs(9)).to_vec();
        assert_eq!(tr.len(), 4);
        assert!(tr.contains(&FaultTransition::SilenceEnd(NodeId(7))));
        assert_eq!(eng.stats_at(secs(9)).silences, 4);
    }

    #[test]
    fn overlapping_silences_extend_instead_of_restarting() {
        let sched = FaultSchedule::new(vec![
            FaultEvent {
                at: secs(1),
                node: NodeId(0),
                kind: FaultKind::AgentSilence {
                    duration: SimDuration::from_secs(10),
                },
            },
            FaultEvent {
                at: secs(5),
                node: NodeId(0),
                kind: FaultKind::AgentSilence {
                    duration: SimDuration::from_secs(2),
                },
            },
        ]);
        let mut eng = FaultEngine::new(&sched, 1);
        assert_eq!(eng.advance(secs(1)).len(), 1);
        assert!(
            eng.advance(secs(5)).is_empty(),
            "overlap does not re-announce"
        );
        assert!(
            eng.advance(secs(7)).is_empty(),
            "shorter overlap does not cut the window"
        );
        assert_eq!(
            eng.advance(secs(11)),
            &[FaultTransition::SilenceEnd(NodeId(0))]
        );
        assert_eq!(eng.stats_at(secs(11)).silences, 1);
    }
}
