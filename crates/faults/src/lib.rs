//! Deterministic fault injection for the power-provision simulator.
//!
//! The paper's architecture (§3–§6) assumes a large machine in which nodes
//! crash, reboot, hang, and fall silent as a matter of course; the control
//! stack must keep the cluster under its provisioned power while the
//! telemetry it steers by is partially dark. This crate supplies the fault
//! side of that contract:
//!
//! * [`FaultSchedule`] — a seeded, serializable list of [`FaultEvent`]s.
//!   Schedules are either written out explicitly (regression tests, paper
//!   scenarios) or generated from per-class rates ([`FaultRates`]) using a
//!   dedicated `simkit` RNG stream, so a `(seed, rates)` pair always expands
//!   to the identical event list regardless of thread count or platform.
//! * [`FaultEngine`] — a per-node lifecycle state machine that replays a
//!   schedule against simulation time. Each tick it reports the edge
//!   transitions ([`FaultTransition`]) the cluster layer must react to
//!   (evict jobs, mark nodes offline, skip telemetry) and answers O(1)
//!   health queries (`is_down` / `is_hung` / `is_silent`).
//! * [`FaultStats`] — availability accounting (crash count, node-seconds
//!   lost, repair-time totals) that `metrics::availability` turns into the
//!   normalized report benchmarks compare across policies.
//!
//! Fault classes model the distinct failure surfaces of the architecture:
//!
//! | class                        | node state        | telemetry | DVFS actuator |
//! |------------------------------|-------------------|-----------|---------------|
//! | [`FaultKind::Crash`]         | down, then reboot | dark      | dead          |
//! | [`FaultKind::Hang`]          | up, running       | live      | frozen        |
//! | [`FaultKind::AgentSilence`]  | up, running       | dark      | live          |
//! | [`FaultKind::SubtreePartition`] | up, running    | dark (whole subtree) | live |

mod engine;
mod schedule;

pub use engine::{FaultEngine, FaultStats, FaultTransition, NodeHealth};
pub use schedule::{FaultEvent, FaultInjection, FaultKind, FaultRates, FaultSchedule};
