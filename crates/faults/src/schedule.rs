//! Fault schedules: explicit event lists and rate-based generation.

use ppc_node::NodeId;
use ppc_simkit::{RngFactory, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One class of injected fault, with its duration parameters.
///
/// Durations are spans from the event's start time; the engine computes the
/// recovery instant when the event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Node loses power: its job is killed, telemetry goes dark, the DVFS
    /// actuator is dead. After `reboot` elapses the node rejoins.
    Crash {
        /// Time from crash to the node reporting back up.
        reboot: SimDuration,
    },
    /// Node keeps running its job and reporting telemetry, but the DVFS
    /// actuator is frozen: every `set_level` command fails until the hang
    /// clears.
    Hang {
        /// Span during which actuation fails.
        duration: SimDuration,
    },
    /// The profiling agent stops reporting (node up, job running, actuator
    /// live). The collector's view of this node goes stale.
    AgentSilence {
        /// Span during which no samples arrive.
        duration: SimDuration,
    },
    /// A management-network partition isolates an aggregation subtree:
    /// `width` consecutive nodes starting at the event's node go
    /// telemetry-dark at once. Nodes keep running and accept commands
    /// (commands ride the job-launch fabric in the paper's deployment).
    SubtreePartition {
        /// Number of consecutive nodes (the subtree fan-in) cut off.
        width: u32,
        /// Span of the partition.
        duration: SimDuration,
    },
}

/// A single scheduled fault: at `at`, `kind` strikes `node`.
///
/// For [`FaultKind::SubtreePartition`], `node` is the first node of the
/// partitioned subtree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation instant the fault strikes.
    pub at: SimTime,
    /// Target node (subtree head for partitions).
    pub node: NodeId,
    /// Fault class and duration.
    pub kind: FaultKind,
}

/// Per-class fault rates for generated schedules.
///
/// Rates are expressed the way operators quote them: events per node-hour
/// (cluster-hour for partitions). Durations are exponentially distributed
/// around the configured means, floored at one second so every fault is
/// observable at the 1 s tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Crashes per node-hour.
    pub crash_per_node_hour: f64,
    /// Mean reboot time after a crash, seconds.
    pub reboot_mean_secs: f64,
    /// Hangs per node-hour.
    pub hang_per_node_hour: f64,
    /// Mean hang span, seconds.
    pub hang_mean_secs: f64,
    /// Agent-silence windows per node-hour.
    pub silence_per_node_hour: f64,
    /// Mean silence span, seconds.
    pub silence_mean_secs: f64,
    /// Subtree partitions per cluster-hour.
    pub partition_per_hour: f64,
    /// Mean partition span, seconds.
    pub partition_mean_secs: f64,
    /// Subtree width used for generated partitions (management-ethernet
    /// fan-in in the paper's tree is 16).
    pub partition_width: u32,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            crash_per_node_hour: 0.0,
            reboot_mean_secs: 120.0,
            hang_per_node_hour: 0.0,
            hang_mean_secs: 60.0,
            silence_per_node_hour: 0.0,
            silence_mean_secs: 30.0,
            partition_per_hour: 0.0,
            partition_mean_secs: 45.0,
            partition_width: 16,
        }
    }
}

impl FaultRates {
    /// Convenience: a crash-only rate set (`rate` crashes per node-hour).
    pub fn crashes(rate: f64) -> Self {
        FaultRates {
            crash_per_node_hour: rate,
            ..FaultRates::default()
        }
    }
}

/// A complete, sorted fault schedule.
///
/// The schedule is plain data — `(seed, rates)` expand to the same event
/// list on every platform and at every worker-pool width — and serializes
/// losslessly, so a failing run's schedule can be committed as a regression
/// fixture.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events, sorting by `(at, node)`.
    /// Ties keep their input order (stable sort).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.node));
        FaultSchedule { events }
    }

    /// Generates a schedule from per-class rates over `[0, horizon)`.
    ///
    /// Each (class, node) pair draws from its own named RNG stream of
    /// `factory`, so the events scheduled for node `k` do not depend on the
    /// cluster size and adding a class never perturbs another class's draws.
    /// Inter-arrival times and durations are exponential.
    pub fn generate(
        rates: &FaultRates,
        node_count: u32,
        horizon: SimDuration,
        factory: &RngFactory,
    ) -> Self {
        let horizon_secs = horizon.as_secs_f64();
        let mut events = Vec::new();

        let per_node = |label: &str,
                        per_hour: f64,
                        mean_secs: f64,
                        f: &mut dyn FnMut(SimTime, NodeId, SimDuration)| {
            if per_hour <= 0.0 {
                return;
            }
            let mean_gap_secs = 3_600.0 / per_hour;
            for node in 0..node_count {
                let mut rng = factory.stream(label, u64::from(node));
                let mut t = rng.exponential(mean_gap_secs);
                while t < horizon_secs {
                    let span = SimDuration::from_secs_f64(rng.exponential(mean_secs).max(1.0));
                    f(
                        SimTime::ZERO + SimDuration::from_secs_f64(t),
                        NodeId(node),
                        span,
                    );
                    t += rng.exponential(mean_gap_secs);
                }
            }
        };

        per_node(
            "fault.crash",
            rates.crash_per_node_hour,
            rates.reboot_mean_secs,
            &mut |at, node, reboot| {
                events.push(FaultEvent {
                    at,
                    node,
                    kind: FaultKind::Crash { reboot },
                })
            },
        );
        per_node(
            "fault.hang",
            rates.hang_per_node_hour,
            rates.hang_mean_secs,
            &mut |at, node, duration| {
                events.push(FaultEvent {
                    at,
                    node,
                    kind: FaultKind::Hang { duration },
                })
            },
        );
        per_node(
            "fault.silence",
            rates.silence_per_node_hour,
            rates.silence_mean_secs,
            &mut |at, node, duration| {
                events.push(FaultEvent {
                    at,
                    node,
                    kind: FaultKind::AgentSilence { duration },
                })
            },
        );

        if rates.partition_per_hour > 0.0 && rates.partition_width > 0 {
            let width = rates.partition_width.min(node_count.max(1));
            let subtrees = u64::from(node_count.div_ceil(width)).max(1);
            let mean_gap_secs = 3_600.0 / rates.partition_per_hour;
            let mut rng = factory.stream("fault.partition", 0);
            let mut t = rng.exponential(mean_gap_secs);
            while t < horizon_secs {
                let head = NodeId(rng.below(subtrees) as u32 * width);
                // The tail subtree may be narrower than `width` when the
                // node count is not a multiple of it.
                let width = width.min(node_count - head.0);
                let span =
                    SimDuration::from_secs_f64(rng.exponential(rates.partition_mean_secs).max(1.0));
                events.push(FaultEvent {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                    node: head,
                    kind: FaultKind::SubtreePartition {
                        width,
                        duration: span,
                    },
                });
                t += rng.exponential(mean_gap_secs);
            }
        }

        FaultSchedule::new(events)
    }

    /// The events, sorted by `(at, node)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event targets a node inside `[0, node_count)`
    /// (partitions: the whole `[node, node + width)` range) and has a
    /// positive duration.
    pub fn validate(&self, node_count: u32) -> Result<(), String> {
        for e in &self.events {
            let (last, span) = match e.kind {
                FaultKind::Crash { reboot } => (e.node.0, reboot),
                FaultKind::Hang { duration } => (e.node.0, duration),
                FaultKind::AgentSilence { duration } => (e.node.0, duration),
                FaultKind::SubtreePartition { width, duration } => {
                    if width == 0 {
                        return Err(format!("partition at {:?} has zero width", e.at));
                    }
                    (e.node.0 + width - 1, duration)
                }
            };
            if last >= node_count {
                return Err(format!(
                    "fault at {:?} targets node {} but cluster has {} nodes",
                    e.at, last, node_count
                ));
            }
            if span.is_zero() {
                return Err(format!(
                    "fault at {:?} on node {} has zero duration",
                    e.at, e.node.0
                ));
            }
        }
        Ok(())
    }
}

/// A fault plan plus the robustness knobs the cluster layer applies while
/// executing it. This is what an experiment config embeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// The fault schedule to replay.
    pub schedule: FaultSchedule,
    /// How many times a job may be requeued after losing a node before it
    /// is recorded as failed and dropped.
    pub requeue_cap: u32,
    /// A collector sample older than this is treated as stale: the node is
    /// excluded from capping selection until fresh telemetry returns.
    pub staleness_limit: SimDuration,
}

impl FaultInjection {
    /// Wraps a schedule with the default robustness knobs
    /// (requeue cap 3, staleness limit 5 s).
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjection {
            schedule,
            requeue_cap: 3,
            staleness_limit: SimDuration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let rates = FaultRates {
            crash_per_node_hour: 0.5,
            hang_per_node_hour: 0.3,
            silence_per_node_hour: 1.0,
            partition_per_hour: 2.0,
            partition_width: 4,
            ..FaultRates::default()
        };
        let a =
            FaultSchedule::generate(&rates, 16, SimDuration::from_hours(2), &RngFactory::new(7));
        let b =
            FaultSchedule::generate(&rates, 16, SimDuration::from_hours(2), &RngFactory::new(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .events()
            .windows(2)
            .all(|w| (w[0].at, w[0].node) <= (w[1].at, w[1].node)));
        a.validate(16).expect("generated schedule is in range");

        let c =
            FaultSchedule::generate(&rates, 16, SimDuration::from_hours(2), &RngFactory::new(8));
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn generated_partitions_fit_clusters_of_any_size() {
        // The tail subtree is narrower when the node count is not a
        // multiple of the partition width; the generator must clamp it.
        let rates = FaultRates {
            partition_per_hour: 20.0,
            partition_width: 4,
            ..FaultRates::default()
        };
        for nodes in [2u32, 3, 5, 7, 9] {
            let s = FaultSchedule::generate(
                &rates,
                nodes,
                SimDuration::from_hours(2),
                &RngFactory::new(11),
            );
            s.validate(nodes).expect("partitions clamp to the cluster");
        }
    }

    #[test]
    fn per_node_streams_are_stable_under_cluster_growth() {
        let rates = FaultRates::crashes(1.0);
        let small =
            FaultSchedule::generate(&rates, 4, SimDuration::from_hours(1), &RngFactory::new(3));
        let large =
            FaultSchedule::generate(&rates, 8, SimDuration::from_hours(1), &RngFactory::new(3));
        let small_only: Vec<_> = large
            .events()
            .iter()
            .filter(|e| e.node.0 < 4)
            .copied()
            .collect();
        assert_eq!(small.events(), small_only.as_slice());
    }

    #[test]
    fn validate_rejects_out_of_range_and_zero_span() {
        let s = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(1),
            node: NodeId(5),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(10),
            },
        }]);
        assert!(s.validate(5).is_err());
        assert!(s.validate(6).is_ok());

        let p = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(1),
            node: NodeId(4),
            kind: FaultKind::SubtreePartition {
                width: 4,
                duration: SimDuration::from_secs(9),
            },
        }]);
        assert!(p.validate(7).is_err());
        assert!(p.validate(8).is_ok());

        let z = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(1),
            node: NodeId(0),
            kind: FaultKind::Hang {
                duration: SimDuration::ZERO,
            },
        }]);
        assert!(z.validate(4).is_err());
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let rates = FaultRates {
            crash_per_node_hour: 1.0,
            partition_per_hour: 1.0,
            ..FaultRates::default()
        };
        let s =
            FaultSchedule::generate(&rates, 8, SimDuration::from_hours(1), &RngFactory::new(11));
        let text = serde_json::to_string(&s).expect("serialize");
        let back: FaultSchedule = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(s, back);
    }
}
