//! Assembled run metrics and baseline normalization.
//!
//! Figures 6 and 7 present every measurement *normalized against the
//! unmanaged run* (candidate-set size 0): [`RunMetrics`] captures one
//! run's absolute numbers, [`RunMetrics::normalize_against`] produces the
//! ratios the figures plot.

use crate::{cplj, energy, overspend, peak, performance};
use ppc_simkit::TimeSeries;
use ppc_workload::JobRecord;
use serde::{Deserialize, Serialize};

/// Absolute metrics of one experimental run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Label (policy name, sweep point, …).
    pub label: String,
    /// `Performance(cap)` ∈ (0, 1].
    pub performance: f64,
    /// Count of performance-lossless jobs.
    pub cplj: usize,
    /// Lossless fraction ∈ [0, 1].
    pub cplj_fraction: f64,
    /// Finished-job count `J`.
    pub jobs_finished: usize,
    /// Peak power `P_max`, watts.
    pub p_max_w: f64,
    /// Time-weighted mean power, watts.
    pub p_mean_w: f64,
    /// ΔP×T against the provision threshold.
    pub overspend: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Fraction of time above the provision threshold.
    pub time_above: f64,
}

impl RunMetrics {
    /// Computes all metrics from a power trace and job records.
    ///
    /// `p_th_w` is the provision capability used by ΔP×T;
    /// `lossless_tolerance` the CPLJ tick-quantization allowance.
    pub fn compute(
        label: impl Into<String>,
        trace: &TimeSeries,
        records: &[JobRecord],
        p_th_w: f64,
        lossless_tolerance: f64,
    ) -> Self {
        RunMetrics {
            label: label.into(),
            performance: performance::performance(records),
            cplj: cplj::cplj(records, lossless_tolerance),
            cplj_fraction: cplj::cplj_fraction(records, lossless_tolerance),
            jobs_finished: records.len(),
            p_max_w: peak::peak_power_w(trace),
            p_mean_w: peak::mean_power_w(trace),
            overspend: overspend::overspend_ratio(trace, p_th_w),
            energy_j: energy::total_energy_j(trace),
            time_above: overspend::time_above_fraction(trace, p_th_w),
        }
    }

    /// Normalizes against a baseline (typically the unmanaged run).
    pub fn normalize_against(&self, baseline: &RunMetrics) -> NormalizedMetrics {
        let ratio = |v: f64, b: f64| if b > 0.0 { v / b } else { 0.0 };
        NormalizedMetrics {
            label: self.label.clone(),
            performance: ratio(self.performance, baseline.performance),
            p_max: ratio(self.p_max_w, baseline.p_max_w),
            overspend: ratio(self.overspend, baseline.overspend),
            cplj_fraction: ratio(self.cplj_fraction, baseline.cplj_fraction),
            energy: ratio(self.energy_j, baseline.energy_j),
        }
    }
}

/// Ratios of one run's metrics over a baseline run's (1.0 = unchanged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedMetrics {
    /// Label of the normalized run.
    pub label: String,
    /// Performance ratio.
    pub performance: f64,
    /// `P_max` ratio.
    pub p_max: f64,
    /// ΔP×T ratio.
    pub overspend: f64,
    /// CPLJ-fraction ratio.
    pub cplj_fraction: f64,
    /// Energy ratio.
    pub energy: f64,
}

#[cfg(any(test, feature = "testutil"))]
pub mod testutil {
    //! Record fixtures shared by the metric tests.
    use ppc_simkit::SimTime;
    use ppc_workload::app::{Class, NpbApp};
    use ppc_workload::{JobId, JobPriority, JobRecord};

    /// A finished-job record with the given baseline and actual seconds.
    pub fn record(id: u64, baseline: f64, actual: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            app: NpbApp::Ep,
            class: Class::D,
            nprocs: 8,
            node_count: 1,
            nodes: Vec::new(),
            priority: JobPriority::Normal,
            submitted_at: SimTime::ZERO,
            started_at: SimTime::ZERO,
            finished_at: SimTime::from_millis((actual * 1000.0).round() as u64),
            baseline_secs: baseline,
            actual_secs: actual,
            throttled_secs: (actual - baseline).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::record;
    use super::*;
    use ppc_simkit::SimTime;

    fn trace(samples: &[(u64, f64)]) -> TimeSeries {
        let mut t = TimeSeries::new();
        for &(s, v) in samples {
            t.push(SimTime::from_secs(s), v);
        }
        t
    }

    #[test]
    fn compute_assembles_all_fields() {
        let t = trace(&[(0, 120.0), (10, 80.0), (20, 80.0)]);
        let records = vec![record(1, 10.0, 10.0), record(2, 10.0, 20.0)];
        let m = RunMetrics::compute("MPC", &t, &records, 100.0, 0.01);
        assert_eq!(m.label, "MPC");
        assert!((m.performance - 0.75).abs() < 1e-12);
        assert_eq!(m.cplj, 1);
        assert_eq!(m.jobs_finished, 2);
        assert_eq!(m.p_max_w, 120.0);
        assert!((m.overspend - 0.1).abs() < 1e-12);
        assert_eq!(m.energy_j, 2_000.0);
    }

    #[test]
    fn normalization_gives_unit_self_ratio() {
        let t = trace(&[(0, 120.0), (10, 80.0), (20, 80.0)]);
        let records = vec![record(1, 10.0, 10.0)];
        let m = RunMetrics::compute("x", &t, &records, 100.0, 0.01);
        let n = m.normalize_against(&m);
        assert!((n.performance - 1.0).abs() < 1e-12);
        assert!((n.p_max - 1.0).abs() < 1e-12);
        assert!((n.overspend - 1.0).abs() < 1e-12);
        assert!((n.energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_shows_capping_wins() {
        let uncapped = RunMetrics::compute(
            "none",
            &trace(&[(0, 150.0), (10, 150.0), (20, 100.0), (30, 100.0)]),
            &[record(1, 10.0, 10.0)],
            120.0,
            0.01,
        );
        let capped = RunMetrics::compute(
            "MPC",
            &trace(&[(0, 125.0), (10, 125.0), (20, 100.0), (30, 100.0)]),
            &[record(1, 10.0, 10.5)],
            120.0,
            0.01,
        );
        let n = capped.normalize_against(&uncapped);
        assert!(n.p_max < 1.0, "peak reduced");
        assert!(n.overspend < 1.0, "ΔP×T reduced");
        assert!(n.performance <= 1.0, "performance not inflated");
    }

    #[test]
    fn zero_baseline_fields_normalize_to_zero() {
        let idle = RunMetrics::compute("idle", &TimeSeries::new(), &[], 100.0, 0.01);
        let n = idle.normalize_against(&idle);
        assert_eq!(n.p_max, 0.0);
        assert_eq!(n.overspend, 0.0);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let m = RunMetrics::compute("HRI", &TimeSeries::new(), &[], 90.0, 0.01);
        assert_eq!(m.performance, 1.0);
        assert_eq!(m.cplj_fraction, 1.0);
        assert_eq!(m.jobs_finished, 0);
        assert_eq!(m.p_max_w, 0.0);
        assert_eq!(m.overspend, 0.0);
    }
}
