//! # ppc-metrics — the paper's evaluation metrics
//!
//! Section V.C defines four measurements, all implemented here:
//!
//! 1. [`performance::performance`] — `Performance(cap) = (1/J) Σ T_j / T_cap,j`,
//!    the mean per-job slowdown ratio (1.0 = no loss);
//! 2. [`cplj::cplj`] — *Count of Performance-Lossless Jobs*: finished jobs
//!    whose capped runtime equals their unmanaged runtime;
//! 3. [`peak::peak_power_w`] — `P_max`, the highest observed power;
//! 4. [`overspend::overspend_ratio`] — the paper's new `ΔP×T` metric: the
//!    energy above the provision threshold over the total energy,
//!    `∫_{P>P_th}(P−P_th)dt / ∫P dt` — the accumulated thermal damage of
//!    overspending the budget.
//!
//! [`energy`] adds the related-work metrics the paper surveys (energy,
//!    `E·Dⁿ`, work-per-joule) and [`report`] assembles everything into one
//!    [`report::RunMetrics`] with normalization against an unmanaged
//!    baseline (how Figures 6 and 7 are presented).

pub mod availability;
pub mod bootstrap;
pub mod cplj;
pub mod energy;
pub mod overspend;
pub mod peak;
pub mod performance;
pub mod report;

pub use availability::{AvailabilityInputs, AvailabilityReport};
pub use bootstrap::{
    bootstrap_mean_ci, summarize_replications, ConfidenceInterval, ReplicationSummary,
};
pub use report::{NormalizedMetrics, RunMetrics};
