//! CPLJ — *Count of Performance-Lossless Jobs*.
//!
//! Counts finished jobs whose execution time under power management equals
//! their full-power execution time. Higher means the capping policy
//! touched fewer jobs — the dimension on which the paper finds MPC beats
//! HRI by ~1.4% (MPC keeps punishing the same big job; HRI spreads
//! degradation over every job that ramps).

use ppc_workload::JobRecord;

/// Default tolerance absorbing control-tick quantization of finish times.
pub const DEFAULT_TOLERANCE: f64 = 0.01;

/// Counts lossless jobs at the given relative tolerance.
pub fn cplj(records: &[JobRecord], tolerance: f64) -> usize {
    records.iter().filter(|r| r.is_lossless(tolerance)).count()
}

/// Lossless fraction in [0, 1] (1.0 for an empty set).
pub fn cplj_fraction(records: &[JobRecord], tolerance: f64) -> f64 {
    if records.is_empty() {
        return 1.0;
    }
    cplj(records, tolerance) as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::testutil::record;

    #[test]
    fn counts_exact_and_tolerated() {
        let records = vec![
            record(1, 100.0, 100.0), // lossless
            record(2, 100.0, 100.5), // within 1%
            record(3, 100.0, 150.0), // lossy
        ];
        assert_eq!(cplj(&records, 0.0), 1);
        assert_eq!(cplj(&records, DEFAULT_TOLERANCE), 2);
        assert!((cplj_fraction(&records, DEFAULT_TOLERANCE) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_fraction_is_one() {
        assert_eq!(cplj(&[], 0.0), 0);
        assert_eq!(cplj_fraction(&[], 0.0), 1.0);
    }
}
