//! Bootstrap confidence intervals.
//!
//! The paper reports point estimates from one 12-hour run. For the
//! replication harness we quantify uncertainty two ways:
//!
//! * [`bootstrap_mean_ci`] — a percentile-bootstrap CI for a statistic of
//!   per-job values within one run (e.g. the mean performance ratio);
//! * [`summarize_replications`] — mean ± sample standard deviation across
//!   independent seeds.
//!
//! The resampler uses a seeded [`DetRng`], so reported intervals are as
//! reproducible as everything else.

use ppc_simkit::{DetRng, RunningStats};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Percentile-bootstrap CI for the mean of `values`.
///
/// # Panics
/// Panics if `values` is empty, `resamples == 0`, or `level ∉ (0, 1)`.
pub fn bootstrap_mean_ci(
    values: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut DetRng,
) -> ConfidenceInterval {
    assert!(!values.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += values[rng.index(n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| {
        (((resamples - 1) as f64) * q)
            .round()
            .clamp(0.0, (resamples - 1) as f64) as usize
    };
    ConfidenceInterval {
        mean,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
        level,
    }
}

/// Mean ± sample standard deviation over replication results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Mean over replications.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of replications.
    pub n: usize,
}

/// Summarizes one metric across independent replications.
///
/// # Panics
/// Panics if `values` is empty.
pub fn summarize_replications(values: &[f64]) -> ReplicationSummary {
    assert!(!values.is_empty(), "no replications to summarize");
    let mut stats = RunningStats::new();
    for &v in values {
        stats.push(v);
    }
    let n = values.len();
    let sample_var = if n > 1 {
        stats.variance() * n as f64 / (n - 1) as f64
    } else {
        0.0
    };
    ReplicationSummary {
        mean: stats.mean(),
        std_dev: sample_var.sqrt(),
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::RngFactory;

    fn rng() -> DetRng {
        RngFactory::new(17).stream("bootstrap-test", 0)
    }

    #[test]
    fn ci_brackets_the_true_mean_of_a_clean_sample() {
        let values: Vec<f64> = (0..200).map(|i| 10.0 + (i % 7) as f64).collect();
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let ci = bootstrap_mean_ci(&values, 1_000, 0.95, &mut rng());
        assert!((ci.mean - true_mean).abs() < 1e-12);
        assert!(ci.contains(true_mean));
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.half_width() < 0.5, "tight sample ⇒ tight CI");
    }

    #[test]
    fn wider_spread_gives_wider_ci() {
        let tight: Vec<f64> = (0..100).map(|i| 50.0 + (i % 3) as f64).collect();
        let wide: Vec<f64> = (0..100).map(|i| 50.0 + (i % 3) as f64 * 30.0).collect();
        let ci_tight = bootstrap_mean_ci(&tight, 500, 0.95, &mut rng());
        let ci_wide = bootstrap_mean_ci(&wide, 500, 0.95, &mut rng());
        assert!(ci_wide.half_width() > ci_tight.half_width() * 5.0);
    }

    #[test]
    fn ci_is_deterministic_for_a_seeded_rng() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&values, 300, 0.9, &mut rng());
        let b = bootstrap_mean_ci(&values, 300, 0.9, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn single_value_sample_degenerates_cleanly() {
        let ci = bootstrap_mean_ci(&[42.0], 100, 0.95, &mut rng());
        assert_eq!(ci.mean, 42.0);
        assert_eq!(ci.lo, 42.0);
        assert_eq!(ci.hi, 42.0);
    }

    #[test]
    fn replication_summary_matches_hand_math() {
        let s = summarize_replications(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!(
            (s.std_dev - 2.0).abs() < 1e-12,
            "sample std of [2,4,6] is 2"
        );
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.n, 3);
        let one = summarize_replications(&[5.0]);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        bootstrap_mean_ci(&[], 10, 0.95, &mut rng());
    }
}
