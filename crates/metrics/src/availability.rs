//! Availability metrics under fault injection.
//!
//! The capping metrics (`Performance`, CPLJ, ΔP×T) measure how much the
//! power manager costs a healthy machine; this module measures how the
//! whole stack behaves on an unhealthy one. All inputs are plain counters
//! so the module has no dependency on the fault engine itself — the
//! cluster layer gathers them and calls [`AvailabilityReport::compute`].

use serde::{Deserialize, Serialize};

/// Raw fault/robustness counters gathered over one run window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityInputs {
    /// Node crashes (up→down transitions).
    pub crashes: u64,
    /// Actuator-hang windows.
    pub hangs: u64,
    /// Telemetry-silence windows (partitions count per affected node).
    pub silences: u64,
    /// Completed reboots.
    pub repairs: u64,
    /// Total node-seconds of downtime (open outages included).
    pub node_seconds_lost: f64,
    /// Total crash-to-reboot seconds over completed repairs.
    pub repair_secs_total: f64,
    /// Jobs evicted and successfully requeued.
    pub jobs_requeued: u64,
    /// Jobs dropped after exhausting the requeue cap.
    pub jobs_failed: u64,
    /// DVFS commands that failed (dead or frozen actuator) and were handed
    /// to the retry path.
    pub commands_failed: u64,
    /// Control cycles classified Red over the window.
    pub red_cycles: u64,
    /// Control cycles run in the conservative degraded-telemetry mode.
    pub conservative_cycles: u64,
    /// Total control cycles over the window.
    pub total_cycles: u64,
    /// Nodes in the cluster.
    pub node_count: u32,
    /// Window length, seconds.
    pub window_secs: f64,
}

/// The normalized availability report for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Node-hours of capacity lost to outages.
    pub node_hours_lost: f64,
    /// Delivered capacity fraction: `1 − lost / (nodes × window)`.
    pub availability: f64,
    /// Mean time to repair over completed reboots, seconds (0 if none).
    pub mttr_secs: f64,
    /// Node crashes.
    pub crashes: u64,
    /// Actuator-hang windows.
    pub hangs: u64,
    /// Telemetry-silence windows.
    pub silences: u64,
    /// Jobs evicted and requeued.
    pub jobs_requeued: u64,
    /// Jobs dropped after exhausting the requeue cap.
    pub jobs_failed: u64,
    /// Failed DVFS commands.
    pub commands_failed: u64,
    /// Fraction of control cycles spent in Red — the capping-safety-under-
    /// faults figure (the paper's safety claim is that capping keeps this
    /// at 0; fault tolerance must preserve that).
    pub red_fraction: f64,
    /// Fraction of control cycles run in the conservative
    /// degraded-telemetry mode.
    pub conservative_fraction: f64,
}

impl AvailabilityReport {
    /// Normalizes raw counters into the report.
    pub fn compute(inputs: &AvailabilityInputs) -> Self {
        let capacity_secs = f64::from(inputs.node_count) * inputs.window_secs;
        let cycle_fraction = |n: u64| {
            if inputs.total_cycles == 0 {
                0.0
            } else {
                n as f64 / inputs.total_cycles as f64
            }
        };
        AvailabilityReport {
            node_hours_lost: inputs.node_seconds_lost / 3_600.0,
            availability: if capacity_secs > 0.0 {
                (1.0 - inputs.node_seconds_lost / capacity_secs).clamp(0.0, 1.0)
            } else {
                1.0
            },
            mttr_secs: if inputs.repairs == 0 {
                0.0
            } else {
                inputs.repair_secs_total / inputs.repairs as f64
            },
            crashes: inputs.crashes,
            hangs: inputs.hangs,
            silences: inputs.silences,
            jobs_requeued: inputs.jobs_requeued,
            jobs_failed: inputs.jobs_failed,
            commands_failed: inputs.commands_failed,
            red_fraction: cycle_fraction(inputs.red_cycles),
            conservative_fraction: cycle_fraction(inputs.conservative_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_normalizes_counters() {
        let r = AvailabilityReport::compute(&AvailabilityInputs {
            crashes: 4,
            hangs: 2,
            silences: 3,
            repairs: 3,
            node_seconds_lost: 7_200.0,
            repair_secs_total: 360.0,
            jobs_requeued: 5,
            jobs_failed: 1,
            commands_failed: 7,
            red_cycles: 2,
            conservative_cycles: 10,
            total_cycles: 100,
            node_count: 8,
            window_secs: 3_600.0,
        });
        assert!((r.node_hours_lost - 2.0).abs() < 1e-12);
        assert!((r.availability - 0.75).abs() < 1e-12);
        assert!((r.mttr_secs - 120.0).abs() < 1e-12);
        assert!((r.red_fraction - 0.02).abs() < 1e-12);
        assert!((r.conservative_fraction - 0.1).abs() < 1e-12);
        assert_eq!(r.jobs_failed, 1);
    }

    #[test]
    fn empty_window_yields_perfect_availability() {
        let r = AvailabilityReport::compute(&AvailabilityInputs::default());
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.mttr_secs, 0.0);
        assert_eq!(r.red_fraction, 0.0);
    }
}
