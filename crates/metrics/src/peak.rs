//! `P_max` — the peak observed power.

use ppc_simkit::TimeSeries;

/// The maximal power in the trace, watts (0 for an empty trace).
pub fn peak_power_w(trace: &TimeSeries) -> f64 {
    trace.max().unwrap_or(0.0)
}

/// Time-weighted mean power over the trace, watts (0 for < 2 samples).
pub fn mean_power_w(trace: &TimeSeries) -> f64 {
    trace.time_weighted_mean().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::SimTime;

    #[test]
    fn peak_and_mean() {
        let mut t = TimeSeries::new();
        t.push(SimTime::from_secs(0), 100.0);
        t.push(SimTime::from_secs(10), 300.0);
        t.push(SimTime::from_secs(20), 200.0);
        assert_eq!(peak_power_w(&t), 300.0);
        // Step mean: (100·10 + 300·10)/20 = 200.
        assert_eq!(mean_power_w(&t), 200.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = TimeSeries::new();
        assert_eq!(peak_power_w(&t), 0.0);
        assert_eq!(mean_power_w(&t), 0.0);
    }
}
