//! `Performance(cap)` — the paper's system-performance measurement.
//!
//! ```text
//! Performance(cap) = (1/J) Σ_{j=1..J}  T_j / T_cap,j
//! ```
//!
//! `T_j` is job `j`'s runtime at full node performance without capping
//! (the analytic baseline our job model knows exactly) and `T_cap,j` its
//! runtime under the capping policy. Greater is better; 1.0 means no
//! performance was lost.

use ppc_workload::JobRecord;

/// Computes `Performance(cap)` over finished jobs. Returns 1.0 for an
/// empty set (no jobs ⇒ nothing was slowed down).
pub fn performance(records: &[JobRecord]) -> f64 {
    if records.is_empty() {
        return 1.0;
    }
    let sum: f64 = records.iter().map(JobRecord::performance_ratio).sum();
    sum / records.len() as f64
}

/// Mean performance per application (for per-benchmark breakdowns).
pub fn performance_by<K: Ord, F: Fn(&JobRecord) -> K>(
    records: &[JobRecord],
    key: F,
) -> std::collections::BTreeMap<K, f64> {
    let mut sums: std::collections::BTreeMap<K, (f64, u32)> = std::collections::BTreeMap::new();
    for r in records {
        let e = sums.entry(key(r)).or_insert((0.0, 0));
        e.0 += r.performance_ratio();
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::testutil::record;

    #[test]
    fn empty_set_is_lossless() {
        assert_eq!(performance(&[]), 1.0);
    }

    #[test]
    fn uncapped_jobs_score_one() {
        let records = vec![record(1, 100.0, 100.0), record(2, 50.0, 50.0)];
        assert_eq!(performance(&records), 1.0);
    }

    #[test]
    fn mean_of_ratios() {
        // Ratios: 1.0 and 0.5 → mean 0.75.
        let records = vec![record(1, 100.0, 100.0), record(2, 100.0, 200.0)];
        assert!((performance(&records) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_capped_at_one() {
        // A job that finished *faster* than baseline (tick rounding) must
        // not inflate the metric.
        let records = vec![record(1, 100.0, 99.0)];
        assert_eq!(performance(&records), 1.0);
    }

    #[test]
    fn breakdown_groups_by_key() {
        let records = vec![
            record(1, 100.0, 100.0),
            record(2, 100.0, 200.0),
            record(3, 100.0, 100.0),
        ];
        let by_even = performance_by(&records, |r| r.id.0 % 2);
        assert_eq!(by_even.len(), 2);
        assert!((by_even[&0] - 0.5).abs() < 1e-12); // job 2
        assert!((by_even[&1] - 1.0).abs() < 1e-12); // jobs 1, 3
    }
}
