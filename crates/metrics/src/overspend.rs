//! ΔP×T — the *accumulative effect of overspending* (paper §V.C, Fig. 4).
//!
//! ```text
//!            ∫_{P > P_th} (P(t) − P_th) dt
//! ΔP×T  =  ─────────────────────────────────
//!                    ∫ P(t) dt
//! ```
//!
//! The numerator is the energy spent *above* the provision threshold (the
//! dark-grey area of Figure 4); the denominator the total energy (heat)
//! of the run. The ratio captures both how far and for how long the
//! budget was overspent — the accumulated thermal damage.

use ppc_simkit::series::Interp;
use ppc_simkit::TimeSeries;

/// Computes ΔP×T for a power trace against threshold `p_th_w`.
///
/// Returns 0 for traces with fewer than two samples or zero total energy.
/// Uses step (sample-and-hold) interpolation, matching what a polling
/// meter records.
pub fn overspend_ratio(trace: &TimeSeries, p_th_w: f64) -> f64 {
    overspend_ratio_interp(trace, p_th_w, Interp::Step)
}

/// As [`overspend_ratio`] with an explicit interpolation mode.
pub fn overspend_ratio_interp(trace: &TimeSeries, p_th_w: f64, interp: Interp) -> f64 {
    let total = trace.integrate(interp);
    if total <= 0.0 {
        return 0.0;
    }
    trace.integrate_excess_above(p_th_w, interp) / total
}

/// The numerator alone: overspent energy in joules (watt-seconds).
pub fn overspend_energy_j(trace: &TimeSeries, p_th_w: f64) -> f64 {
    trace.integrate_excess_above(p_th_w, Interp::Step)
}

/// Fraction of wall time spent above the threshold.
pub fn time_above_fraction(trace: &TimeSeries, p_th_w: f64) -> f64 {
    trace.fraction_above(p_th_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::SimTime;
    use proptest::prelude::*;

    fn trace(samples: &[(u64, f64)]) -> TimeSeries {
        let mut t = TimeSeries::new();
        for &(s, v) in samples {
            t.push(SimTime::from_secs(s), v);
        }
        t
    }

    #[test]
    fn matches_hand_computation() {
        // 10 s at 120 W (20 over), 10 s at 80 W; threshold 100 W.
        // Overspend = 200 J; total = 2000 J; ratio = 0.1.
        let t = trace(&[(0, 120.0), (10, 80.0), (20, 80.0)]);
        assert!((overspend_ratio(&t, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(overspend_energy_j(&t, 100.0), 200.0);
        assert!((time_above_fraction(&t, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_when_never_above() {
        let t = trace(&[(0, 50.0), (10, 90.0), (20, 70.0)]);
        assert_eq!(overspend_ratio(&t, 100.0), 0.0);
        assert_eq!(time_above_fraction(&t, 100.0), 0.0);
    }

    #[test]
    fn empty_or_single_sample_is_zero() {
        assert_eq!(overspend_ratio(&TimeSeries::new(), 10.0), 0.0);
        assert_eq!(overspend_ratio(&trace(&[(0, 500.0)]), 10.0), 0.0);
    }

    #[test]
    fn capping_reduces_the_metric() {
        // Same total time; the "capped" trace clips the spike.
        let uncapped = trace(&[
            (0, 100.0),
            (10, 150.0),
            (20, 150.0),
            (30, 100.0),
            (40, 100.0),
        ]);
        let capped = trace(&[
            (0, 100.0),
            (10, 110.0),
            (20, 110.0),
            (30, 100.0),
            (40, 100.0),
        ]);
        let th = 105.0;
        assert!(overspend_ratio(&capped, th) < overspend_ratio(&uncapped, th));
    }

    proptest! {
        /// ΔP×T is in [0, 1) for non-negative traces with a non-negative
        /// threshold, and monotone non-increasing in the threshold.
        #[test]
        fn prop_bounds_and_monotonicity(
            vals in proptest::collection::vec(1.0f64..500.0, 2..60),
            th1 in 0.0f64..600.0,
            th2 in 0.0f64..600.0,
        ) {
            let mut t = TimeSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                t.push(SimTime::from_secs(i as u64 * 5), v);
            }
            let r1 = overspend_ratio(&t, th1);
            prop_assert!((0.0..1.0).contains(&r1), "r1={r1}");
            let (lo, hi) = if th1 <= th2 { (th1, th2) } else { (th2, th1) };
            prop_assert!(overspend_ratio(&t, lo) >= overspend_ratio(&t, hi) - 1e-12);
            // Threshold 0 makes the excess the whole trace above zero:
            // ratio < 1 but equal to 1 − 0 only if threshold is 0 and trace
            // flat... just check it is the maximum over thresholds.
            prop_assert!(overspend_ratio(&t, 0.0) >= r1 - 1e-12);
        }
    }
}
