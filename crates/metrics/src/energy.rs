//! Related-work energy metrics (paper §I.B survey).
//!
//! Provided for completeness and used by the extension benches: total
//! energy, the `E·Dⁿ` energy-delay family, and work-per-joule (the
//! FLOPS/W analogue for our synthetic work units).

use ppc_simkit::series::Interp;
use ppc_simkit::TimeSeries;
use ppc_workload::JobRecord;

/// Total energy of the run, joules.
pub fn total_energy_j(trace: &TimeSeries) -> f64 {
    trace.integrate(Interp::Step)
}

/// Energy·Delayⁿ: `E × Dⁿ` with the run's makespan as the delay.
///
/// `n = 0` is plain energy, `n = 1` the energy-delay product, `n = 2` the
/// common ED² (performance-leaning).
pub fn energy_delay_n(trace: &TimeSeries, n: u32) -> f64 {
    let e = total_energy_j(trace);
    let d = trace.span().map(|s| s.as_secs_f64()).unwrap_or(0.0);
    e * d.powi(n as i32)
}

/// Work per joule: total baseline work completed (full-speed seconds of
/// computation, our FLOP analogue) per joule consumed.
pub fn work_per_joule(records: &[JobRecord], trace: &TimeSeries) -> f64 {
    let e = total_energy_j(trace);
    if e <= 0.0 {
        return 0.0;
    }
    let work: f64 = records.iter().map(|r| r.baseline_secs).sum();
    work / e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::testutil::record;
    use ppc_simkit::SimTime;

    fn trace() -> TimeSeries {
        let mut t = TimeSeries::new();
        t.push(SimTime::from_secs(0), 100.0);
        t.push(SimTime::from_secs(10), 100.0);
        t
    }

    #[test]
    fn energy_and_ed_n() {
        let t = trace();
        assert_eq!(total_energy_j(&t), 1_000.0);
        assert_eq!(energy_delay_n(&t, 0), 1_000.0);
        assert_eq!(energy_delay_n(&t, 1), 10_000.0);
        assert_eq!(energy_delay_n(&t, 2), 100_000.0);
    }

    #[test]
    fn work_per_joule_counts_baseline_work() {
        let t = trace();
        let records = vec![record(1, 50.0, 60.0), record(2, 25.0, 25.0)];
        assert!((work_per_joule(&records, &t) - 75.0 / 1_000.0).abs() < 1e-12);
        assert_eq!(work_per_joule(&records, &TimeSeries::new()), 0.0);
    }
}
