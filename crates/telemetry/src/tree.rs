//! Management-network aggregation tree.
//!
//! Figure 5's convexity does not come from the manager's CPU alone: on a
//! real machine the per-cycle samples of `n` monitored nodes must *reach*
//! the management node through an aggregation hierarchy, and the last hop
//! — everyone's reports converging on one endpoint — serializes. This
//! module models that mechanism so the "modeled" Figure-5 series has a
//! physical story, not just a fitted polynomial:
//!
//! * samples climb a `fan_in`-ary tree of aggregation switches; each hop
//!   adds fixed latency, each message costs the receiving endpoint
//!   processing time;
//! * an aggregator can merge its children's reports (cheap, paid per
//!   child) but the **root** — the management node — must ingest one
//!   merged report per child *and* demultiplex all `n` node records it
//!   contains;
//! * incast contention at the root grows with the number of simultaneous
//!   senders: queueing delay scales superlinearly once arrival pressure
//!   approaches the root's service capacity (an M/D/1-flavored term).

use serde::{Deserialize, Serialize};

/// Parameters of the aggregation hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationTree {
    /// Children per aggregation switch.
    pub fan_in: usize,
    /// Per-hop forwarding latency, seconds.
    pub hop_latency_s: f64,
    /// Root CPU cost to demultiplex and store one node record, seconds.
    pub per_record_s: f64,
    /// Root service capacity: records it can absorb per second before
    /// queueing effects dominate.
    pub root_capacity_rec_per_s: f64,
}

impl AggregationTree {
    /// A management plane typical of 2012-era clusters: 16-port
    /// aggregation switches at ~50 µs per hop, and ~2 ms of root-side
    /// work per node record (daemon protocol handling, text parsing,
    /// database update — the pre-telemetry-era reality), saturating
    /// around 350 records/s.
    pub fn management_ethernet() -> Self {
        AggregationTree {
            fan_in: 16,
            hop_latency_s: 50e-6,
            per_record_s: 2.0e-3,
            root_capacity_rec_per_s: 350.0,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    /// Panics on non-physical values.
    pub fn validate(&self) {
        assert!(self.fan_in >= 2, "tree fan-in must be at least 2");
        assert!(self.hop_latency_s >= 0.0);
        assert!(self.per_record_s > 0.0);
        assert!(self.root_capacity_rec_per_s > 0.0);
    }

    /// Tree depth needed to aggregate `n` leaves (0 for n ≤ 1).
    pub fn depth(&self, n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        let mut depth = 0;
        let mut reach = 1usize;
        while reach < n {
            reach = reach.saturating_mul(self.fan_in);
            depth += 1;
        }
        depth
    }

    /// Wire latency for the slowest report to reach the root, seconds.
    pub fn collection_latency_s(&self, n: usize) -> f64 {
        self.depth(n) as f64 * self.hop_latency_s
    }

    /// Root-side processing time per collection cycle, seconds: linear
    /// demultiplexing plus the incast queueing term
    /// `ρ/(2(1−ρ))·per_record·n` with utilization `ρ = n/capacity`
    /// (per 1-second cycle), clamped before saturation.
    pub fn root_busy_s(&self, n: usize) -> f64 {
        let n_f = n as f64;
        let linear = self.per_record_s * n_f;
        let rho = (n_f / self.root_capacity_rec_per_s).min(0.95);
        let queueing = if n == 0 {
            0.0
        } else {
            rho / (2.0 * (1.0 - rho)) * self.per_record_s * n_f
        };
        linear + queueing
    }

    /// Management-node utilization for an `n`-node candidate set at the
    /// given control-cycle period.
    ///
    /// # Panics
    /// Panics if `cycle_period_s` is not positive.
    pub fn utilization(&self, n: usize, cycle_period_s: f64) -> f64 {
        assert!(cycle_period_s > 0.0, "cycle period must be positive");
        (self.root_busy_s(n) / cycle_period_s).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tree() -> AggregationTree {
        let t = AggregationTree::management_ethernet();
        t.validate();
        t
    }

    #[test]
    fn depth_follows_fan_in() {
        let t = tree(); // fan-in 16
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(1), 0);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.depth(16), 1);
        assert_eq!(t.depth(17), 2);
        assert_eq!(t.depth(128), 2);
        assert_eq!(t.depth(257), 3);
    }

    #[test]
    fn latency_grows_with_depth_only() {
        let t = tree();
        assert_eq!(t.collection_latency_s(16), 50e-6);
        assert_eq!(t.collection_latency_s(128), 100e-6);
        assert_eq!(t.collection_latency_s(8), t.collection_latency_s(16));
    }

    #[test]
    fn root_cost_is_superlinear() {
        let t = tree();
        // Doubling the nodes must more than double the root cost once the
        // incast term matters.
        let c64 = t.root_busy_s(64);
        let c128 = t.root_busy_s(128);
        assert!(c128 > 2.0 * c64, "c64={c64} c128={c128}");
        assert_eq!(t.root_busy_s(0), 0.0);
    }

    #[test]
    fn utilization_is_clamped_and_scaled() {
        let t = tree();
        let u = t.utilization(128, 1.0);
        assert!((0.0..=1.0).contains(&u));
        assert!(t.utilization(128, 0.001) <= 1.0);
        // Faster cycles mean proportionally higher utilization (pre-clamp).
        assert!(t.utilization(64, 0.5) > t.utilization(64, 1.0));
    }

    proptest! {
        /// Monotonicity: more nodes never cost less, never exceed
        /// saturation, and depth is logarithmic (≤ log_2 n for fan-in ≥ 2).
        #[test]
        fn prop_monotone_and_bounded(n1 in 0usize..2_000, n2 in 0usize..2_000) {
            let t = tree();
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            prop_assert!(t.root_busy_s(lo) <= t.root_busy_s(hi) + 1e-15);
            prop_assert!(t.depth(lo) <= t.depth(hi));
            if hi > 1 {
                prop_assert!(t.depth(hi) as f64 <= (hi as f64).log2().ceil());
            }
            prop_assert!(t.utilization(hi, 1.0) <= 1.0);
        }
    }
}
