//! Management-cost accounting (the paper's Figure 5).
//!
//! "The cost of central power management rises with the number of nodes to
//! be monitored … CPU utilizations of the central management node increase
//! non-linearly with the sizes of A_candidate."
//!
//! Two complementary instruments:
//!
//! * [`CycleCostMeter`] measures the *real* wall-clock cost of our
//!   collector + policy code per control cycle (used by the Figure-5
//!   regenerator and the criterion bench);
//! * [`ManagementCostModel`] is the calibrated analytic curve — a linear
//!   per-sample term (ingest, Formula-1 evaluation) plus a super-linear
//!   aggregation/coordination term (job grouping, sorting, and the
//!   management network's incast contention) — used inside simulations,
//!   where wall-clock time of the host machine must not leak into results.

use ppc_simkit::RunningStats;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Measures real per-cycle management cost.
#[derive(Debug, Clone, Default)]
pub struct CycleCostMeter {
    stats: RunningStats,
}

impl CycleCostMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock cost; returns `f`'s output.
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stats.push(start.elapsed().as_secs_f64());
        out
    }

    /// Mean measured cost per cycle, seconds.
    pub fn mean_cycle_secs(&self) -> f64 {
        self.stats.mean()
    }

    /// Number of cycles measured.
    pub fn cycles(&self) -> u64 {
        self.stats.count()
    }

    /// Management-node CPU utilization: mean cycle cost over the cycle
    /// period (clamped to 1).
    pub fn utilization(&self, cycle_period_secs: f64) -> f64 {
        assert!(cycle_period_secs > 0.0, "cycle period must be positive");
        (self.mean_cycle_secs() / cycle_period_secs).min(1.0)
    }
}

/// Calibrated analytic management-cost curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagementCostModel {
    /// Per-monitored-node cost per cycle, seconds (ingest + estimate).
    pub per_node_secs: f64,
    /// Pairwise coordination cost coefficient, seconds per node² per
    /// cycle (aggregation contention, job grouping).
    pub pairwise_secs: f64,
    /// Control cycle period, seconds.
    pub cycle_period_secs: f64,
}

impl ManagementCostModel {
    /// Calibration matching the paper's testbed shape: ≈3% utilization at
    /// 16 monitored nodes rising non-linearly to ≈40% at 128.
    pub fn tianhe_1a() -> Self {
        ManagementCostModel {
            per_node_secs: 1.70e-3,
            pairwise_secs: 1.12e-5,
            cycle_period_secs: 1.0,
        }
    }

    /// Per-cycle management cost for `n` monitored nodes, seconds.
    pub fn cycle_cost_secs(&self, n: usize) -> f64 {
        let n = n as f64;
        self.per_node_secs * n + self.pairwise_secs * n * n
    }

    /// Management-node CPU utilization for `n` monitored nodes, in [0, 1].
    pub fn utilization(&self, n: usize) -> f64 {
        (self.cycle_cost_secs(n) / self.cycle_period_secs).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_cycles() {
        let mut m = CycleCostMeter::new();
        let out = m.measure(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(out > 0);
        assert_eq!(m.cycles(), 1);
        assert!(m.mean_cycle_secs() >= 0.0);
        assert!(m.utilization(1.0) <= 1.0);
    }

    #[test]
    fn model_is_calibrated_to_paper_shape() {
        let m = ManagementCostModel::tianhe_1a();
        let u16 = m.utilization(16);
        let u128 = m.utilization(128);
        assert!((0.02..0.05).contains(&u16), "u(16)={u16}");
        assert!((0.3..0.5).contains(&u128), "u(128)={u128}");
    }

    #[test]
    fn model_grows_superlinearly() {
        let m = ManagementCostModel::tianhe_1a();
        // Doubling the nodes must more than double the cost.
        for n in [16usize, 32, 64] {
            assert!(
                m.cycle_cost_secs(2 * n) > 2.0 * m.cycle_cost_secs(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn utilization_saturates_at_one() {
        let m = ManagementCostModel {
            per_node_secs: 1.0,
            pairwise_secs: 0.0,
            cycle_period_secs: 1.0,
        };
        assert_eq!(m.utilization(1000), 1.0);
    }

    #[test]
    fn zero_nodes_cost_nothing() {
        let m = ManagementCostModel::tianhe_1a();
        assert_eq!(m.cycle_cost_secs(0), 0.0);
        assert_eq!(m.utilization(0), 0.0);
    }
}
