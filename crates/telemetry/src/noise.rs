//! Measurement error models.
//!
//! The Observability assumption only requires estimates "to a sufficient
//! accuracy"; real meters and agents are noisy and occasionally silent.
//! [`NoiseModel`] injects both defects so experiments can quantify how
//! much error the capping architecture tolerates (an ablation the paper's
//! design discussion motivates but does not plot).

use ppc_simkit::DetRng;
use serde::{Deserialize, Serialize};

/// Multiplicative Gaussian noise plus Bernoulli sample loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative standard deviation of readings (0.01 = 1% error).
    pub relative_std: f64,
    /// Probability that a sample is lost entirely.
    pub dropout_prob: f64,
}

impl NoiseModel {
    /// A perfect sensor.
    pub const NONE: NoiseModel = NoiseModel {
        relative_std: 0.0,
        dropout_prob: 0.0,
    };

    /// A realistic facility meter: ~1% reading error, no dropouts.
    pub const METER_1PCT: NoiseModel = NoiseModel {
        relative_std: 0.01,
        dropout_prob: 0.0,
    };

    /// Validates parameters.
    ///
    /// # Panics
    /// Panics if `relative_std` is negative or `dropout_prob` out of [0, 1].
    pub fn validate(&self) {
        assert!(self.relative_std >= 0.0, "noise std must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.dropout_prob),
            "dropout probability must be in [0, 1]"
        );
    }

    /// Applies the model to a reading: `None` on dropout, otherwise the
    /// noisy value (floored at zero — meters do not report negative watts).
    pub fn apply(&self, true_value: f64, rng: &mut DetRng) -> Option<f64> {
        if self.dropout_prob > 0.0 && rng.bernoulli(self.dropout_prob) {
            return None;
        }
        if self.relative_std == 0.0 {
            return Some(true_value);
        }
        let noisy = true_value * (1.0 + rng.normal(0.0, self.relative_std));
        Some(noisy.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::RngFactory;

    fn rng() -> DetRng {
        RngFactory::new(3).stream("noise-test", 0)
    }

    #[test]
    fn none_is_identity() {
        let mut r = rng();
        assert_eq!(NoiseModel::NONE.apply(123.4, &mut r), Some(123.4));
    }

    #[test]
    fn gaussian_noise_is_unbiased_and_scaled() {
        let model = NoiseModel {
            relative_std: 0.05,
            dropout_prob: 0.0,
        };
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let v = model.apply(100.0, &mut r).unwrap();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let std = (sq / n as f64 - mean * mean).sqrt();
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
        assert!((std - 5.0).abs() < 0.5, "std={std}");
    }

    #[test]
    fn dropout_rate_matches_probability() {
        let model = NoiseModel {
            relative_std: 0.0,
            dropout_prob: 0.25,
        };
        let mut r = rng();
        let lost = (0..10_000)
            .filter(|_| model.apply(1.0, &mut r).is_none())
            .count();
        assert!((2_200..2_800).contains(&lost), "lost={lost}");
    }

    #[test]
    fn readings_never_go_negative() {
        let model = NoiseModel {
            relative_std: 2.0, // absurdly noisy
            dropout_prob: 0.0,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(model.apply(10.0, &mut r).unwrap() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn validate_rejects_bad_dropout() {
        NoiseModel {
            relative_std: 0.0,
            dropout_prob: 1.5,
        }
        .validate();
    }
}
