//! Bounded per-node sample history.
//!
//! The change-based policies differentiate consecutive samples; a single
//! noisy interval can therefore mislabel the "fastest-ramping job".
//! [`PowerHistory`] keeps the last `depth` power estimates per node so
//! library users can compute *windowed* rates (rate over the last `k`
//! intervals) and smoothed means — the robustness knob the paper's future
//! work alludes to when it speaks of "other selection policies".

use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded ring of `(time, power)` samples for one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerHistory {
    depth: usize,
    samples: VecDeque<(SimTime, f64)>,
}

impl PowerHistory {
    /// Creates a history holding at most `depth` samples.
    ///
    /// # Panics
    /// Panics if `depth < 2` (a rate needs two points).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 2, "history depth must be at least 2");
        PowerHistory {
            depth,
            samples: VecDeque::with_capacity(depth),
        }
    }

    /// Appends a sample, evicting the oldest beyond the depth.
    ///
    /// # Panics
    /// Panics if `at` precedes the newest stored sample.
    pub fn push(&mut self, at: SimTime, power_w: f64) {
        if let Some(&(last, _)) = self.samples.back() {
            assert!(at >= last, "history samples must be time-ordered");
        }
        if self.samples.len() == self.depth {
            self.samples.pop_front();
        }
        self.samples.push_back((at, power_w));
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<(SimTime, f64)> {
        self.samples.back().copied()
    }

    /// Relative rate of increase over the last `k` intervals:
    /// `(P_newest − P_{newest−k}) / P_{newest−k}`. `None` without enough
    /// samples or with a non-positive base.
    pub fn windowed_rate(&self, k: usize) -> Option<f64> {
        if k == 0 || self.samples.len() <= k {
            return None;
        }
        let newest = self.samples[self.samples.len() - 1].1;
        let base = self.samples[self.samples.len() - 1 - k].1;
        if base <= 0.0 {
            return None;
        }
        Some((newest - base) / base)
    }

    /// Arithmetic mean of the stored samples (smoothing), `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, p)| p).sum::<f64>() / self.samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hist(vals: &[f64]) -> PowerHistory {
        let mut h = PowerHistory::new(8);
        for (i, &v) in vals.iter().enumerate() {
            h.push(SimTime::from_secs(i as u64), v);
        }
        h
    }

    #[test]
    fn eviction_keeps_depth() {
        let mut h = PowerHistory::new(3);
        for i in 0..10u64 {
            h.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.latest(), Some((SimTime::from_secs(9), 9.0)));
    }

    #[test]
    fn windowed_rate_spans_k_intervals() {
        let h = hist(&[100.0, 110.0, 121.0, 133.1]);
        // 1-interval rate: 133.1/121 − 1 = 0.1.
        assert!((h.windowed_rate(1).unwrap() - 0.1).abs() < 1e-9);
        // 3-interval rate: 133.1/100 − 1 = 0.331.
        assert!((h.windowed_rate(3).unwrap() - 0.331).abs() < 1e-9);
        assert_eq!(h.windowed_rate(4), None, "not enough samples");
        assert_eq!(h.windowed_rate(0), None);
    }

    #[test]
    fn smoothing_mean() {
        let h = hist(&[10.0, 20.0, 30.0]);
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(PowerHistory::new(4).mean(), None);
    }

    #[test]
    fn zero_base_gives_no_rate() {
        let h = hist(&[0.0, 50.0]);
        assert_eq!(h.windowed_rate(1), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn time_regression_rejected() {
        let mut h = PowerHistory::new(4);
        h.push(SimTime::from_secs(5), 1.0);
        h.push(SimTime::from_secs(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_depth_rejected() {
        PowerHistory::new(1);
    }

    proptest! {
        /// A windowed rate over smoothed data is bounded by the min/max
        /// single-interval rates in the window (sanity of the definition),
        /// and depth is never exceeded.
        #[test]
        fn prop_depth_and_rate_consistency(vals in proptest::collection::vec(1.0f64..1000.0, 2..40)) {
            let mut h = PowerHistory::new(8);
            for (i, &v) in vals.iter().enumerate() {
                h.push(SimTime::from_secs(i as u64), v);
                prop_assert!(h.len() <= 8);
            }
            if let Some(r) = h.windowed_rate(1) {
                let n = vals.len();
                let expect = (vals[n - 1] - vals[n - 2]) / vals[n - 2];
                prop_assert!((r - expect).abs() < 1e-9);
            }
        }
    }
}
