//! Per-node profiling agents.
//!
//! An agent snapshots its node's `/proc` counters every interval τ,
//! differentiates them against the previous snapshot to recover the
//! operating state, and evaluates Formula (1) to estimate power. It keeps
//! the last good estimate so a dropped or too-short interval degrades the
//! view gracefully instead of reporting garbage.

use crate::noise::NoiseModel;
use crate::sample::NodeSample;
use ppc_node::node::Node;
use ppc_node::procfs::ProcSnapshot;
use ppc_node::OperatingState;
use ppc_simkit::{DetRng, SimTime};

/// A profiling agent bound to one node.
#[derive(Debug, Clone)]
pub struct ProfilingAgent {
    prev_snapshot: Option<ProcSnapshot>,
    last_state: OperatingState,
    noise: NoiseModel,
    rng: DetRng,
    samples_taken: u64,
    samples_dropped: u64,
}

impl ProfilingAgent {
    /// Creates an agent with the given sensing-noise model and RNG stream.
    pub fn new(noise: NoiseModel, rng: DetRng) -> Self {
        noise.validate();
        ProfilingAgent {
            prev_snapshot: None,
            last_state: OperatingState::IDLE,
            noise,
            rng,
            samples_taken: 0,
            samples_dropped: 0,
        }
    }

    /// Samples the node at time `now`.
    ///
    /// Returns `None` when the sample is lost (failure injection). The
    /// first call only primes the snapshot and reports the node as idle —
    /// exactly what a counter-differencing agent can know after one read.
    pub fn sample(&mut self, node: &Node, now: SimTime) -> Option<NodeSample> {
        let snap = ProcSnapshot::capture(node.proc_counters());
        let state = match self.prev_snapshot.replace(snap) {
            Some(prev) => snap.delta_since(&prev).unwrap_or(self.last_state),
            None => OperatingState::IDLE,
        };
        self.emit(node, now, state)
    }

    /// True once the agent holds a baseline snapshot to differentiate
    /// against (i.e. [`sample`](Self::sample) ran at least once).
    pub fn is_primed(&self) -> bool {
        self.prev_snapshot.is_some()
    }

    /// Produces the sample a real read would yield for a *quiescent* node —
    /// one whose counters advanced exactly `ticks_since_sample` intervals of
    /// `dt_secs` in its current operating state since the previous sample —
    /// without touching the node's counters.
    ///
    /// The caller guarantees quiescence; under that contract the returned
    /// sample (state, power, drop decision) and the agent's internal
    /// baseline are bit-identical to calling [`sample`](Self::sample) after
    /// materializing the node. The agent must already be primed.
    pub fn resample_quiescent(
        &mut self,
        node: &Node,
        now: SimTime,
        dt_secs: f64,
        ticks_since_sample: u64,
    ) -> Option<NodeSample> {
        let prev = self
            .prev_snapshot
            // ppc-lint: allow(panic-path): documented caller contract — the sim only calls this on agents it has primed
            .expect("resample_quiescent requires a primed agent");
        let snap = prev.advanced(node.state(), dt_secs, ticks_since_sample);
        let state = snap.delta_since(&prev).unwrap_or(self.last_state);
        self.prev_snapshot = Some(snap);
        self.emit(node, now, state)
    }

    /// Fast-forwards the agent's baseline by `ticks` intervals of `dt_secs`
    /// during which the node ran in `state`, as if `ticks` samples had been
    /// taken (and their identical results discarded). Leaves the baseline
    /// and `last_state` exactly where `ticks` real samples of a quiescent
    /// node would. Draws no noise — only valid under a noise model that
    /// never consumes RNG (`NoiseModel::NONE`).
    pub fn advance_baseline(&mut self, state: &OperatingState, dt_secs: f64, ticks: u64) {
        if ticks == 0 {
            return;
        }
        let prev = self
            .prev_snapshot
            // ppc-lint: allow(panic-path): documented caller contract — the sim checks is_primed() before advancing
            .expect("advance_baseline requires a primed agent");
        // Each skipped sample would have recovered the same one-tick delta.
        let one = prev.advanced(state, dt_secs, 1);
        self.last_state = one.delta_since(&prev).unwrap_or(self.last_state);
        self.prev_snapshot = Some(prev.advanced(state, dt_secs, ticks));
        self.samples_taken += ticks;
    }

    fn emit(&mut self, node: &Node, now: SimTime, state: OperatingState) -> Option<NodeSample> {
        self.last_state = state;
        self.samples_taken += 1;

        // Power estimation from the *sampled* state (not the node's true
        // instantaneous state) — the estimate lags reality by one interval,
        // as on the real system.
        let est = node.model().power_w(node.level(), &state);
        match self.noise.apply(est, &mut self.rng) {
            Some(power_w) => Some(NodeSample {
                node: node.id(),
                at: now,
                state,
                level: node.level(),
                power_w,
            }),
            None => {
                self.samples_dropped += 1;
                None
            }
        }
    }

    /// `(taken, dropped)` counters for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.samples_taken, self.samples_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_node::spec::NodeSpec;
    use ppc_node::NodeId;
    use ppc_simkit::RngFactory;
    use std::sync::Arc;

    fn node() -> Node {
        let spec = Arc::new(NodeSpec::tianhe_1a());
        let model = spec.power_model(1.0);
        Node::new(NodeId(3), spec, model)
    }

    fn agent(noise: NoiseModel) -> ProfilingAgent {
        ProfilingAgent::new(noise, RngFactory::new(5).stream("agent-test", 0))
    }

    #[test]
    fn first_sample_primes_and_reports_idle() {
        let mut a = agent(NoiseModel::NONE);
        let n = node();
        let s = a.sample(&n, SimTime::ZERO).unwrap();
        assert!(s.is_idle());
        assert_eq!(s.node, NodeId(3));
    }

    #[test]
    fn second_sample_recovers_true_utilization() {
        let mut a = agent(NoiseModel::NONE);
        let mut n = node();
        a.sample(&n, SimTime::ZERO);
        let busy = OperatingState {
            cpu_util: 0.8,
            mem_used_bytes: 4 << 30,
            nic_bytes: 1_000_000,
        };
        n.run_interval(busy, 1.0);
        let s = a.sample(&n, SimTime::from_secs(1)).unwrap();
        assert!((s.state.cpu_util - 0.8).abs() < 0.011);
        assert_eq!(s.state.mem_used_bytes, 4 << 30);
        assert_eq!(s.state.nic_bytes, 1_000_000);
        // The estimate equals the model evaluated on the sampled state.
        let expect = n.model().power_w(n.level(), &s.state);
        assert_eq!(s.power_w, expect);
    }

    #[test]
    fn dropped_samples_are_counted() {
        let mut a = agent(NoiseModel {
            relative_std: 0.0,
            dropout_prob: 1.0,
        });
        let n = node();
        assert!(a.sample(&n, SimTime::ZERO).is_none());
        assert_eq!(a.stats(), (1, 1));
    }

    #[test]
    fn resample_quiescent_matches_real_sample() {
        let busy = OperatingState {
            cpu_util: 0.63,
            mem_used_bytes: 2 << 30,
            nic_bytes: 40_000,
        };
        // Real path: node runs every tick, agent samples every tick.
        let mut real_agent = agent(NoiseModel::NONE);
        let mut real_node = node();
        real_agent.sample(&real_node, SimTime::ZERO);
        let mut real_last = None;
        for t in 1..=5u64 {
            real_node.run_interval(busy, 1.0);
            real_last = real_agent.sample(&real_node, SimTime::from_secs(t));
        }
        let r = real_last.unwrap();
        // Quiescent path: node materialized once at t=1 then left alone;
        // the agent fast-forwards its baseline to t=4 and resamples at t=5
        // without a node read.
        let mut lazy_agent = agent(NoiseModel::NONE);
        let mut lazy_node = node();
        lazy_agent.sample(&lazy_node, SimTime::ZERO);
        lazy_node.run_interval(busy, 1.0);
        lazy_agent.advance_baseline(lazy_node.state(), 1.0, 4);
        let s = lazy_agent
            .resample_quiescent(&lazy_node, SimTime::from_secs(5), 1.0, 1)
            .unwrap();
        assert_eq!(s.state, r.state);
        assert_eq!(s.power_w.to_bits(), r.power_w.to_bits());
        assert_eq!(s.at, r.at);
        assert_eq!(lazy_agent.stats(), real_agent.stats());
        // After catching the node up, a real read agrees with the baseline.
        lazy_node.catch_up(1.0, 4);
        assert_eq!(lazy_node.proc_counters(), real_node.proc_counters());
        lazy_node.run_interval(busy, 1.0);
        real_node.run_interval(busy, 1.0);
        let a = lazy_agent
            .sample(&lazy_node, SimTime::from_secs(6))
            .unwrap();
        let b = real_agent
            .sample(&real_node, SimTime::from_secs(6))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_short_interval_reuses_last_estimate() {
        let mut a = agent(NoiseModel::NONE);
        let mut n = node();
        a.sample(&n, SimTime::ZERO);
        let busy = OperatingState {
            cpu_util: 0.5,
            mem_used_bytes: 0,
            nic_bytes: 0,
        };
        n.run_interval(busy, 1.0);
        a.sample(&n, SimTime::from_secs(1));
        // No counter movement since the last snapshot: agent re-reports the
        // previous state instead of dividing by zero.
        let s = a.sample(&n, SimTime::from_secs(1)).unwrap();
        assert!((s.state.cpu_util - 0.5).abs() < 0.011);
    }
}
