//! The central collector on the management node.
//!
//! Ingests agent samples and maintains the views the capping algorithm
//! and its selection policies read:
//!
//! * latest per-node sample (state, level, power estimate);
//! * the previous power estimate per node, so change-based policies can
//!   compute the rate of increase `ΔP^t(x) = (P^t − P^{t−1}) / P^{t−1}`;
//! * per-job aggregation `Power(J) = Σ_{i ∈ Nodes(J)} P(i)`.
//!
//! Storage is dense: `NodeId`s are small dense integers, so per-node
//! slots live in a `Vec` indexed by id and every policy-facing query
//! (`power_of`, `aggregate_power`, `power_rate_of`) is a plain array
//! read — no lock, no hash. Ingestion takes `&mut self` (the manager's
//! control cycle is the single writer); the end state is independent of
//! arrival order within a batch because each node's slot only advances
//! on strictly newer timestamps.

use crate::history::PowerHistory;
use crate::sample::NodeSample;
use ppc_node::NodeId;
use ppc_simkit::{SimDuration, SimTime};

/// Per-node power bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Slot {
    latest: NodeSample,
    prev_power_w: Option<f64>,
}

/// The central sample store.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    /// Dense per-node slots, indexed by `NodeId.0`; `None` = no sample.
    slots: Vec<Option<Slot>>,
    /// Dense per-node power histories (empty unless history is enabled).
    histories: Vec<Option<PowerHistory>>,
    history_depth: usize,
    /// Number of `Some` slots (nodes with at least one sample).
    populated: usize,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-node power histories of the given depth (for windowed
    /// rates and smoothing; see [`PowerHistory`]).
    ///
    /// # Panics
    /// Panics if `depth < 2`.
    pub fn with_history(mut self, depth: usize) -> Self {
        assert!(depth >= 2, "history depth must be at least 2");
        self.history_depth = depth;
        self
    }

    fn slot(&self, node: NodeId) -> Option<&Slot> {
        self.slots.get(node.0 as usize).and_then(Option::as_ref)
    }

    /// Ingests one sample. A newer sample for the same node shifts the old
    /// power estimate into the "previous" slot; a stale or equal-time
    /// duplicate is ignored.
    pub fn ingest(&mut self, sample: NodeSample) {
        let idx = sample.node.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let fresh = match &mut self.slots[idx] {
            Some(slot) => {
                if sample.at > slot.latest.at {
                    slot.prev_power_w = Some(slot.latest.power_w);
                    slot.latest = sample;
                    true
                } else {
                    false
                }
            }
            empty => {
                *empty = Some(Slot {
                    latest: sample,
                    prev_power_w: None,
                });
                self.populated += 1;
                true
            }
        };
        if fresh && self.history_depth >= 2 {
            if idx >= self.histories.len() {
                self.histories.resize_with(idx + 1, || None);
            }
            self.histories[idx]
                .get_or_insert_with(|| PowerHistory::new(self.history_depth))
                .push(sample.at, sample.power_w);
        }
    }

    /// Ingests a batch with one pass of dense writes.
    ///
    /// Replaces the old thread-sharded concurrent ingest: per-sample cost
    /// is now an array write, so fanning a control cycle's batch over
    /// threads costs more in handoff than it saves. The end state equals
    /// one-by-one ingestion exactly (same code path, same order).
    pub fn ingest_batch(&mut self, samples: &[NodeSample]) {
        for s in samples {
            self.ingest(*s);
        }
    }

    /// [`Collector::ingest_batch`] with span recording: wraps the batch
    /// in an `ingest` span carrying the sample count.
    pub fn ingest_batch_traced(
        &mut self,
        samples: &[NodeSample],
        at: SimTime,
        spans: &mut ppc_obs::SpanRecorder,
    ) {
        spans.open("ingest", at);
        spans.attr("samples", ppc_obs::AttrValue::U64(samples.len() as u64));
        self.ingest_batch(samples);
        spans.close(at);
    }

    /// Re-stamps `node`'s slot to `now` as if a sample identical to the
    /// stored one had just been ingested: the latest power shifts into the
    /// "previous" slot (making `ΔP = 0`) and the timestamp advances.
    ///
    /// This is the incremental-evaluation path's way of keeping a
    /// *quiescent* node fresh without re-reading it; one call covers any
    /// number of skipped intervals because every skipped sample would have
    /// been identical. No-op for nodes without a sample. Returns `true` if
    /// the slot advanced.
    pub fn refresh(&mut self, node: NodeId, now: SimTime) -> bool {
        let idx = node.0 as usize;
        let Some(Some(slot)) = self.slots.get_mut(idx) else {
            return false;
        };
        if now <= slot.latest.at {
            return false;
        }
        slot.prev_power_w = Some(slot.latest.power_w);
        slot.latest.at = now;
        let refreshed = slot.latest;
        if self.history_depth >= 2 {
            if idx >= self.histories.len() {
                self.histories.resize_with(idx + 1, || None);
            }
            self.histories[idx]
                .get_or_insert_with(|| PowerHistory::new(self.history_depth))
                .push(refreshed.at, refreshed.power_w);
        }
        true
    }

    /// Windowed rate of increase over the last `k` intervals for `node`
    /// (requires a history-enabled collector; see [`Collector::with_history`]).
    pub fn windowed_rate_of(&self, node: NodeId, k: usize) -> Option<f64> {
        self.histories
            .get(node.0 as usize)?
            .as_ref()?
            .windowed_rate(k)
    }

    /// Smoothed (mean over history) power estimate for `node`.
    pub fn smoothed_power_of(&self, node: NodeId) -> Option<f64> {
        self.histories.get(node.0 as usize)?.as_ref()?.mean()
    }

    /// Drops a node from the store (it left the candidate set).
    pub fn forget(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.take().is_some() {
                self.populated -= 1;
            }
        }
        if let Some(history) = self.histories.get_mut(idx) {
            *history = None;
        }
    }

    /// Drops every stored sample (capacity is kept for reuse).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.histories.iter_mut().for_each(|h| *h = None);
        self.populated = 0;
    }

    /// Number of nodes with at least one sample.
    pub fn node_count(&self) -> usize {
        self.populated
    }

    /// Latest sample for `node`.
    pub fn latest(&self, node: NodeId) -> Option<NodeSample> {
        self.slot(node).map(|s| s.latest)
    }

    /// Latest power estimate for `node`, watts.
    pub fn power_of(&self, node: NodeId) -> Option<f64> {
        self.slot(node).map(|s| s.latest.power_w)
    }

    /// Previous-interval power estimate for `node`, watts.
    pub fn prev_power_of(&self, node: NodeId) -> Option<f64> {
        self.slot(node).and_then(|s| s.prev_power_w)
    }

    /// Rate of increase `ΔP^t(x)` for `node`: `(P^t − P^{t−1}) / P^{t−1}`.
    /// `None` until two samples exist.
    pub fn power_rate_of(&self, node: NodeId) -> Option<f64> {
        let slot = self.slot(node)?;
        let prev = slot.prev_power_w?;
        if prev <= 0.0 {
            return None;
        }
        Some((slot.latest.power_w - prev) / prev)
    }

    /// Sum of the latest power estimates over `nodes` (the paper's
    /// `Power(J)` when given `Nodes(J)`), watts. Nodes without samples
    /// contribute zero.
    pub fn aggregate_power(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .filter_map(|&n| self.slot(n).map(|s| s.latest.power_w))
            .sum()
    }

    /// Sum of previous-interval estimates over `nodes` (`P^{t−1}(J)`).
    pub fn aggregate_prev_power(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .filter_map(|&n| self.slot(n).and_then(|s| s.prev_power_w))
            .sum()
    }

    /// Estimated total power of all monitored nodes, watts.
    pub fn estimated_total_w(&self) -> f64 {
        self.slots.iter().flatten().map(|s| s.latest.power_w).sum()
    }

    /// Timestamp of the freshest sample, if any.
    pub fn freshest(&self) -> Option<SimTime> {
        self.slots.iter().flatten().map(|s| s.latest.at).max()
    }

    /// Age of `node`'s latest sample relative to `now` (`None` if the node
    /// has never reported). Saturates at zero for future-stamped samples.
    pub fn sample_age(&self, node: NodeId, now: SimTime) -> Option<SimDuration> {
        self.slot(node).map(|s| now.duration_since(s.latest.at))
    }

    /// True if `node`'s latest sample is no older than `max_age` at `now`.
    pub fn is_fresh(&self, node: NodeId, now: SimTime, max_age: SimDuration) -> bool {
        self.sample_age(node, now).is_some_and(|age| age <= max_age)
    }

    /// Fraction of `nodes` with a fresh sample (age ≤ `max_age` at `now`).
    /// An empty node set has full coverage by convention.
    pub fn coverage<'a>(
        &self,
        nodes: impl IntoIterator<Item = &'a NodeId>,
        now: SimTime,
        max_age: SimDuration,
    ) -> f64 {
        let (mut fresh, mut total) = (0usize, 0usize);
        for &n in nodes {
            total += 1;
            fresh += usize::from(self.is_fresh(n, now, max_age));
        }
        if total == 0 {
            1.0
        } else {
            fresh as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_node::{Level, OperatingState};

    fn sample(node: u32, at: u64, power: f64) -> NodeSample {
        NodeSample {
            node: NodeId(node),
            at: SimTime::from_secs(at),
            state: OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            level: Level::new(9),
            power_w: power,
        }
    }

    #[test]
    fn ingest_and_query() {
        let mut c = Collector::new();
        c.ingest(sample(1, 0, 200.0));
        c.ingest(sample(2, 0, 300.0));
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.power_of(NodeId(1)), Some(200.0));
        assert_eq!(c.estimated_total_w(), 500.0);
        assert_eq!(c.power_of(NodeId(9)), None);
    }

    #[test]
    fn newer_sample_shifts_previous() {
        let mut c = Collector::new();
        c.ingest(sample(1, 0, 200.0));
        assert_eq!(c.prev_power_of(NodeId(1)), None);
        assert_eq!(c.power_rate_of(NodeId(1)), None);
        c.ingest(sample(1, 1, 250.0));
        assert_eq!(c.power_of(NodeId(1)), Some(250.0));
        assert_eq!(c.prev_power_of(NodeId(1)), Some(200.0));
        assert!((c.power_rate_of(NodeId(1)).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stale_sample_is_ignored() {
        let mut c = Collector::new();
        c.ingest(sample(1, 5, 500.0));
        c.ingest(sample(1, 3, 100.0));
        assert_eq!(c.power_of(NodeId(1)), Some(500.0));
        assert_eq!(c.prev_power_of(NodeId(1)), None);
    }

    #[test]
    fn refresh_matches_reingesting_an_identical_sample() {
        let mut real = Collector::new();
        let mut lazy = Collector::new();
        for c in [&mut real, &mut lazy] {
            c.ingest(sample(1, 0, 200.0));
            c.ingest(sample(1, 1, 250.0));
        }
        // Real path: identical samples keep arriving every tick.
        for t in 2..=6u64 {
            real.ingest(sample(1, t, 250.0));
        }
        // Lazy path: one refresh covers all five skipped intervals.
        assert!(lazy.refresh(NodeId(1), SimTime::from_secs(6)));
        assert_eq!(real.power_of(NodeId(1)), lazy.power_of(NodeId(1)));
        assert_eq!(real.prev_power_of(NodeId(1)), lazy.prev_power_of(NodeId(1)));
        assert_eq!(
            real.latest(NodeId(1)).unwrap().at,
            lazy.latest(NodeId(1)).unwrap().at
        );
        assert_eq!(real.power_rate_of(NodeId(1)), Some(0.0));
        assert_eq!(lazy.power_rate_of(NodeId(1)), Some(0.0));
        // Refresh at-or-before the stored timestamp is a no-op.
        assert!(!lazy.refresh(NodeId(1), SimTime::from_secs(6)));
        // Unknown nodes are a no-op.
        assert!(!lazy.refresh(NodeId(42), SimTime::from_secs(9)));
    }

    #[test]
    fn aggregation_over_job_nodes() {
        let mut c = Collector::new();
        for i in 0..4 {
            c.ingest(sample(i, 0, 100.0 * (i + 1) as f64));
        }
        let nodes = [NodeId(0), NodeId(2)];
        assert_eq!(c.aggregate_power(&nodes), 100.0 + 300.0);
        // Unknown nodes contribute zero.
        assert_eq!(c.aggregate_power(&[NodeId(0), NodeId(99)]), 100.0);
    }

    #[test]
    fn concurrent_ingest_matches_sequential() {
        // The batched fast path must leave exactly the state one-by-one
        // ingestion does (the invariant the old thread-sharded ingest was
        // tested for).
        let mut seq = Collector::new();
        let mut con = Collector::new();
        let batch: Vec<NodeSample> = (0..500)
            .map(|i| sample(i % 100, (i / 100) as u64, i as f64))
            .collect();
        for s in batch.clone() {
            seq.ingest(s);
        }
        con.ingest_batch(&batch);
        assert_eq!(seq.node_count(), con.node_count());
        for i in 0..100 {
            assert_eq!(seq.power_of(NodeId(i)), con.power_of(NodeId(i)), "node {i}");
            assert_eq!(
                seq.prev_power_of(NodeId(i)),
                con.prev_power_of(NodeId(i)),
                "prev node {i}"
            );
        }
    }

    #[test]
    fn sparse_ids_and_gaps_are_exact() {
        // Dense storage must behave identically for high ids and holes.
        let mut c = Collector::new();
        c.ingest(sample(10_000, 0, 123.0));
        c.ingest(sample(3, 0, 7.0));
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.power_of(NodeId(10_000)), Some(123.0));
        assert_eq!(c.power_of(NodeId(9_999)), None, "gap below a high id");
        assert_eq!(c.power_of(NodeId(20_000)), None, "beyond the store");
        assert_eq!(c.estimated_total_w(), 130.0);
        assert_eq!(
            c.aggregate_power(&[NodeId(3), NodeId(5_000), NodeId(10_000)]),
            130.0
        );
        assert_eq!(c.freshest(), Some(SimTime::from_secs(0)));
        c.forget(NodeId(10_000));
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.power_of(NodeId(10_000)), None);
        // Forgetting an id that never had a sample is a no-op.
        c.forget(NodeId(77));
        c.forget(NodeId(40_000));
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn forget_and_clear() {
        let mut c = Collector::new();
        c.ingest(sample(1, 0, 1.0));
        c.ingest(sample(2, 0, 2.0));
        c.forget(NodeId(1));
        assert_eq!(c.node_count(), 1);
        c.clear();
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.freshest(), None);
        // A cleared collector accepts fresh samples (capacity reused).
        c.ingest(sample(2, 9, 4.0));
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.power_of(NodeId(2)), Some(4.0));
        assert_eq!(c.prev_power_of(NodeId(2)), None, "clear resets history");
    }

    #[test]
    fn history_enabled_collector_reports_windowed_rates() {
        let mut c = Collector::new().with_history(4);
        for (t, p) in [(0u64, 100.0), (1, 110.0), (2, 121.0), (3, 133.1)] {
            c.ingest(sample(1, t, p));
        }
        assert!((c.windowed_rate_of(NodeId(1), 1).unwrap() - 0.1).abs() < 1e-9);
        assert!((c.windowed_rate_of(NodeId(1), 3).unwrap() - 0.331).abs() < 1e-9);
        assert!(c.smoothed_power_of(NodeId(1)).unwrap() > 100.0);
        // Default collector has no histories.
        let mut plain = Collector::new();
        plain.ingest(sample(1, 0, 10.0));
        plain.ingest(sample(1, 1, 20.0));
        assert_eq!(plain.windowed_rate_of(NodeId(1), 1), None);
        // Forget clears history too.
        c.forget(NodeId(1));
        assert_eq!(c.windowed_rate_of(NodeId(1), 1), None);
    }

    #[test]
    fn staleness_and_coverage_track_sample_age() {
        let mut c = Collector::new();
        c.ingest(sample(0, 10, 100.0));
        c.ingest(sample(1, 14, 100.0));
        let now = SimTime::from_secs(15);
        let max_age = SimDuration::from_secs(5);
        assert_eq!(
            c.sample_age(NodeId(0), now),
            Some(SimDuration::from_secs(5))
        );
        assert_eq!(
            c.sample_age(NodeId(1), now),
            Some(SimDuration::from_secs(1))
        );
        assert_eq!(c.sample_age(NodeId(9), now), None, "never reported");
        assert!(
            c.is_fresh(NodeId(0), now, max_age),
            "age == max_age is fresh"
        );
        assert!(!c.is_fresh(NodeId(0), SimTime::from_secs(16), max_age));
        assert!(!c.is_fresh(NodeId(9), now, max_age));
        // Coverage over {0, 1, 9}: node 9 never reported.
        let nodes = [NodeId(0), NodeId(1), NodeId(9)];
        assert!((c.coverage(&nodes, now, max_age) - 2.0 / 3.0).abs() < 1e-12);
        // Later, node 0 goes stale too.
        let later = SimTime::from_secs(18);
        assert!((c.coverage(&nodes, later, max_age) - 1.0 / 3.0).abs() < 1e-12);
        // Empty set: full coverage by convention.
        assert_eq!(c.coverage(&[], now, max_age), 1.0);
    }

    #[test]
    fn rate_undefined_for_zero_previous_power() {
        let mut c = Collector::new();
        c.ingest(sample(1, 0, 0.0));
        c.ingest(sample(1, 1, 50.0));
        assert_eq!(c.power_rate_of(NodeId(1)), None);
    }
}
