//! The central collector on the management node.
//!
//! Ingests agent samples — possibly concurrently, one channel per burst of
//! agents — and maintains the views the capping algorithm and its
//! selection policies read:
//!
//! * latest per-node sample (state, level, power estimate);
//! * the previous power estimate per node, so change-based policies can
//!   compute the rate of increase `ΔP^t(x) = (P^t − P^{t−1}) / P^{t−1}`;
//! * per-job aggregation `Power(J) = Σ_{i ∈ Nodes(J)} P(i)`.
//!
//! Interior mutability via `parking_lot::RwLock` keeps ingestion shareable
//! across agent threads; per-node slots make the end state independent of
//! arrival order, so concurrent runs stay deterministic.

use crate::history::PowerHistory;
use crate::sample::NodeSample;
use parking_lot::RwLock;
use ppc_node::NodeId;
use ppc_simkit::SimTime;
use std::collections::HashMap;

/// Per-node power bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Slot {
    latest: NodeSample,
    prev_power_w: Option<f64>,
}

/// The central sample store.
#[derive(Debug, Default)]
pub struct Collector {
    slots: RwLock<HashMap<NodeId, Slot>>,
    /// Optional per-node power history (depth 0 = disabled).
    histories: RwLock<HashMap<NodeId, PowerHistory>>,
    history_depth: usize,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-node power histories of the given depth (for windowed
    /// rates and smoothing; see [`PowerHistory`]).
    ///
    /// # Panics
    /// Panics if `depth < 2`.
    pub fn with_history(mut self, depth: usize) -> Self {
        assert!(depth >= 2, "history depth must be at least 2");
        self.history_depth = depth;
        self
    }

    /// Ingests one sample. A newer sample for the same node shifts the old
    /// power estimate into the "previous" slot; a stale or equal-time
    /// duplicate is ignored.
    pub fn ingest(&self, sample: NodeSample) {
        let mut fresh = false;
        {
            let mut slots = self.slots.write();
            match slots.get_mut(&sample.node) {
                Some(slot) => {
                    if sample.at > slot.latest.at {
                        slot.prev_power_w = Some(slot.latest.power_w);
                        slot.latest = sample;
                        fresh = true;
                    }
                }
                None => {
                    slots.insert(
                        sample.node,
                        Slot {
                            latest: sample,
                            prev_power_w: None,
                        },
                    );
                    fresh = true;
                }
            }
        }
        if fresh && self.history_depth >= 2 {
            let mut histories = self.histories.write();
            histories
                .entry(sample.node)
                .or_insert_with(|| PowerHistory::new(self.history_depth))
                .push(sample.at, sample.power_w);
        }
    }

    /// Windowed rate of increase over the last `k` intervals for `node`
    /// (requires a history-enabled collector; see [`Collector::with_history`]).
    pub fn windowed_rate_of(&self, node: NodeId, k: usize) -> Option<f64> {
        self.histories.read().get(&node)?.windowed_rate(k)
    }

    /// Smoothed (mean over history) power estimate for `node`.
    pub fn smoothed_power_of(&self, node: NodeId) -> Option<f64> {
        self.histories.read().get(&node)?.mean()
    }

    /// Ingests a batch, fanning the writes out over worker threads.
    ///
    /// The batch is sharded by node id, so all samples of one node are
    /// applied by one worker in input order — the end state is identical
    /// to sequential ingestion as long as each node's samples arrive
    /// time-ordered within the batch (agents produce exactly that).
    pub fn ingest_concurrent(&self, samples: Vec<NodeSample>) {
        if samples.len() < 64 {
            for s in samples {
                self.ingest(s);
            }
            return;
        }
        const WORKERS: usize = 4;
        let mut shards: Vec<Vec<NodeSample>> = (0..WORKERS).map(|_| Vec::new()).collect();
        for s in samples {
            shards[s.node.0 as usize % WORKERS].push(s);
        }
        crossbeam::scope(|scope| {
            for shard in shards {
                scope.spawn(move |_| {
                    for s in shard {
                        self.ingest(s);
                    }
                });
            }
        })
        .expect("collector ingest worker panicked");
    }

    /// Drops a node from the store (it left the candidate set).
    pub fn forget(&self, node: NodeId) {
        self.slots.write().remove(&node);
        self.histories.write().remove(&node);
    }

    /// Drops every stored sample.
    pub fn clear(&self) {
        self.slots.write().clear();
        self.histories.write().clear();
    }

    /// Number of nodes with at least one sample.
    pub fn node_count(&self) -> usize {
        self.slots.read().len()
    }

    /// Latest sample for `node`.
    pub fn latest(&self, node: NodeId) -> Option<NodeSample> {
        self.slots.read().get(&node).map(|s| s.latest)
    }

    /// Latest power estimate for `node`, watts.
    pub fn power_of(&self, node: NodeId) -> Option<f64> {
        self.slots.read().get(&node).map(|s| s.latest.power_w)
    }

    /// Previous-interval power estimate for `node`, watts.
    pub fn prev_power_of(&self, node: NodeId) -> Option<f64> {
        self.slots.read().get(&node).and_then(|s| s.prev_power_w)
    }

    /// Rate of increase `ΔP^t(x)` for `node`: `(P^t − P^{t−1}) / P^{t−1}`.
    /// `None` until two samples exist.
    pub fn power_rate_of(&self, node: NodeId) -> Option<f64> {
        let slots = self.slots.read();
        let slot = slots.get(&node)?;
        let prev = slot.prev_power_w?;
        if prev <= 0.0 {
            return None;
        }
        Some((slot.latest.power_w - prev) / prev)
    }

    /// Sum of the latest power estimates over `nodes` (the paper's
    /// `Power(J)` when given `Nodes(J)`), watts. Nodes without samples
    /// contribute zero.
    pub fn aggregate_power(&self, nodes: &[NodeId]) -> f64 {
        let slots = self.slots.read();
        nodes
            .iter()
            .filter_map(|n| slots.get(n).map(|s| s.latest.power_w))
            .sum()
    }

    /// Sum of previous-interval estimates over `nodes` (`P^{t−1}(J)`).
    pub fn aggregate_prev_power(&self, nodes: &[NodeId]) -> f64 {
        let slots = self.slots.read();
        nodes
            .iter()
            .filter_map(|n| slots.get(n).and_then(|s| s.prev_power_w))
            .sum()
    }

    /// Estimated total power of all monitored nodes, watts.
    pub fn estimated_total_w(&self) -> f64 {
        self.slots.read().values().map(|s| s.latest.power_w).sum()
    }

    /// Timestamp of the freshest sample, if any.
    pub fn freshest(&self) -> Option<SimTime> {
        self.slots.read().values().map(|s| s.latest.at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_node::{Level, OperatingState};

    fn sample(node: u32, at: u64, power: f64) -> NodeSample {
        NodeSample {
            node: NodeId(node),
            at: SimTime::from_secs(at),
            state: OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            level: Level::new(9),
            power_w: power,
        }
    }

    #[test]
    fn ingest_and_query() {
        let c = Collector::new();
        c.ingest(sample(1, 0, 200.0));
        c.ingest(sample(2, 0, 300.0));
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.power_of(NodeId(1)), Some(200.0));
        assert_eq!(c.estimated_total_w(), 500.0);
        assert_eq!(c.power_of(NodeId(9)), None);
    }

    #[test]
    fn newer_sample_shifts_previous() {
        let c = Collector::new();
        c.ingest(sample(1, 0, 200.0));
        assert_eq!(c.prev_power_of(NodeId(1)), None);
        assert_eq!(c.power_rate_of(NodeId(1)), None);
        c.ingest(sample(1, 1, 250.0));
        assert_eq!(c.power_of(NodeId(1)), Some(250.0));
        assert_eq!(c.prev_power_of(NodeId(1)), Some(200.0));
        assert!((c.power_rate_of(NodeId(1)).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stale_sample_is_ignored() {
        let c = Collector::new();
        c.ingest(sample(1, 5, 500.0));
        c.ingest(sample(1, 3, 100.0));
        assert_eq!(c.power_of(NodeId(1)), Some(500.0));
        assert_eq!(c.prev_power_of(NodeId(1)), None);
    }

    #[test]
    fn aggregation_over_job_nodes() {
        let c = Collector::new();
        for i in 0..4 {
            c.ingest(sample(i, 0, 100.0 * (i + 1) as f64));
        }
        let nodes = [NodeId(0), NodeId(2)];
        assert_eq!(c.aggregate_power(&nodes), 100.0 + 300.0);
        // Unknown nodes contribute zero.
        assert_eq!(c.aggregate_power(&[NodeId(0), NodeId(99)]), 100.0);
    }

    #[test]
    fn concurrent_ingest_matches_sequential() {
        let seq = Collector::new();
        let con = Collector::new();
        let batch: Vec<NodeSample> = (0..500)
            .map(|i| sample(i % 100, (i / 100) as u64, i as f64))
            .collect();
        for s in batch.clone() {
            seq.ingest(s);
        }
        con.ingest_concurrent(batch);
        assert_eq!(seq.node_count(), con.node_count());
        for i in 0..100 {
            assert_eq!(seq.power_of(NodeId(i)), con.power_of(NodeId(i)), "node {i}");
            assert_eq!(
                seq.prev_power_of(NodeId(i)),
                con.prev_power_of(NodeId(i)),
                "prev node {i}"
            );
        }
    }

    #[test]
    fn forget_and_clear() {
        let c = Collector::new();
        c.ingest(sample(1, 0, 1.0));
        c.ingest(sample(2, 0, 2.0));
        c.forget(NodeId(1));
        assert_eq!(c.node_count(), 1);
        c.clear();
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.freshest(), None);
    }

    #[test]
    fn history_enabled_collector_reports_windowed_rates() {
        let c = Collector::new().with_history(4);
        for (t, p) in [(0u64, 100.0), (1, 110.0), (2, 121.0), (3, 133.1)] {
            c.ingest(sample(1, t, p));
        }
        assert!((c.windowed_rate_of(NodeId(1), 1).unwrap() - 0.1).abs() < 1e-9);
        assert!((c.windowed_rate_of(NodeId(1), 3).unwrap() - 0.331).abs() < 1e-9);
        assert!(c.smoothed_power_of(NodeId(1)).unwrap() > 100.0);
        // Default collector has no histories.
        let plain = Collector::new();
        plain.ingest(sample(1, 0, 10.0));
        plain.ingest(sample(1, 1, 20.0));
        assert_eq!(plain.windowed_rate_of(NodeId(1), 1), None);
        // Forget clears history too.
        c.forget(NodeId(1));
        assert_eq!(c.windowed_rate_of(NodeId(1), 1), None);
    }

    #[test]
    fn rate_undefined_for_zero_previous_power() {
        let c = Collector::new();
        c.ingest(sample(1, 0, 0.0));
        c.ingest(sample(1, 1, 50.0));
        assert_eq!(c.power_rate_of(NodeId(1)), None);
    }
}
