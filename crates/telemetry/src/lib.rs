//! # ppc-telemetry — sensing: agents, meter, collector
//!
//! The paper's architecture senses power at two granularities:
//!
//! * a facility **power meter** measures the whole system's draw directly
//!   (the Observability assumption) — [`meter::SystemPowerMeter`], with a
//!   configurable error model;
//! * a **profiling agent** on every candidate node samples its `/proc`
//!   counters each interval τ and estimates the node's power through
//!   Formula (1) — [`agent::ProfilingAgent`], with failure injection
//!   (dropped samples) to exercise the manager's robustness;
//! * a **central collector** on the management node ingests agent samples
//!   into dense per-node slots and serves the per-node and per-job power
//!   views the selection policies read as lock-free array reads —
//!   [`collector::Collector`];
//! * the **management cost** of doing all this grows non-linearly with the
//!   number of monitored nodes (the paper's Figure 5) — [`cost`] accounts
//!   for it both by measuring the real collector code path and through a
//!   calibrated analytic model.

pub mod agent;
pub mod collector;
pub mod cost;
pub mod history;
pub mod meter;
pub mod noise;
pub mod sample;
pub mod tree;

pub use agent::ProfilingAgent;
pub use collector::Collector;
pub use history::PowerHistory;
pub use meter::{MeterReading, SystemPowerMeter};
pub use noise::NoiseModel;
pub use sample::NodeSample;
pub use tree::AggregationTree;
