//! Telemetry sample types.

use ppc_node::{Level, NodeId, OperatingState};
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// One profiling-agent report: what the central manager learns about a
/// node each sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSample {
    /// The sampled node.
    pub node: NodeId,
    /// Sample timestamp.
    pub at: SimTime,
    /// Operating state derived from `/proc` counter deltas.
    pub state: OperatingState,
    /// The node's power level when sampled.
    pub level: Level,
    /// Formula-(1) power estimate at that level and state, watts.
    pub power_w: f64,
}

impl NodeSample {
    /// True if the sampled node was idle.
    pub fn is_idle(&self) -> bool {
        self.state.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_passthrough() {
        let s = NodeSample {
            node: NodeId(1),
            at: SimTime::ZERO,
            state: OperatingState::IDLE,
            level: Level::new(9),
            power_w: 160.0,
        };
        assert!(s.is_idle());
        let busy = NodeSample {
            state: OperatingState {
                cpu_util: 0.5,
                mem_used_bytes: 0,
                nic_bytes: 0,
            },
            ..s
        };
        assert!(!busy.is_idle());
    }
}
