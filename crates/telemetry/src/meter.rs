//! The facility power meter.
//!
//! The paper's Observability assumption: "the system's total power
//! consumption can be measured directly" — a single meter on the machine's
//! feed. The meter reads the *true* aggregate node power (computed by the
//! simulation) through an error model; the capping algorithm only ever
//! sees the metered value.

use crate::noise::NoiseModel;
use ppc_simkit::{DetRng, SimTime, TimeSeries};

/// Outcome of one meter read.
///
/// The distinction matters to the control loop: a held value is a real
/// (if stale) estimate the manager can act on, while a gap before the
/// first successful sample carries no information at all — the old
/// behavior of reporting the initial `0.0` W on such a gap told the
/// manager the machine was drawing no power, a maximally wrong answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeterReading {
    /// The meter sampled the feed this tick.
    Fresh(f64),
    /// The sample dropped; the meter holds its previous good value.
    Held(f64),
    /// The sample dropped and the meter has never produced a good value:
    /// there is nothing to hold. The caller must skip, not act on zero.
    Gap,
}

impl MeterReading {
    /// The reading's value, if it carries one.
    pub fn value(self) -> Option<f64> {
        match self {
            MeterReading::Fresh(v) | MeterReading::Held(v) => Some(v),
            MeterReading::Gap => None,
        }
    }

    /// True unless the meter sampled the feed this tick.
    pub fn is_dropout(self) -> bool {
        !matches!(self, MeterReading::Fresh(_))
    }
}

/// Whole-system power meter with reading history.
#[derive(Debug, Clone)]
pub struct SystemPowerMeter {
    noise: NoiseModel,
    rng: DetRng,
    readings: TimeSeries,
    /// Last good (non-dropout) value; `None` until the first one.
    last_good_w: Option<f64>,
    /// Dropouts seen (held + gap).
    dropouts: u64,
}

impl SystemPowerMeter {
    /// Creates a meter with the given error model and RNG stream.
    pub fn new(noise: NoiseModel, rng: DetRng) -> Self {
        noise.validate();
        SystemPowerMeter {
            noise,
            rng,
            readings: TimeSeries::new(),
            last_good_w: None,
            dropouts: 0,
        }
    }

    /// Takes a reading of `true_power_w` at time `now` and records it.
    ///
    /// On a dropout the meter holds its last good value (a real meter's
    /// display does not blank; the manager keeps acting on the stale
    /// reading) and says so via [`MeterReading::Held`]. A dropout before
    /// any good value yields [`MeterReading::Gap`]: nothing is recorded
    /// and the caller must not treat it as a measurement.
    pub fn read(&mut self, true_power_w: f64, now: SimTime) -> MeterReading {
        assert!(true_power_w >= 0.0, "power cannot be negative");
        match self.noise.apply(true_power_w, &mut self.rng) {
            Some(value) => {
                self.last_good_w = Some(value);
                self.readings.push(now, value);
                MeterReading::Fresh(value)
            }
            None => {
                self.dropouts += 1;
                match self.last_good_w {
                    Some(held) => {
                        self.readings.push(now, held);
                        MeterReading::Held(held)
                    }
                    None => MeterReading::Gap,
                }
            }
        }
    }

    /// The most recent good reading, watts (0 before the first one).
    pub fn last_reading_w(&self) -> f64 {
        self.last_good_w.unwrap_or(0.0)
    }

    /// Dropouts seen so far (held readings and gaps).
    pub fn dropouts(&self) -> u64 {
        self.dropouts
    }

    /// Full reading history (the `P(t)` trace metrics integrate).
    pub fn history(&self) -> &TimeSeries {
        &self.readings
    }

    /// Peak reading so far, watts (0 if no readings).
    pub fn peak_w(&self) -> f64 {
        self.readings.max().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::RngFactory;

    fn meter(noise: NoiseModel) -> SystemPowerMeter {
        SystemPowerMeter::new(noise, RngFactory::new(11).stream("meter-test", 0))
    }

    #[test]
    fn noiseless_meter_reads_truth() {
        let mut m = meter(NoiseModel::NONE);
        assert_eq!(m.read(1000.0, SimTime::ZERO), MeterReading::Fresh(1000.0));
        assert_eq!(
            m.read(1500.0, SimTime::from_secs(1)),
            MeterReading::Fresh(1500.0)
        );
        assert_eq!(m.peak_w(), 1500.0);
        assert_eq!(m.history().len(), 2);
        assert_eq!(m.dropouts(), 0);
    }

    #[test]
    fn dropout_before_first_good_reading_is_a_gap() {
        let mut m = meter(NoiseModel {
            relative_std: 0.0,
            dropout_prob: 1.0,
        });
        // The old degenerate path reported the initial 0.0 here, telling
        // the manager the machine drew no power. Now it is an explicit gap
        // with no recorded value.
        assert_eq!(m.read(500.0, SimTime::ZERO), MeterReading::Gap);
        assert_eq!(m.read(500.0, SimTime::from_secs(1)), MeterReading::Gap);
        assert_eq!(m.history().len(), 0, "gaps record nothing");
        assert_eq!(m.last_reading_w(), 0.0);
        assert_eq!(m.dropouts(), 2);
    }

    #[test]
    fn dropout_after_good_reading_holds_it() {
        // Alternate good reads and dropouts deterministically by toggling
        // the dropout probability.
        let mut m = meter(NoiseModel::NONE);
        assert_eq!(m.read(800.0, SimTime::ZERO), MeterReading::Fresh(800.0));
        m.noise.dropout_prob = 1.0;
        let r = m.read(900.0, SimTime::from_secs(1));
        assert_eq!(r, MeterReading::Held(800.0));
        assert!(r.is_dropout());
        assert_eq!(r.value(), Some(800.0));
        assert_eq!(m.history().len(), 2, "held values are recorded");
        assert_eq!(m.last_reading_w(), 800.0);
        m.noise.dropout_prob = 0.0;
        assert_eq!(
            m.read(900.0, SimTime::from_secs(2)),
            MeterReading::Fresh(900.0)
        );
        assert_eq!(m.dropouts(), 1);
    }

    #[test]
    fn noisy_meter_tracks_truth_on_average() {
        let mut m = meter(NoiseModel::METER_1PCT);
        let mut sum = 0.0;
        for i in 0..1000u64 {
            sum += m.read(2000.0, SimTime::from_secs(i)).value().unwrap_or(0.0);
        }
        let mean = sum / 1000.0;
        assert!((mean - 2000.0).abs() < 5.0, "mean={mean}");
        // Peak should be within a few sigma of truth, not wildly off.
        assert!(m.peak_w() < 2000.0 * 1.06);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_power_rejected() {
        meter(NoiseModel::NONE).read(-1.0, SimTime::ZERO);
    }
}
