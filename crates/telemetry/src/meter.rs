//! The facility power meter.
//!
//! The paper's Observability assumption: "the system's total power
//! consumption can be measured directly" — a single meter on the machine's
//! feed. The meter reads the *true* aggregate node power (computed by the
//! simulation) through an error model; the capping algorithm only ever
//! sees the metered value.

use crate::noise::NoiseModel;
use ppc_simkit::{DetRng, SimTime, TimeSeries};

/// Whole-system power meter with reading history.
#[derive(Debug)]
pub struct SystemPowerMeter {
    noise: NoiseModel,
    rng: DetRng,
    readings: TimeSeries,
    last_reading_w: f64,
}

impl SystemPowerMeter {
    /// Creates a meter with the given error model and RNG stream.
    pub fn new(noise: NoiseModel, rng: DetRng) -> Self {
        noise.validate();
        SystemPowerMeter {
            noise,
            rng,
            readings: TimeSeries::new(),
            last_reading_w: 0.0,
        }
    }

    /// Takes a reading of `true_power_w` at time `now` and records it.
    ///
    /// On a dropout the meter holds its last value (a real meter's display
    /// does not blank; the manager keeps acting on the stale reading).
    pub fn read(&mut self, true_power_w: f64, now: SimTime) -> f64 {
        assert!(true_power_w >= 0.0, "power cannot be negative");
        let value = self
            .noise
            .apply(true_power_w, &mut self.rng)
            .unwrap_or(self.last_reading_w);
        self.last_reading_w = value;
        self.readings.push(now, value);
        value
    }

    /// The most recent reading, watts.
    pub fn last_reading_w(&self) -> f64 {
        self.last_reading_w
    }

    /// Full reading history (the `P(t)` trace metrics integrate).
    pub fn history(&self) -> &TimeSeries {
        &self.readings
    }

    /// Peak reading so far, watts (0 if no readings).
    pub fn peak_w(&self) -> f64 {
        self.readings.max().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_simkit::RngFactory;

    fn meter(noise: NoiseModel) -> SystemPowerMeter {
        SystemPowerMeter::new(noise, RngFactory::new(11).stream("meter-test", 0))
    }

    #[test]
    fn noiseless_meter_reads_truth() {
        let mut m = meter(NoiseModel::NONE);
        assert_eq!(m.read(1000.0, SimTime::ZERO), 1000.0);
        assert_eq!(m.read(1500.0, SimTime::from_secs(1)), 1500.0);
        assert_eq!(m.peak_w(), 1500.0);
        assert_eq!(m.history().len(), 2);
    }

    #[test]
    fn dropout_holds_last_value() {
        let mut m = meter(NoiseModel {
            relative_std: 0.0,
            dropout_prob: 1.0,
        });
        // First reading drops → holds initial 0.
        assert_eq!(m.read(500.0, SimTime::ZERO), 0.0);
        assert_eq!(m.last_reading_w(), 0.0);
    }

    #[test]
    fn noisy_meter_tracks_truth_on_average() {
        let mut m = meter(NoiseModel::METER_1PCT);
        let mut sum = 0.0;
        for i in 0..1000u64 {
            sum += m.read(2000.0, SimTime::from_secs(i));
        }
        let mean = sum / 1000.0;
        assert!((mean - 2000.0).abs() < 5.0, "mean={mean}");
        // Peak should be within a few sigma of truth, not wildly off.
        assert!(m.peak_w() < 2000.0 * 1.06);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_power_rejected() {
        meter(NoiseModel::NONE).read(-1.0, SimTime::ZERO);
    }
}
