//! The facility → row → rack → node topology.
//!
//! Real facilities do not run one flat control loop over every node:
//! power is provisioned down a tree (facility PDUs feed rows, rows feed
//! rack PDUs, racks feed nodes) and each level protects its own budget.
//! [`Topology`] captures that tree shape for the hierarchical control
//! plane: node ids are assigned **contiguously per rack** (rack `r`
//! covers ids `[r·nodes_per_rack, (r+1)·nodes_per_rack)`), so every
//! per-rack aggregate — fleet power, candidate membership, telemetry
//! freshness — is a dense index-order fold or range query over the same
//! flat arrays the rest of the simulator already uses. Fan-out at both
//! levels is configurable; `racks_per_row` groups racks into rows for
//! the two-stage facility → row → rack budget delegation.
//!
//! A [`Topology::single_rack`] degenerates to the flat architecture: one
//! rack holding every node, one row holding that rack. The hierarchical
//! manager treats that shape as a pure passthrough, which is what makes
//! the flat-vs-single-rack determinism equivalence checkable bit for bit.

use crate::error::CoreError;
use ppc_node::NodeId;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The static facility → row → rack → node tree, with contiguous
/// per-rack node-id ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    node_count: u32,
    nodes_per_rack: u32,
    racks_per_row: u32,
}

impl Topology {
    /// A topology over `node_count` nodes with the given fan-out at each
    /// level. The last rack (and the last row) may be partially filled.
    pub fn new(
        node_count: u32,
        nodes_per_rack: u32,
        racks_per_row: u32,
    ) -> Result<Self, CoreError> {
        if node_count == 0 {
            return Err(CoreError::InvalidConfig(
                "topology needs at least one node".to_string(),
            ));
        }
        if nodes_per_rack == 0 || racks_per_row == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "topology fan-out must be positive, got {nodes_per_rack} nodes/rack, \
                 {racks_per_row} racks/row"
            )));
        }
        Ok(Topology {
            node_count,
            nodes_per_rack,
            racks_per_row,
        })
    }

    /// The degenerate one-rack, one-row topology: the flat architecture
    /// expressed as a tree.
    pub fn single_rack(node_count: u32) -> Result<Self, CoreError> {
        Topology::new(node_count, node_count, 1)
    }

    /// True for the one-rack degenerate shape.
    pub fn is_single_rack(&self) -> bool {
        self.racks() == 1
    }

    /// Total nodes in the facility.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Configured nodes per rack (the last rack may hold fewer).
    pub fn nodes_per_rack(&self) -> u32 {
        self.nodes_per_rack
    }

    /// Configured racks per row (the last row may hold fewer).
    pub fn racks_per_row(&self) -> u32 {
        self.racks_per_row
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.node_count.div_ceil(self.nodes_per_rack) as usize
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        (self.racks() as u32).div_ceil(self.racks_per_row) as usize
    }

    /// The contiguous node-id range of rack `r`.
    pub fn rack_nodes(&self, r: usize) -> Range<u32> {
        let lo = (r as u32).saturating_mul(self.nodes_per_rack);
        let hi = lo.saturating_add(self.nodes_per_rack).min(self.node_count);
        lo..hi
    }

    /// The contiguous rack-index range of row `row`.
    pub fn row_racks(&self, row: usize) -> Range<usize> {
        let lo = row * self.racks_per_row as usize;
        let hi = (lo + self.racks_per_row as usize).min(self.racks());
        lo..hi
    }

    /// The rack holding `node`.
    pub fn rack_of(&self, node: NodeId) -> usize {
        (node.0 / self.nodes_per_rack) as usize
    }

    /// The row holding rack `r`.
    pub fn row_of_rack(&self, r: usize) -> usize {
        r / self.racks_per_row as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_node_space() {
        let t = Topology::new(10, 4, 2).unwrap();
        assert_eq!(t.racks(), 3);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.rack_nodes(0), 0..4);
        assert_eq!(t.rack_nodes(1), 4..8);
        assert_eq!(t.rack_nodes(2), 8..10, "last rack is partial");
        assert_eq!(t.row_racks(0), 0..2);
        assert_eq!(t.row_racks(1), 2..3, "last row is partial");
        // Every node maps into exactly the rack whose range holds it.
        for id in 0..10u32 {
            let r = t.rack_of(NodeId(id));
            assert!(t.rack_nodes(r).contains(&id));
            assert!(t.row_racks(t.row_of_rack(r)).contains(&r));
        }
    }

    #[test]
    fn single_rack_degenerates_to_flat() {
        let t = Topology::single_rack(128).unwrap();
        assert!(t.is_single_rack());
        assert_eq!(t.racks(), 1);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.rack_nodes(0), 0..128);
        assert_eq!(t.row_racks(0), 0..1);
    }

    #[test]
    fn exact_fanout_has_no_partial_tail() {
        let t = Topology::new(16, 4, 2).unwrap();
        assert_eq!(t.racks(), 4);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.rack_nodes(3), 12..16);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(Topology::new(0, 4, 2).is_err());
        assert!(Topology::new(8, 0, 2).is_err());
        assert!(Topology::new(8, 4, 0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::new(100, 8, 4).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
