//! The proportional-budget controller — a related-work *architecture*
//! baseline (not just a selection policy).
//!
//! Prior cluster power managers (Femal's two-level allocation,
//! Ranganathan's ensemble controller) work budget-first: the cluster
//! budget is divided across **all** nodes each cycle — proportionally to
//! their current draws — and every node locally picks the highest
//! operating point that fits its share. All nodes are equally important,
//! all nodes are monitored, and jobs are invisible.
//!
//! Running this controller against the paper's Algorithm 1 quantifies the
//! two claims the paper makes for its architecture: (1) job-aware target
//! selection loses less performance for the same cap, and (2) monitoring
//! a candidate subset is dramatically cheaper than the whole machine.

//! It also hosts the parent→child **budget delegation** primitives the
//! hierarchical control plane is built on: [`split_proportional`] cuts a
//! parent budget into child shares along telescoping cumulative-weight
//! cuts, [`delegate_with_headroom`] re-lends surplus between siblings
//! each control cycle, and [`conserves_budget`] is the bit-exact
//! conservation checker (Σ child budgets ≤ parent, expressed as a
//! sequential draw-down so it is verifiable without re-summing floats).

use crate::capping::NodeCommand;
use crate::state::{PowerState, Thresholds};
use ppc_node::budget::level_for_budget;
use ppc_node::{Level, NodeId, OperatingState, PowerModel};
use std::sync::Arc;

/// `true` iff `x` compares greater than zero. Spelled as a named guard
/// because every use site wants the *negation* to catch NaN too: a NaN
/// weight, budget or pool must take the "nothing to delegate" path, and
/// `!is_positive(NaN)` is true where `NaN <= 0.0` would be false.
pub(crate) fn is_positive(x: f64) -> bool {
    x > 0.0
}

/// Splits `total` watts across children proportionally to `weights`.
///
/// Shares are computed as differences of telescoping cumulative cuts
/// `cut_k = total · (Σ_{i≤k} w_i / Σ w_i)`, each clamped into the budget
/// still remaining, so the output satisfies the sequential draw-down
/// invariant of [`conserves_budget`] **exactly** — no epsilon. The final
/// cumulative weight is the same left-to-right fold as `weights.sum()`,
/// so the last cut is exactly `total`: a lone positive-weight child
/// receives the whole parent budget bit for bit (the degenerate
/// single-rack topology delegates losslessly).
///
/// Children with nonpositive weight receive exactly `0.0`. A nonpositive
/// `total` or all-nonpositive weights yield all-zero shares.
pub fn split_proportional(total: f64, weights: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; weights.len()];
    if !is_positive(total) {
        return out;
    }
    let w_total: f64 = weights.iter().map(|&w| w.max(0.0)).sum();
    if !is_positive(w_total) {
        return out;
    }
    let mut cum = 0.0f64;
    let mut prev_cut = 0.0f64;
    let mut remaining = total;
    for (share, &w) in out.iter_mut().zip(weights) {
        cum += w.max(0.0);
        // The last child's cut is exactly `total`: `cum` reaches `w_total`
        // through the identical fold that produced it.
        let cut = if cum >= w_total {
            total
        } else {
            total * (cum / w_total)
        };
        *share = (cut - prev_cut).max(0.0).min(remaining);
        remaining -= *share;
        prev_cut = cut;
    }
    out
}

/// The bit-exact conservation invariant: replaying the children against
/// the parent budget as a sequential draw-down, every child's share is
/// nonnegative and fits the budget still remaining.
///
/// This is the checkable form of "Σ child budgets ≤ parent": iterated
/// float re-summation of the shares can drift past the parent by ulps
/// even for a perfectly fair split, but the draw-down replay uses the
/// same subtraction order [`split_proportional`] clamped against, so a
/// conforming delegation verifies exactly.
pub fn conserves_budget(parent_w: f64, children_w: &[f64]) -> bool {
    let mut remaining = parent_w;
    for &c in children_w {
        if c < 0.0 || c > remaining {
            return false;
        }
        remaining -= c;
    }
    true
}

/// One cycle of sibling headroom re-delegation.
///
/// Starting from the weight-proportional base split, each child's *need*
/// is its current demand inflated to the P_L margin (`demand / (1 −
/// low_margin)` — the budget at which the child's learner would classify
/// that demand Green). Children with base share above need offer
/// `lend_fraction` of the surplus; children below need bid for their
/// deficit. The lending pool is `min(Σ offered, Σ wanted)` — surplus is
/// only moved where a sibling can use it — and the effective weights
/// (base − pro-rata lend + pro-rata borrow) are re-split through
/// [`split_proportional`], so the result inherits its exact draw-down
/// conservation.
///
/// With fewer than two children, or when nobody can lend or nobody needs
/// to borrow, this returns the base split unchanged — the single-rack
/// topology never sees its budget move.
pub fn delegate_with_headroom(
    total: f64,
    weights: &[f64],
    demands_w: &[f64],
    low_margin: f64,
    lend_fraction: f64,
) -> Vec<f64> {
    debug_assert_eq!(weights.len(), demands_w.len());
    let base = split_proportional(total, weights);
    if base.len() < 2 || !is_positive(lend_fraction) {
        return base;
    }
    let margin = low_margin.clamp(0.0, 0.95);
    let mut surplus = 0.0f64;
    let mut deficit = 0.0f64;
    let mut need = vec![0.0f64; base.len()];
    for ((&b, &d), n) in base.iter().zip(demands_w).zip(need.iter_mut()) {
        *n = d.max(0.0) / (1.0 - margin);
        if b > *n {
            surplus += (b - *n) * lend_fraction;
        } else {
            deficit += *n - b;
        }
    }
    let pool = surplus.min(deficit);
    if !is_positive(pool) {
        return base;
    }
    let mut effective = base.clone();
    for ((e, &n), &b) in effective.iter_mut().zip(&need).zip(&base) {
        if b > n {
            *e = b - (b - n) * lend_fraction * (pool / surplus);
        } else {
            *e = b + (n - b) * (pool / deficit);
        }
    }
    split_proportional(total, &effective)
}

/// Per-node inputs to the budget controller (one per monitored node).
#[derive(Debug, Clone, Copy)]
pub struct BudgetNodeView {
    /// The node.
    pub node: NodeId,
    /// Its current power level.
    pub level: Level,
    /// Its highest level.
    pub highest: Level,
    /// Its sampled operating state.
    pub state: OperatingState,
    /// Its sampled power draw, watts.
    pub power_w: f64,
}

/// Cycle statistics of the budget controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Control cycles run.
    pub cycles: u64,
    /// Cycles spent above the activation threshold (capping active).
    pub active_cycles: u64,
    /// Commands issued.
    pub commands_issued: u64,
}

/// The ensemble/two-level budget controller.
#[derive(Debug, Clone)]
pub struct ProportionalBudgetController {
    thresholds: Thresholds,
    stats: BudgetStats,
}

impl ProportionalBudgetController {
    /// Creates the controller with administrator-set thresholds (budget
    /// controllers do not learn; they protect the configured budget).
    pub fn new(thresholds: Thresholds) -> Self {
        ProportionalBudgetController {
            thresholds,
            stats: BudgetStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Cycle statistics.
    pub fn stats(&self) -> BudgetStats {
        self.stats
    }

    /// Runs one control cycle over every monitored node.
    ///
    /// Above `P_L`, the budget `P_L` is split across nodes proportionally
    /// to their draws and each node is set to the highest level that fits
    /// its share. At or below `P_L`, all nodes are restored to their tops
    /// (budget controllers re-derive the full allocation every cycle;
    /// there is no gradual recovery).
    pub fn cycle(
        &mut self,
        metered_w: f64,
        nodes: &[BudgetNodeView],
        model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    ) -> (PowerState, Vec<NodeCommand>) {
        self.stats.cycles += 1;
        let state = self.thresholds.classify(metered_w);
        let mut commands = Vec::new();
        if state == PowerState::Green {
            // Full restoration: budget is not under pressure.
            for v in nodes {
                if v.level < v.highest {
                    commands.push(NodeCommand {
                        node: v.node,
                        level: v.highest,
                    });
                }
            }
        } else {
            self.stats.active_cycles += 1;
            let budget_total = self.thresholds.p_low_w();
            let draws: Vec<f64> = nodes.iter().map(|v| v.power_w).collect();
            let budgets = ppc_node::budget::proportional_budgets(&draws, budget_total);
            for (v, &budget) in nodes.iter().zip(&budgets) {
                let model = model_of(v.node);
                let (level, _fit) = level_for_budget(&model, &v.state, budget);
                if level != v.level {
                    commands.push(NodeCommand {
                        node: v.node,
                        level,
                    });
                }
            }
        }
        self.stats.commands_issued += commands.len() as u64;
        (state, commands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_node::spec::NodeSpec;

    fn setup() -> (Arc<PowerModel>, Vec<BudgetNodeView>, Thresholds) {
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 12 << 30,
            nic_bytes: 100_000_000,
        };
        let nodes: Vec<BudgetNodeView> = (0..4)
            .map(|i| BudgetNodeView {
                node: NodeId(i),
                level: Level::new(9),
                highest: Level::new(9),
                state: busy,
                power_w: model.power_w(Level::new(9), &busy),
            })
            .collect();
        // P_L = 4 × ~200 W: forces real throttling on ~300 W draws.
        let thresholds = Thresholds::new(800.0, 1_000.0).unwrap();
        (model, nodes, thresholds)
    }

    #[test]
    fn over_budget_throttles_everyone_proportionally() {
        let (model, nodes, thresholds) = setup();
        let mut c = ProportionalBudgetController::new(thresholds);
        let total: f64 = nodes.iter().map(|v| v.power_w).sum();
        let m = model.clone();
        let (state, commands) = c.cycle(total, &nodes, &|_| m.clone());
        assert_eq!(state, PowerState::Red);
        // Identical nodes, identical shares: every node commanded down.
        assert_eq!(commands.len(), 4);
        let level = commands[0].level;
        assert!(commands.iter().all(|cmd| cmd.level == level));
        assert!(level < Level::new(9));
        // The commanded level fits the per-node share (200 W).
        let p = model.power_w(level, &nodes[0].state);
        assert!(p <= 200.0 + 1e-9, "p={p}");
        assert_eq!(c.stats().active_cycles, 1);
    }

    #[test]
    fn under_budget_restores_everything_at_once() {
        let (model, mut nodes, thresholds) = setup();
        for v in &mut nodes {
            v.level = Level::new(2); // previously throttled
        }
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        let (state, commands) = c.cycle(500.0, &nodes, &|_| m.clone());
        assert_eq!(state, PowerState::Green);
        assert_eq!(commands.len(), 4, "all nodes restored");
        assert!(commands.iter().all(|cmd| cmd.level == Level::new(9)));
    }

    #[test]
    fn no_redundant_commands_at_steady_state() {
        let (model, nodes, thresholds) = setup();
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        let (_, commands) = c.cycle(500.0, &nodes, &|_| m.clone());
        assert!(commands.is_empty(), "already at top under budget");
    }

    #[test]
    fn split_is_proportional_and_conserving() {
        let shares = split_proportional(1000.0, &[1.0, 1.0, 2.0]);
        assert_eq!(shares.len(), 3);
        assert!(conserves_budget(1000.0, &shares));
        assert!((shares[0] - 250.0).abs() < 1e-9);
        assert!((shares[1] - 250.0).abs() < 1e-9);
        assert!((shares[2] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn single_child_takes_the_whole_budget_exactly() {
        let total = 123_456.789_012_345;
        let shares = split_proportional(total, &[std::f64::consts::PI]);
        assert_eq!(shares[0].to_bits(), total.to_bits());
    }

    #[test]
    fn zero_weight_children_get_exactly_zero() {
        let shares = split_proportional(500.0, &[0.0, 3.0, 0.0, -1.0]);
        assert_eq!(shares[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(shares[2].to_bits(), 0.0f64.to_bits());
        assert_eq!(shares[3].to_bits(), 0.0f64.to_bits());
        assert_eq!(shares[1].to_bits(), 500.0f64.to_bits());
    }

    #[test]
    fn degenerate_splits_are_all_zero() {
        assert!(split_proportional(0.0, &[1.0, 2.0])
            .iter()
            .all(|&s| s <= 0.0));
        assert!(split_proportional(-5.0, &[1.0]).iter().all(|&s| s <= 0.0));
        assert!(split_proportional(100.0, &[0.0, 0.0])
            .iter()
            .all(|&s| s <= 0.0));
        assert!(split_proportional(f64::NAN, &[1.0])
            .iter()
            .all(|&s| s <= 0.0));
    }

    #[test]
    fn conserves_budget_rejects_overspend_and_negatives() {
        assert!(conserves_budget(100.0, &[60.0, 40.0]));
        assert!(!conserves_budget(100.0, &[60.0, 40.1]));
        assert!(!conserves_budget(100.0, &[-1.0, 50.0]));
        assert!(conserves_budget(100.0, &[]));
    }

    #[test]
    fn headroom_moves_from_idle_to_pressed_sibling() {
        // Equal weights, but child 0 is idle and child 1 is over its share.
        let base = split_proportional(1000.0, &[1.0, 1.0]);
        let shares = delegate_with_headroom(1000.0, &[1.0, 1.0], &[100.0, 700.0], 0.16, 0.5);
        assert!(conserves_budget(1000.0, &shares));
        assert!(shares[0] < base[0], "idle child lends");
        assert!(shares[1] > base[1], "pressed child borrows");
        let total: f64 = shares.iter().sum();
        assert!((total - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn headroom_is_a_noop_without_pressure() {
        // Both children comfortably inside their shares: nothing moves.
        let base = split_proportional(1000.0, &[1.0, 1.0]);
        let shares = delegate_with_headroom(1000.0, &[1.0, 1.0], &[100.0, 120.0], 0.16, 0.5);
        assert_eq!(shares[0].to_bits(), base[0].to_bits());
        assert_eq!(shares[1].to_bits(), base[1].to_bits());
    }

    #[test]
    fn headroom_single_child_is_bitwise_noop() {
        let shares = delegate_with_headroom(777.25, &[3.0], &[9_999.0], 0.16, 0.5);
        assert_eq!(shares[0].to_bits(), 777.25f64.to_bits());
    }

    mod delegation_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn split_always_conserves(
                total in 0.0f64..1e9,
                weights in proptest::collection::vec(-10.0f64..1e6, 0..32),
            ) {
                let shares = split_proportional(total, &weights);
                prop_assert!(conserves_budget(total.max(0.0), &shares));
            }

            #[test]
            fn split_spends_whole_budget_when_weighted(
                total in 1.0f64..1e9,
                weights in proptest::collection::vec(0.1f64..1e6, 1..32),
            ) {
                let shares = split_proportional(total, &weights);
                let spent: f64 = shares.iter().sum();
                // Draw-down conservation is exact; equality to the parent
                // holds to float-summation tolerance.
                prop_assert!((spent - total).abs() <= total * 1e-12);
            }

            #[test]
            fn headroom_always_conserves(
                total in 1.0f64..1e9,
                pairs in proptest::collection::vec((0.1f64..1e6, 0.0f64..1e6), 2..32),
                lend in 0.0f64..1.0,
            ) {
                let weights: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let demands: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let shares = delegate_with_headroom(total, &weights, &demands, 0.16, lend);
                prop_assert!(conserves_budget(total, &shares));
            }
        }
    }

    #[test]
    fn idle_nodes_share_budget_equally() {
        let (model, mut nodes, thresholds) = setup();
        for v in &mut nodes {
            v.state = OperatingState::IDLE;
            v.power_w = 0.0;
        }
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        // Metered above P_L but the per-node equal share (200 W) fits idle
        // draw (~160 W) at the top level: no commands needed.
        let (_, commands) = c.cycle(900.0, &nodes, &|_| m.clone());
        assert!(commands.is_empty());
    }
}
