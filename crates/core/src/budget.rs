//! The proportional-budget controller — a related-work *architecture*
//! baseline (not just a selection policy).
//!
//! Prior cluster power managers (Femal's two-level allocation,
//! Ranganathan's ensemble controller) work budget-first: the cluster
//! budget is divided across **all** nodes each cycle — proportionally to
//! their current draws — and every node locally picks the highest
//! operating point that fits its share. All nodes are equally important,
//! all nodes are monitored, and jobs are invisible.
//!
//! Running this controller against the paper's Algorithm 1 quantifies the
//! two claims the paper makes for its architecture: (1) job-aware target
//! selection loses less performance for the same cap, and (2) monitoring
//! a candidate subset is dramatically cheaper than the whole machine.

use crate::capping::NodeCommand;
use crate::state::{PowerState, Thresholds};
use ppc_node::budget::level_for_budget;
use ppc_node::{Level, NodeId, OperatingState, PowerModel};
use std::sync::Arc;

/// Per-node inputs to the budget controller (one per monitored node).
#[derive(Debug, Clone, Copy)]
pub struct BudgetNodeView {
    /// The node.
    pub node: NodeId,
    /// Its current power level.
    pub level: Level,
    /// Its highest level.
    pub highest: Level,
    /// Its sampled operating state.
    pub state: OperatingState,
    /// Its sampled power draw, watts.
    pub power_w: f64,
}

/// Cycle statistics of the budget controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Control cycles run.
    pub cycles: u64,
    /// Cycles spent above the activation threshold (capping active).
    pub active_cycles: u64,
    /// Commands issued.
    pub commands_issued: u64,
}

/// The ensemble/two-level budget controller.
#[derive(Debug, Clone)]
pub struct ProportionalBudgetController {
    thresholds: Thresholds,
    stats: BudgetStats,
}

impl ProportionalBudgetController {
    /// Creates the controller with administrator-set thresholds (budget
    /// controllers do not learn; they protect the configured budget).
    pub fn new(thresholds: Thresholds) -> Self {
        ProportionalBudgetController {
            thresholds,
            stats: BudgetStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Cycle statistics.
    pub fn stats(&self) -> BudgetStats {
        self.stats
    }

    /// Runs one control cycle over every monitored node.
    ///
    /// Above `P_L`, the budget `P_L` is split across nodes proportionally
    /// to their draws and each node is set to the highest level that fits
    /// its share. At or below `P_L`, all nodes are restored to their tops
    /// (budget controllers re-derive the full allocation every cycle;
    /// there is no gradual recovery).
    pub fn cycle(
        &mut self,
        metered_w: f64,
        nodes: &[BudgetNodeView],
        model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    ) -> (PowerState, Vec<NodeCommand>) {
        self.stats.cycles += 1;
        let state = self.thresholds.classify(metered_w);
        let mut commands = Vec::new();
        if state == PowerState::Green {
            // Full restoration: budget is not under pressure.
            for v in nodes {
                if v.level < v.highest {
                    commands.push(NodeCommand {
                        node: v.node,
                        level: v.highest,
                    });
                }
            }
        } else {
            self.stats.active_cycles += 1;
            let budget_total = self.thresholds.p_low_w();
            let draws: Vec<f64> = nodes.iter().map(|v| v.power_w).collect();
            let budgets = ppc_node::budget::proportional_budgets(&draws, budget_total);
            for (v, &budget) in nodes.iter().zip(&budgets) {
                let model = model_of(v.node);
                let (level, _fit) = level_for_budget(&model, &v.state, budget);
                if level != v.level {
                    commands.push(NodeCommand {
                        node: v.node,
                        level,
                    });
                }
            }
        }
        self.stats.commands_issued += commands.len() as u64;
        (state, commands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_node::spec::NodeSpec;

    fn setup() -> (Arc<PowerModel>, Vec<BudgetNodeView>, Thresholds) {
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 12 << 30,
            nic_bytes: 100_000_000,
        };
        let nodes: Vec<BudgetNodeView> = (0..4)
            .map(|i| BudgetNodeView {
                node: NodeId(i),
                level: Level::new(9),
                highest: Level::new(9),
                state: busy,
                power_w: model.power_w(Level::new(9), &busy),
            })
            .collect();
        // P_L = 4 × ~200 W: forces real throttling on ~300 W draws.
        let thresholds = Thresholds::new(800.0, 1_000.0).unwrap();
        (model, nodes, thresholds)
    }

    #[test]
    fn over_budget_throttles_everyone_proportionally() {
        let (model, nodes, thresholds) = setup();
        let mut c = ProportionalBudgetController::new(thresholds);
        let total: f64 = nodes.iter().map(|v| v.power_w).sum();
        let m = model.clone();
        let (state, commands) = c.cycle(total, &nodes, &|_| m.clone());
        assert_eq!(state, PowerState::Red);
        // Identical nodes, identical shares: every node commanded down.
        assert_eq!(commands.len(), 4);
        let level = commands[0].level;
        assert!(commands.iter().all(|cmd| cmd.level == level));
        assert!(level < Level::new(9));
        // The commanded level fits the per-node share (200 W).
        let p = model.power_w(level, &nodes[0].state);
        assert!(p <= 200.0 + 1e-9, "p={p}");
        assert_eq!(c.stats().active_cycles, 1);
    }

    #[test]
    fn under_budget_restores_everything_at_once() {
        let (model, mut nodes, thresholds) = setup();
        for v in &mut nodes {
            v.level = Level::new(2); // previously throttled
        }
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        let (state, commands) = c.cycle(500.0, &nodes, &|_| m.clone());
        assert_eq!(state, PowerState::Green);
        assert_eq!(commands.len(), 4, "all nodes restored");
        assert!(commands.iter().all(|cmd| cmd.level == Level::new(9)));
    }

    #[test]
    fn no_redundant_commands_at_steady_state() {
        let (model, nodes, thresholds) = setup();
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        let (_, commands) = c.cycle(500.0, &nodes, &|_| m.clone());
        assert!(commands.is_empty(), "already at top under budget");
    }

    #[test]
    fn idle_nodes_share_budget_equally() {
        let (model, mut nodes, thresholds) = setup();
        for v in &mut nodes {
            v.state = OperatingState::IDLE;
            v.power_w = 0.0;
        }
        let mut c = ProportionalBudgetController::new(thresholds);
        let m = model.clone();
        // Metered above P_L but the per-node equal share (200 W) fits idle
        // draw (~160 W) at the top level: no commands needed.
        let (_, commands) = c.cycle(900.0, &nodes, &|_| m.clone());
        assert!(commands.is_empty());
    }
}
