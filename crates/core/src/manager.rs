//! The power manager: the per-cycle control loop.
//!
//! Each control cycle the manager
//!
//! 1. feeds the metered system power to the threshold learner (peak
//!    observation + periodic adjustment),
//! 2. classifies the power state against the current `(P_L, P_H)`,
//! 3. runs Algorithm 1 with the configured selection policy,
//! 4. returns the throttling commands for the actuation layer to apply,
//!
//! and keeps cycle statistics (state occupancy, commands issued,
//! adjustments) for the evaluation reports.

use crate::capping::{CappingAlgorithm, LevelView, NodeCommand};
use crate::config::ManagerConfig;
use crate::error::CoreError;
use crate::observe::{JobObservation, SelectionContext};
use crate::policy::TargetSelectionPolicy;
use crate::sets::NodeSets;
use crate::state::{PowerState, Thresholds};
use crate::thresholds::ThresholdLearner;
use ppc_obs::{AttrValue, SpanRecorder};
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// What one control cycle decided.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleOutcome {
    /// The classified power state this cycle.
    pub state: PowerState,
    /// Commands to apply to nodes.
    pub commands: Vec<NodeCommand>,
    /// Thresholds in force this cycle.
    pub thresholds: Thresholds,
    /// True if the thresholds were re-derived this cycle.
    pub thresholds_adjusted: bool,
}

/// Running statistics over all cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Total control cycles run.
    pub cycles: u64,
    /// Cycles classified Green.
    pub green_cycles: u64,
    /// Cycles classified Yellow.
    pub yellow_cycles: u64,
    /// Cycles classified Red.
    pub red_cycles: u64,
    /// Total throttling commands issued.
    pub commands_issued: u64,
    /// Threshold adjustments performed.
    pub threshold_adjustments: u64,
    /// Cycles run in the conservative degraded-telemetry mode (candidate
    /// coverage below the configured floor).
    pub conservative_cycles: u64,
}

/// The cluster-level power manager.
///
/// `Clone` (via [`TargetSelectionPolicy::clone_box`] for the boxed
/// policy) so a snapshot of the whole control stack can be branched for
/// what-if evaluation.
#[derive(Clone)]
pub struct PowerManager {
    config: ManagerConfig,
    sets: NodeSets,
    learner: ThresholdLearner,
    capping: CappingAlgorithm,
    policy: Box<dyn TargetSelectionPolicy>,
    stats: ManagerStats,
}

impl PowerManager {
    /// Builds a manager from a validated config and node classification.
    pub fn new(config: ManagerConfig, sets: NodeSets) -> Result<Self, CoreError> {
        config.validate()?;
        let learner = ThresholdLearner::with_margins(
            config.p_provision_w,
            // Frozen mode: no training period, no adjustment — the pair
            // derived from the provision capability stands forever.
            if config.frozen_thresholds {
                0
            } else {
                config.training_cycles
            },
            config.t_p_cycles,
            config.low_margin,
            config.high_margin,
        )?;
        let learner = if config.frozen_thresholds {
            learner.frozen()
        } else {
            learner
        };
        Ok(PowerManager {
            learner,
            capping: CappingAlgorithm::new(config.t_g_cycles),
            policy: config.policy.build(),
            config,
            sets,
            stats: ManagerStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// The node classification (mutable: the candidate set may vary at
    /// runtime, per the architecture).
    pub fn sets_mut(&mut self) -> &mut NodeSets {
        &mut self.sets
    }

    /// The node classification.
    pub fn sets(&self) -> &NodeSets {
        &self.sets
    }

    /// Current thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.learner.thresholds()
    }

    /// The threshold learner (peak observations etc.).
    pub fn learner(&self) -> &ThresholdLearner {
        &self.learner
    }

    /// Cycle statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// `A_degraded` (for reports/tests).
    pub fn degraded_count(&self) -> usize {
        self.capping.degraded().len()
    }

    /// The capping algorithm's current `A_degraded` set.
    pub fn capping_degraded(&self) -> &std::collections::BTreeSet<ppc_node::NodeId> {
        self.capping.degraded()
    }

    /// Marks a crashed node offline: it leaves `A_candidate` until it
    /// rejoins, so no selection, observation, or command will touch it.
    pub fn note_node_down(&mut self, node: ppc_node::NodeId) {
        self.sets.set_offline(node, true);
    }

    /// Marks a rebooted node back online. The fault path restarts crashed
    /// nodes at their lowest DVFS level, so the node is also adopted into
    /// `A_degraded`: steady-green recovery promotes it back to full speed
    /// one level at a time instead of leaving it throttled forever.
    pub fn note_node_rejoined(&mut self, node: ppc_node::NodeId) {
        self.sets.set_offline(node, false);
        if self.sets.is_candidate(node) {
            self.capping.adopt(node);
        }
    }

    /// Swaps the target-selection policy in place (what-if "swap policy"
    /// operation). The new policy starts from its initial state; all
    /// other controller state — thresholds, `A_degraded`, statistics —
    /// carries over unchanged.
    pub fn set_policy(&mut self, kind: crate::policy::PolicyKind) {
        self.policy = kind.build();
        self.config.policy = kind;
    }

    /// Changes the power provision capability `P_Max` in place (what-if
    /// "raise/lower the cap" operation). Thresholds are re-derived from
    /// the new provision immediately; see [`ThresholdLearner::reprovision`].
    pub fn reprovision(&mut self, p_provision_w: f64) -> Result<(), CoreError> {
        self.learner.reprovision(p_provision_w)?;
        self.config.p_provision_w = p_provision_w;
        Ok(())
    }

    /// Runs one control cycle with full telemetry coverage.
    ///
    /// * `power_w` — the metered total system power;
    /// * `jobs` — this cycle's job observations (built via
    ///   [`crate::observe::observe_jobs`]);
    /// * `view` — current/highest level lookup for candidate nodes.
    pub fn control_cycle(
        &mut self,
        power_w: f64,
        jobs: &[JobObservation],
        view: &dyn LevelView,
    ) -> CycleOutcome {
        self.control_cycle_with_coverage(power_w, jobs, view, 1.0)
    }

    /// Runs one control cycle with an explicit telemetry-coverage figure:
    /// the fraction of candidate nodes whose collector samples are fresh.
    ///
    /// When coverage drops below the configured floor the manager stops
    /// trusting the selection policy's savings estimates: Yellow degrades
    /// every observed candidate (strictly more conservative than any
    /// policy pick), Green holds recovery rather than promote blind, and
    /// Red floors everything as usual (it needs no telemetry). This keeps
    /// the capping guarantee intact while the telemetry fabric is dark.
    pub fn control_cycle_with_coverage(
        &mut self,
        power_w: f64,
        jobs: &[JobObservation],
        view: &dyn LevelView,
        coverage: f64,
    ) -> CycleOutcome {
        self.control_cycle_traced(
            power_w,
            jobs,
            view,
            coverage,
            SimTime::ZERO,
            &mut SpanRecorder::disabled(),
        )
    }

    /// [`PowerManager::control_cycle_with_coverage`] with span recording:
    /// a `classify` span carries the metered power, classified state and
    /// deficit; a `capping` span wraps Algorithm 1 (the Yellow selection
    /// opens a nested `select` span) and carries the command count.
    pub fn control_cycle_traced(
        &mut self,
        power_w: f64,
        jobs: &[JobObservation],
        view: &dyn LevelView,
        coverage: f64,
        at: SimTime,
        spans: &mut SpanRecorder,
    ) -> CycleOutcome {
        spans.open("classify", at);
        let thresholds_adjusted = self.learner.observe_cycle(power_w);
        let thresholds = self.learner.thresholds();
        let state = thresholds.classify(power_w);
        spans.attr("state", AttrValue::Str(state.name()));
        spans.attr("power_w", AttrValue::F64(power_w));
        spans.attr(
            "deficit_w",
            AttrValue::F64((power_w - thresholds.p_low_w()).max(0.0)),
        );
        if thresholds_adjusted {
            spans.attr("thresholds_adjusted", AttrValue::U64(1));
        }
        spans.close(at);

        let candidates = self.sets.candidates();
        // Prune A_degraded once per candidate-set change instead of every
        // cycle: membership can't move without bumping the generation.
        self.capping.prune_for(candidates, self.sets.generation());
        let ctx = SelectionContext {
            jobs,
            power_w,
            p_low_w: thresholds.p_low_w(),
        };
        let conservative = coverage < self.config.coverage_floor;
        spans.open("capping", at);
        spans.attr("state", AttrValue::Str(state.name()));
        let commands = if candidates.is_empty() {
            // Size-0 candidate set: monitoring-only deployment, no capping.
            Vec::new()
        } else if conservative {
            self.stats.conservative_cycles += 1;
            spans.attr("conservative", AttrValue::U64(1));
            match state {
                // Promoting on stale estimates risks overshooting the
                // provision; recovery can wait for telemetry.
                PowerState::Green => Vec::new(),
                PowerState::Yellow => self.capping.conservative_yellow(&ctx, candidates, view),
                // Red is telemetry-free: flatten everything.
                PowerState::Red => self.capping.cycle_traced(
                    state,
                    &ctx,
                    self.policy.as_mut(),
                    candidates,
                    view,
                    at,
                    spans,
                ),
            }
        } else {
            self.capping.cycle_traced(
                state,
                &ctx,
                self.policy.as_mut(),
                candidates,
                view,
                at,
                spans,
            )
        };
        spans.attr("commands", AttrValue::U64(commands.len() as u64));
        spans.close(at);

        self.stats.cycles += 1;
        match state {
            PowerState::Green => self.stats.green_cycles += 1,
            PowerState::Yellow => self.stats.yellow_cycles += 1,
            PowerState::Red => self.stats.red_cycles += 1,
        }
        self.stats.commands_issued += commands.len() as u64;
        self.stats.threshold_adjustments += u64::from(thresholds_adjusted);

        CycleOutcome {
            state,
            commands,
            thresholds,
            thresholds_adjusted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{jobs_obs, nobs};
    use crate::policy::PolicyKind;
    use ppc_node::{Level, NodeId};

    struct FlatView(Level, Level);
    impl LevelView for FlatView {
        fn level_of(&self, _: NodeId) -> Level {
            self.0
        }
        fn highest_of(&self, _: NodeId) -> Level {
            self.1
        }
    }

    fn manager(policy: PolicyKind, candidate_cap: Option<usize>) -> PowerManager {
        let sets = NodeSets::new((0..8).map(NodeId), []).with_candidate_cap(candidate_cap);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(1_000.0, policy)
        };
        PowerManager::new(config, sets).unwrap()
    }

    #[test]
    fn green_cycle_issues_nothing_and_counts() {
        let mut m = manager(PolicyKind::Mpc, None);
        // P_L = 840: 500 W is Green.
        let out = m.control_cycle(500.0, &[], &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(out.state, PowerState::Green);
        assert!(out.commands.is_empty());
        assert_eq!(m.stats().green_cycles, 1);
        assert_eq!(m.stats().cycles, 1);
    }

    #[test]
    fn yellow_cycle_degrades_target_job() {
        let mut m = manager(PolicyKind::Mpc, None);
        let jobs = vec![jobs_obs(
            1,
            vec![nobs(0, 9, 300.0), nobs(1, 9, 280.0)],
            None,
        )];
        // P in [840, 930): Yellow.
        let out = m.control_cycle(900.0, &jobs, &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(out.state, PowerState::Yellow);
        assert_eq!(out.commands.len(), 2);
        assert!(out.commands.iter().all(|c| c.level == Level::new(8)));
        assert_eq!(m.degraded_count(), 2);
        assert_eq!(m.stats().commands_issued, 2);
    }

    #[test]
    fn red_cycle_floors_all_candidates() {
        let mut m = manager(PolicyKind::Hri, None);
        let out = m.control_cycle(950.0, &[], &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(out.state, PowerState::Red);
        assert_eq!(out.commands.len(), 8);
        assert!(out.commands.iter().all(|c| c.level == Level::LOWEST));
    }

    #[test]
    fn zero_candidate_cap_never_commands() {
        let mut m = manager(PolicyKind::Mpc, Some(0));
        let out = m.control_cycle(5_000.0, &[], &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(out.state, PowerState::Red);
        assert!(out.commands.is_empty(), "monitoring-only mode");
    }

    #[test]
    fn training_then_adjustment_counts() {
        let sets = NodeSets::new((0..2).map(NodeId), []);
        let config = ManagerConfig {
            training_cycles: 2,
            t_p_cycles: 3,
            ..ManagerConfig::paper_defaults(1_000.0, PolicyKind::Mpc)
        };
        let mut m = PowerManager::new(config, sets).unwrap();
        let view = FlatView(Level::new(9), Level::new(9));
        m.control_cycle(700.0, &[], &view);
        let out = m.control_cycle(750.0, &[], &view);
        assert!(out.thresholds_adjusted, "training ends on cycle 2");
        assert_eq!(m.learner().p_peak_w(), 750.0);
        assert_eq!(m.stats().threshold_adjustments, 1);
        // Next adjustment after t_p = 3 more cycles.
        m.control_cycle(740.0, &[], &view);
        m.control_cycle(740.0, &[], &view);
        let out = m.control_cycle(740.0, &[], &view);
        assert!(out.thresholds_adjusted);
    }

    #[test]
    fn low_coverage_yellow_degrades_every_observed_candidate() {
        let mut m = manager(PolicyKind::Mpc, None);
        assert_eq!(m.config().coverage_floor, 0.5);
        let jobs = vec![jobs_obs(
            1,
            vec![nobs(0, 9, 300.0), nobs(1, 9, 280.0)],
            None,
        )];
        // Coverage 0.25 < floor 0.5: conservative Yellow, no policy.
        let out = m.control_cycle_with_coverage(
            900.0,
            &jobs,
            &FlatView(Level::new(9), Level::new(9)),
            0.25,
        );
        assert_eq!(out.state, PowerState::Yellow);
        assert_eq!(out.commands.len(), 2, "all observed candidates degraded");
        assert!(out.commands.iter().all(|c| c.level == Level::new(8)));
        assert_eq!(m.stats().conservative_cycles, 1);
    }

    #[test]
    fn low_coverage_green_holds_recovery() {
        let mut m = manager(PolicyKind::Mpc, None);
        // Degrade via a normal Yellow first.
        let jobs = vec![jobs_obs(1, vec![nobs(0, 9, 300.0)], None)];
        m.control_cycle(900.0, &jobs, &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(m.degraded_count(), 1);
        // t_g = 10; run plenty of blind Green cycles: no promotion.
        for _ in 0..20 {
            let out = m.control_cycle_with_coverage(
                500.0,
                &[],
                &FlatView(Level::new(8), Level::new(9)),
                0.0,
            );
            assert_eq!(out.state, PowerState::Green);
            assert!(out.commands.is_empty(), "no blind promotion");
        }
        assert_eq!(m.degraded_count(), 1, "still waiting for telemetry");
        assert_eq!(m.stats().conservative_cycles, 20);
    }

    #[test]
    fn low_coverage_red_still_floors_everything() {
        let mut m = manager(PolicyKind::Mpc, None);
        let out = m.control_cycle_with_coverage(
            5_000.0,
            &[],
            &FlatView(Level::new(9), Level::new(9)),
            0.0,
        );
        assert_eq!(out.state, PowerState::Red);
        assert_eq!(out.commands.len(), 8, "red needs no telemetry");
        assert!(out.commands.iter().all(|c| c.level == Level::LOWEST));
    }

    #[test]
    fn node_down_and_rejoin_churn_the_candidate_set() {
        let mut m = manager(PolicyKind::Mpc, None);
        assert_eq!(m.sets().candidate_count(), 8);
        m.note_node_down(NodeId(3));
        assert_eq!(m.sets().candidate_count(), 7);
        assert!(!m.sets().is_candidate(NodeId(3)));
        // Red while the node is down: commands must skip it.
        let out = m.control_cycle(5_000.0, &[], &FlatView(Level::new(9), Level::new(9)));
        assert_eq!(out.commands.len(), 7);
        assert!(out.commands.iter().all(|c| c.node != NodeId(3)));
        // Rejoin at the lowest level: adopted for green recovery.
        m.note_node_rejoined(NodeId(3));
        assert!(m.sets().is_candidate(NodeId(3)));
        assert!(m.capping_degraded().contains(&NodeId(3)));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let sets = NodeSets::new((0..2).map(NodeId), []);
        let config = ManagerConfig {
            t_g_cycles: 0,
            ..ManagerConfig::paper_defaults(1_000.0, PolicyKind::Mpc)
        };
        assert!(PowerManager::new(config, sets).is_err());
    }
}
