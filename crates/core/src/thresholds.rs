//! Threshold setting and adjustment (paper §III.A).
//!
//! The thresholds are configurable — an administrator can pin them — but
//! the paper proposes a simple learning scheme:
//!
//! 1. Initialize `P_peak := P_Max` (the power provision capability).
//! 2. Run a training period (24 h on the testbed) recording the observed
//!    peak; at its end adopt the recorded peak as `P_peak`.
//! 3. Keep observing the peak for the whole execution; re-derive
//!    `P_H = 93%·P_peak`, `P_L = 84%·P_peak` every `t_p` control cycles
//!    (`t_p` large, so adjustment is much rarer than capping).

use crate::error::CoreError;
use crate::state::Thresholds;
use serde::{Deserialize, Serialize};

/// The 7%/16% margins reported by Fan et al. between achieved and
/// theoretical aggregate power.
pub const HIGH_MARGIN: f64 = 0.07;
/// See [`HIGH_MARGIN`].
pub const LOW_MARGIN: f64 = 0.16;

/// Learns and periodically re-derives the `(P_L, P_H)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdLearner {
    low_margin: f64,
    high_margin: f64,
    /// Cycles remaining in the training period.
    training_cycles_left: u64,
    /// Adjustment period after training, in control cycles.
    t_p_cycles: u64,
    cycles_since_adjust: u64,
    /// Current basis for the thresholds.
    p_peak_w: f64,
    /// Running peak observed since start (observation never stops).
    observed_peak_w: f64,
    thresholds: Thresholds,
    /// Frozen learners keep the administrator-set pair forever (the
    /// paper's manual-configuration mode); the peak is still tracked for
    /// reporting.
    frozen: bool,
}

impl ThresholdLearner {
    /// Creates a learner seeded with the provision capability `P_Max`.
    ///
    /// `training_cycles` is the length of the initial training period and
    /// `t_p_cycles` the adjustment period after it (both in control
    /// cycles).
    pub fn new(
        p_provision_w: f64,
        training_cycles: u64,
        t_p_cycles: u64,
    ) -> Result<Self, CoreError> {
        Self::with_margins(
            p_provision_w,
            training_cycles,
            t_p_cycles,
            LOW_MARGIN,
            HIGH_MARGIN,
        )
    }

    /// As [`ThresholdLearner::new`] with explicit margins (ablations).
    pub fn with_margins(
        p_provision_w: f64,
        training_cycles: u64,
        t_p_cycles: u64,
        low_margin: f64,
        high_margin: f64,
    ) -> Result<Self, CoreError> {
        if t_p_cycles == 0 {
            return Err(CoreError::InvalidConfig(
                "t_p must be at least one cycle".to_string(),
            ));
        }
        let thresholds = Thresholds::from_peak(p_provision_w, low_margin, high_margin)?;
        Ok(ThresholdLearner {
            low_margin,
            high_margin,
            training_cycles_left: training_cycles,
            t_p_cycles,
            cycles_since_adjust: 0,
            p_peak_w: p_provision_w,
            observed_peak_w: 0.0,
            thresholds,
            frozen: false,
        })
    }

    /// Freezes the thresholds at their current (administrator-set) pair;
    /// observation continues but adjustment never fires.
    pub fn frozen(mut self) -> Self {
        self.frozen = true;
        self
    }

    /// True if adjustment is disabled.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Current thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Current `P_peak` basis, watts.
    pub fn p_peak_w(&self) -> f64 {
        self.p_peak_w
    }

    /// Highest power observed so far, watts.
    pub fn observed_peak_w(&self) -> f64 {
        self.observed_peak_w
    }

    /// True while still in the training period.
    pub fn in_training(&self) -> bool {
        self.training_cycles_left > 0
    }

    /// Feeds one control cycle's power reading; returns `true` when the
    /// thresholds were re-derived this cycle.
    pub fn observe_cycle(&mut self, power_w: f64) -> bool {
        assert!(power_w >= 0.0, "power cannot be negative");
        self.observed_peak_w = self.observed_peak_w.max(power_w);
        if self.frozen {
            return false;
        }
        if self.training_cycles_left > 0 {
            self.training_cycles_left -= 1;
            if self.training_cycles_left == 0 {
                self.adopt_observed_peak();
                return true;
            }
            return false;
        }
        self.cycles_since_adjust += 1;
        if self.cycles_since_adjust >= self.t_p_cycles {
            self.cycles_since_adjust = 0;
            self.adopt_observed_peak();
            return true;
        }
        false
    }

    /// Re-seeds the learner with a new provision capability `P_Max` —
    /// the what-if "raise/lower the cap" operation. The threshold pair
    /// is re-derived from the new basis immediately; peak observation
    /// restarts so a later adjustment reflects only post-change history.
    pub fn reprovision(&mut self, p_provision_w: f64) -> Result<(), CoreError> {
        self.thresholds = Thresholds::from_peak(p_provision_w, self.low_margin, self.high_margin)?;
        self.p_peak_w = p_provision_w;
        self.observed_peak_w = 0.0;
        self.cycles_since_adjust = 0;
        Ok(())
    }

    /// Re-derives thresholds from the observed peak (if any observation
    /// was made; an idle training period keeps the provision-based pair).
    fn adopt_observed_peak(&mut self) {
        if self.observed_peak_w > 0.0 {
            self.p_peak_w = self.observed_peak_w;
            self.thresholds =
                Thresholds::from_peak(self.p_peak_w, self.low_margin, self.high_margin)
                    // ppc-lint: allow(panic-path): peak > 0 checked above; margins were validated at construction
                    .expect("peak > 0 and validated margins always yield thresholds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_from_provision_capability() {
        let l = ThresholdLearner::new(10_000.0, 10, 100).unwrap();
        assert!(l.in_training());
        assert!((l.thresholds().p_high_w() - 9_300.0).abs() < 1e-9);
        assert!((l.thresholds().p_low_w() - 8_400.0).abs() < 1e-9);
    }

    #[test]
    fn training_end_adopts_observed_peak() {
        let mut l = ThresholdLearner::new(10_000.0, 3, 100).unwrap();
        assert!(!l.observe_cycle(7_000.0));
        assert!(!l.observe_cycle(8_000.0));
        let adjusted = l.observe_cycle(7_500.0);
        assert!(adjusted, "last training cycle must adjust");
        assert!(!l.in_training());
        assert_eq!(l.p_peak_w(), 8_000.0);
        assert!((l.thresholds().p_high_w() - 0.93 * 8_000.0).abs() < 1e-9);
        assert!((l.thresholds().p_low_w() - 0.84 * 8_000.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_adjustment_every_t_p_cycles() {
        let mut l = ThresholdLearner::new(10_000.0, 1, 5).unwrap();
        l.observe_cycle(6_000.0); // training ends, peak 6000
        assert_eq!(l.p_peak_w(), 6_000.0);
        // 4 cycles: no adjustment even though the peak rises.
        for _ in 0..4 {
            assert!(!l.observe_cycle(9_000.0));
            assert_eq!(l.p_peak_w(), 6_000.0);
        }
        // 5th cycle adjusts.
        assert!(l.observe_cycle(9_000.0));
        assert_eq!(l.p_peak_w(), 9_000.0);
    }

    #[test]
    fn peak_observation_is_cumulative_across_periods() {
        let mut l = ThresholdLearner::new(10_000.0, 1, 2).unwrap();
        l.observe_cycle(9_500.0);
        l.observe_cycle(100.0);
        l.observe_cycle(100.0); // adjust: cumulative peak is still 9500
        assert_eq!(l.p_peak_w(), 9_500.0);
    }

    #[test]
    fn idle_training_keeps_provision_pair() {
        let mut l = ThresholdLearner::new(10_000.0, 2, 5).unwrap();
        l.observe_cycle(0.0);
        l.observe_cycle(0.0);
        assert_eq!(l.p_peak_w(), 10_000.0);
    }

    #[test]
    fn frozen_learner_never_adjusts() {
        let mut l = ThresholdLearner::new(10_000.0, 1, 1).unwrap().frozen();
        assert!(l.is_frozen());
        for _ in 0..10 {
            assert!(!l.observe_cycle(99_000.0));
        }
        assert_eq!(l.p_peak_w(), 10_000.0, "basis stays at the manual value");
        assert_eq!(l.observed_peak_w(), 99_000.0, "observation continues");
        assert!((l.thresholds().p_high_w() - 9_300.0).abs() < 1e-9);
    }

    #[test]
    fn zero_t_p_rejected() {
        assert!(ThresholdLearner::new(1_000.0, 10, 0).is_err());
    }

    proptest! {
        /// Invariants: P_L ≤ P_H ≤ P_peak, and P_peak never exceeds the max
        /// of provision capability and the observed maximum.
        #[test]
        fn prop_learner_invariants(
            provision in 100.0f64..1e6,
            training in 0u64..20,
            t_p in 1u64..20,
            readings in proptest::collection::vec(0.0f64..2e6, 1..100),
        ) {
            let mut l = ThresholdLearner::new(provision, training, t_p).unwrap();
            let mut max_seen = 0.0f64;
            for r in readings {
                max_seen = max_seen.max(r);
                l.observe_cycle(r);
                let t = l.thresholds();
                prop_assert!(t.p_low_w() <= t.p_high_w());
                prop_assert!(t.p_high_w() <= l.p_peak_w());
                prop_assert!(l.p_peak_w() <= provision.max(max_seen) + 1e-9);
                prop_assert!(l.observed_peak_w() <= max_seen + 1e-9);
            }
        }
    }
}
