//! Core-layer errors.

use std::fmt;

/// Errors raised by the power-management core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A threshold pair violated `0 < P_L ≤ P_H`.
    InvalidThresholds {
        /// Offending lower threshold, watts.
        p_low_w: f64,
        /// Offending upper threshold, watts.
        p_high_w: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid manager config: {msg}"),
            CoreError::InvalidThresholds { p_low_w, p_high_w } => write!(
                f,
                "invalid thresholds: need 0 < P_L <= P_H, got P_L={p_low_w} P_H={p_high_w}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidThresholds {
            p_low_w: 5.0,
            p_high_w: 4.0,
        };
        assert!(e.to_string().contains("P_L=5"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
    }
}
