//! Manager configuration.

use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::thresholds::{HIGH_MARGIN, LOW_MARGIN};
use serde::{Deserialize, Serialize};

/// Configuration of the power manager (all periods in control cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Power provision capability `P_Max`, watts — the initial `P_peak`.
    pub p_provision_w: f64,
    /// Green cycles required before recovery (`T_g`; the paper uses 10).
    pub t_g_cycles: u64,
    /// Threshold-adjustment period after training (`t_p`).
    pub t_p_cycles: u64,
    /// Length of the initial training period.
    pub training_cycles: u64,
    /// Lower-threshold margin (`P_L = (1−m)·P_peak`; paper: 16%).
    pub low_margin: f64,
    /// Upper-threshold margin (`P_H = (1−m)·P_peak`; paper: 7%).
    pub high_margin: f64,
    /// The target-set selection policy.
    pub policy: PolicyKind,
    /// Minimum fraction of candidates with fresh telemetry required to
    /// trust the selection policy. Below this floor a Yellow cycle stops
    /// optimizing and conservatively degrades every observed candidate
    /// (and Green holds recovery) until coverage returns. `0.0` disables
    /// the fallback.
    pub coverage_floor: f64,
    /// When true, thresholds stay pinned at the administrator-set pair
    /// derived from `p_provision_w` (no training, no adjustment) — the
    /// paper's manual-configuration mode.
    pub frozen_thresholds: bool,
}

impl ManagerConfig {
    /// Paper defaults, parameterized by the provision capability.
    pub fn paper_defaults(p_provision_w: f64, policy: PolicyKind) -> Self {
        ManagerConfig {
            p_provision_w,
            t_g_cycles: 10,
            t_p_cycles: 3_600,
            training_cycles: 0,
            low_margin: LOW_MARGIN,
            high_margin: HIGH_MARGIN,
            policy,
            coverage_floor: 0.5,
            frozen_thresholds: false,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.p_provision_w > 0.0 && self.p_provision_w.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "provision capability must be positive, got {}",
                self.p_provision_w
            )));
        }
        if self.t_p_cycles == 0 {
            return Err(CoreError::InvalidConfig("t_p must be >= 1".to_string()));
        }
        if self.t_g_cycles == 0 {
            return Err(CoreError::InvalidConfig("T_g must be >= 1".to_string()));
        }
        if !(0.0..=1.0).contains(&self.coverage_floor) {
            return Err(CoreError::InvalidConfig(format!(
                "coverage floor must be in [0, 1], got {}",
                self.coverage_floor
            )));
        }
        if !(0.0..1.0).contains(&self.high_margin)
            || !(self.high_margin..1.0).contains(&self.low_margin)
        {
            return Err(CoreError::InvalidConfig(format!(
                "margins must satisfy 0 <= high ({}) <= low ({}) < 1",
                self.high_margin, self.low_margin
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        let c = ManagerConfig::paper_defaults(40_000.0, PolicyKind::Mpc);
        assert!(c.validate().is_ok());
        assert_eq!(c.t_g_cycles, 10);
        assert_eq!(c.low_margin, 0.16);
        assert_eq!(c.high_margin, 0.07);
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = ManagerConfig::paper_defaults(40_000.0, PolicyKind::Mpc);
        assert!(ManagerConfig {
            p_provision_w: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(ManagerConfig {
            t_p_cycles: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(ManagerConfig {
            t_g_cycles: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(
            ManagerConfig {
                low_margin: 0.05,
                ..base
            }
            .validate()
            .is_err(),
            "low < high"
        );
        assert!(ManagerConfig {
            high_margin: -0.1,
            ..base
        }
        .validate()
        .is_err());
        assert!(ManagerConfig {
            coverage_floor: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(ManagerConfig {
            coverage_floor: -0.1,
            ..base
        }
        .validate()
        .is_err());
    }
}
