//! The per-cycle observation the selection policies consume.
//!
//! Each control cycle, the manager condenses the collector's view into a
//! list of [`JobObservation`]s: for every running job `J`, the subset
//! `Nodes(J)` of *non-idle candidate* member nodes, each with its sampled
//! power `P(x)` and predicted one-level-down saving `P(x) − P'(x)`
//! (Formula (1) at level `l−1`, as Algorithm 2 requires), plus the
//! previous-interval job power `P^{t−1}(J)` for change-based policies.

use ppc_node::{Level, NodeId, PowerModel};
use ppc_telemetry::Collector;
use ppc_workload::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One candidate node of a job, as seen this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// The node.
    pub node: NodeId,
    /// Its power level when sampled.
    pub level: Level,
    /// Estimated power `P(x)`, watts.
    pub power_w: f64,
    /// Predicted saving `P(x) − P'(x)` from one level down, watts
    /// (0 at the lowest level).
    pub saving_w: f64,
}

impl NodeObservation {
    /// True if this node can still be degraded.
    pub fn is_degradable(&self) -> bool {
        self.level > Level::LOWEST
    }
}

/// One running job, as seen this cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobObservation {
    /// The job.
    pub id: JobId,
    /// `Nodes(J)`: non-idle candidate member nodes.
    pub nodes: Vec<NodeObservation>,
    /// `P^{t−1}(J)`, if every member node has a previous sample.
    pub prev_power_w: Option<f64>,
}

impl JobObservation {
    /// `Power(J) = Σ_{x ∈ Nodes(J)} P(x)`, watts.
    pub fn power_w(&self) -> f64 {
        self.nodes.iter().map(|n| n.power_w).sum()
    }

    /// Total achievable one-level saving over degradable nodes, watts.
    pub fn saving_w(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.is_degradable())
            .map(|n| n.saving_w)
            .sum()
    }

    /// The degradable member nodes.
    pub fn degradable_nodes(&self) -> impl Iterator<Item = &NodeObservation> {
        self.nodes.iter().filter(|n| n.is_degradable())
    }

    /// True if at least one member node can be degraded.
    pub fn has_degradable(&self) -> bool {
        self.nodes.iter().any(NodeObservation::is_degradable)
    }

    /// Rate of increase `ΔP^t(J) = (P^t(J) − P^{t−1}(J)) / P^{t−1}(J)`,
    /// or `None` without previous data.
    pub fn power_rate(&self) -> Option<f64> {
        let prev = self.prev_power_w?;
        if prev <= 0.0 {
            return None;
        }
        Some((self.power_w() - prev) / prev)
    }
}

/// Everything a selection policy sees in one cycle.
///
/// Borrows the cycle's job observations instead of owning them so the
/// manager can hand a cached observation list to the policy without
/// cloning per cycle (the incremental-evaluation hot path).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionContext<'a> {
    /// Observations of all running jobs with candidate nodes.
    pub jobs: &'a [JobObservation],
    /// Current metered system power `P`, watts.
    pub power_w: f64,
    /// The lower threshold `P_L`, watts.
    pub p_low_w: f64,
}

impl SelectionContext<'_> {
    /// The power cut needed to return to Green: `P − P_L` (≥ 0).
    pub fn deficit_w(&self) -> f64 {
        (self.power_w - self.p_low_w).max(0.0)
    }
}

/// Value-keyed memo of each node's one-level-down saving prediction.
///
/// `saving_one_level_w` walks the power model's formula twice per call, and
/// a steady-state cluster re-presents the *same* sample values cycle after
/// cycle. The cache keys on exactly the sample fields the prediction reads
/// (level, operating state, estimated power — compared bit-for-bit, so a
/// hit returns the bit-identical `f64` a recomputation would) and needs no
/// explicit invalidation: any changed input misses and recomputes.
#[derive(Debug, Clone, Default)]
pub struct NodeObsCache {
    entries: Vec<Option<(Level, ppc_node::OperatingState, f64, f64)>>,
}

impl NodeObsCache {
    /// An empty cache; entries appear as nodes are first observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The saving prediction for `node`'s current sample, memoized.
    fn saving_w(
        &mut self,
        node: NodeId,
        level: Level,
        state: &ppc_node::OperatingState,
        power_w: f64,
        model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    ) -> f64 {
        let i = node.0 as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, None);
        }
        if let Some((l, s, p, saving)) = &self.entries[i] {
            if *l == level
                && s.cpu_util.to_bits() == state.cpu_util.to_bits()
                && s.mem_used_bytes == state.mem_used_bytes
                && s.nic_bytes == state.nic_bytes
                && p.to_bits() == power_w.to_bits()
            {
                return *saving;
            }
        }
        let saving = model_of(node).saving_one_level_w(level, state);
        self.entries[i] = Some((level, *state, power_w, saving));
        saving
    }
}

/// Membership test for the candidate set — the only question the
/// observation builder asks of the node classification. Implemented by
/// the ordered `BTreeSet` (tests, fault-path freshness sets) and by
/// [`crate::sets::NodeSets`] through its dense bitmask (the per-tick hot
/// path, where a tree lookup per member visit is measurable).
pub trait CandidateFilter {
    /// True if `node` is in the admitted set.
    fn admits(&self, node: NodeId) -> bool;
}

impl CandidateFilter for BTreeSet<NodeId> {
    fn admits(&self, node: NodeId) -> bool {
        self.contains(&node)
    }
}

/// Builds job observations from the collector's current view.
///
/// Convenience wrapper over [`observe_jobs_cached`] with a throwaway cache
/// (every saving is computed fresh) — fine for tests and one-shot callers;
/// the simulation hot path keeps a long-lived [`NodeObsCache`] instead.
pub fn observe_jobs<'a>(
    collector: &Collector,
    jobs: impl IntoIterator<Item = (JobId, &'a [NodeId])>,
    candidates: &BTreeSet<NodeId>,
    model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
) -> Vec<JobObservation> {
    observe_jobs_cached(
        collector,
        jobs,
        candidates,
        model_of,
        &mut NodeObsCache::new(),
    )
}

/// Builds job observations from the collector's current view, memoizing
/// per-node saving predictions in `cache`.
///
/// `jobs` yields each running job with its full member-node slice —
/// borrowed, so callers iterate their scheduler state directly instead of
/// cloning node lists per cycle; `model_of` resolves a node's power model
/// (heterogeneous clusters return per-model Arcs; homogeneous ones return
/// clones of a shared Arc). Idle nodes and nodes outside `candidates` are
/// excluded per the paper's definition of `Nodes(J)`; jobs left with no
/// observable nodes are dropped entirely.
pub fn observe_jobs_cached<'a, C: CandidateFilter + ?Sized>(
    collector: &Collector,
    jobs: impl IntoIterator<Item = (JobId, &'a [NodeId])>,
    candidates: &C,
    model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    cache: &mut NodeObsCache,
) -> Vec<JobObservation> {
    let jobs = jobs.into_iter();
    let mut out = Vec::with_capacity(jobs.size_hint().0);
    observe_jobs_into(collector, jobs, candidates, model_of, cache, &mut out);
    out
}

/// [`observe_jobs_cached`] writing into a reused buffer: the output list
/// and every per-job node vector keep their allocations across cycles.
/// The result is element-for-element identical to a fresh build.
pub fn observe_jobs_into<'a, C: CandidateFilter + ?Sized>(
    collector: &Collector,
    jobs: impl IntoIterator<Item = (JobId, &'a [NodeId])>,
    candidates: &C,
    model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    cache: &mut NodeObsCache,
    out: &mut Vec<JobObservation>,
) {
    let mut w = 0;
    for (id, members) in jobs {
        if w == out.len() {
            out.push(JobObservation {
                id,
                nodes: Vec::new(),
                prev_power_w: None,
            });
        }
        if observe_job_into(
            collector,
            id,
            members,
            candidates,
            model_of,
            cache,
            &mut out[w],
        ) {
            w += 1;
        }
    }
    out.truncate(w);
}

/// Rebuilds the observation of a single job in place, reusing `out`'s
/// node-vector allocation. Returns false (and leaves `out` with no
/// observable nodes) if the job would be dropped from the observation
/// list — the exact per-job logic of [`observe_jobs_cached`], exposed so
/// the incremental evaluator can refresh only the jobs whose members
/// changed this cycle.
#[allow(clippy::too_many_arguments)]
pub fn observe_job_into<C: CandidateFilter + ?Sized>(
    collector: &Collector,
    id: JobId,
    members: &[NodeId],
    candidates: &C,
    model_of: &dyn Fn(NodeId) -> Arc<PowerModel>,
    cache: &mut NodeObsCache,
    out: &mut JobObservation,
) -> bool {
    out.id = id;
    out.nodes.clear();
    let mut prev_sum = 0.0;
    let mut prev_complete = true;
    for &n in members {
        if !candidates.admits(n) {
            continue;
        }
        let Some(sample) = collector.latest(n) else {
            continue;
        };
        if sample.is_idle() {
            continue;
        }
        let saving_w = cache.saving_w(n, sample.level, &sample.state, sample.power_w, model_of);
        out.nodes.push(NodeObservation {
            node: n,
            level: sample.level,
            power_w: sample.power_w,
            saving_w,
        });
        match collector.prev_power_of(n) {
            Some(p) => prev_sum += p,
            None => prev_complete = false,
        }
    }
    if out.nodes.is_empty() {
        return false;
    }
    out.prev_power_w = (prev_complete && prev_sum > 0.0).then_some(prev_sum);
    true
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for policy and capping tests.
    use super::*;

    /// Builds a node observation at the given level with a saving
    /// proportional to the level (0 at the bottom).
    pub fn nobs(node: u32, level: u8, power_w: f64) -> NodeObservation {
        NodeObservation {
            node: NodeId(node),
            level: Level::new(level),
            power_w,
            saving_w: if level == 0 { 0.0 } else { 10.0 },
        }
    }

    /// Builds a job observation.
    pub fn jobs_obs(
        id: u64,
        nodes: Vec<NodeObservation>,
        prev_power_w: Option<f64>,
    ) -> JobObservation {
        JobObservation {
            id: JobId(id),
            nodes,
            prev_power_w,
        }
    }

    /// A context with the given jobs, power and P_L. Leaks the job list
    /// (tests only) so fixtures can stay by-value at every call site while
    /// `SelectionContext` itself borrows.
    pub fn ctx(jobs: Vec<JobObservation>, power_w: f64, p_low_w: f64) -> SelectionContext<'static> {
        SelectionContext {
            jobs: Vec::leak(jobs),
            power_w,
            p_low_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use ppc_node::spec::NodeSpec;
    use ppc_node::OperatingState;
    use ppc_simkit::SimTime;
    use ppc_telemetry::NodeSample;

    #[test]
    fn job_aggregates_power_and_savings() {
        let j = jobs_obs(1, vec![nobs(0, 5, 200.0), nobs(1, 0, 150.0)], Some(300.0));
        assert_eq!(j.power_w(), 350.0);
        // Only the level-5 node is degradable.
        assert_eq!(j.saving_w(), 10.0);
        assert_eq!(j.degradable_nodes().count(), 1);
        assert!(j.has_degradable());
        let rate = j.power_rate().unwrap();
        assert!((rate - (350.0 - 300.0) / 300.0).abs() < 1e-12);
    }

    #[test]
    fn rate_requires_previous_data() {
        let j = jobs_obs(1, vec![nobs(0, 5, 100.0)], None);
        assert_eq!(j.power_rate(), None);
        let j0 = jobs_obs(1, vec![nobs(0, 5, 100.0)], Some(0.0));
        assert_eq!(j0.power_rate(), None);
    }

    #[test]
    fn rate_rejects_nonpositive_history() {
        // A non-positive previous power would make the relative rate
        // meaningless (division by ≤ 0): both zero and negative history
        // read as "no data", exactly like a missing sample.
        let j = jobs_obs(1, vec![nobs(0, 5, 100.0)], Some(-50.0));
        assert_eq!(j.power_rate(), None);
        // Falling power with valid history is a negative rate, not None.
        let j2 = jobs_obs(1, vec![nobs(0, 5, 100.0)], Some(200.0));
        assert_eq!(j2.power_rate(), Some(-0.5));
    }

    #[test]
    fn deficit_is_clamped_at_zero() {
        let c = ctx(vec![], 900.0, 1_000.0);
        assert_eq!(c.deficit_w(), 0.0);
        let c2 = ctx(vec![], 1_200.0, 1_000.0);
        assert_eq!(c2.deficit_w(), 200.0);
    }

    #[test]
    fn deficit_at_exact_threshold_is_zero() {
        // P == P_L sits on the Green/Yellow boundary: the required cut is
        // exactly zero, not an epsilon — selection must see no deficit.
        let c = ctx(vec![], 1_000.0, 1_000.0);
        assert_eq!(c.deficit_w(), 0.0);
        // One watt over the line is a one-watt deficit, bit-exactly.
        let c2 = ctx(vec![], 1_001.0, 1_000.0);
        assert_eq!(c2.deficit_w(), 1.0);
    }

    #[test]
    fn observe_jobs_partial_history_yields_no_prev_power() {
        // Two member nodes, only one with a previous sample: P^{t-1}(J)
        // must be None (a partial sum would understate the job's history
        // and fabricate a huge apparent rate of increase).
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let mut collector = Collector::new();
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 1 << 30,
            nic_bytes: 1000,
        };
        let mk = |node: u32, at: u64| NodeSample {
            node: NodeId(node),
            at: SimTime::from_secs(at),
            state: busy,
            level: Level::new(9),
            power_w: model.power_w(Level::new(9), &busy),
        };
        collector.ingest(mk(0, 0));
        collector.ingest(mk(0, 1)); // node 0: two samples → prev known
        collector.ingest(mk(1, 1)); // node 1: first sample only
        let candidates: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        let members = [NodeId(0), NodeId(1)];
        let m = model.clone();
        let obs = observe_jobs(
            &collector,
            [(JobId(3), &members[..])],
            &candidates,
            &move |_| m.clone(),
        );
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].nodes.len(), 2);
        assert_eq!(obs[0].prev_power_w, None);
        assert_eq!(obs[0].power_rate(), None);
    }

    #[test]
    fn observe_jobs_filters_idle_and_non_candidates() {
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let mut collector = Collector::new();
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 1 << 30,
            nic_bytes: 1000,
        };
        let mk = |node: u32, at: u64, state: OperatingState| NodeSample {
            node: NodeId(node),
            at: SimTime::from_secs(at),
            state,
            level: Level::new(9),
            power_w: model.power_w(Level::new(9), &state),
        };
        // Node 0: busy candidate; node 1: idle; node 2: busy but not candidate.
        collector.ingest(mk(0, 0, busy));
        collector.ingest(mk(0, 1, busy));
        collector.ingest(mk(1, 1, OperatingState::IDLE));
        collector.ingest(mk(2, 1, busy));
        let candidates: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        let jobs = [
            (JobId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
            (JobId(2), vec![NodeId(2)]), // no observable nodes → dropped
        ];
        let model2 = model.clone();
        let obs = observe_jobs(
            &collector,
            jobs.iter().map(|(id, ns)| (*id, ns.as_slice())),
            &candidates,
            &move |_| model2.clone(),
        );
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].id, JobId(1));
        assert_eq!(obs[0].nodes.len(), 1);
        assert_eq!(obs[0].nodes[0].node, NodeId(0));
        assert!(obs[0].nodes[0].saving_w > 0.0);
        // Node 0 has two samples → prev power known.
        assert!(obs[0].prev_power_w.is_some());
    }

    #[test]
    fn observe_jobs_without_prev_sample_has_no_rate() {
        let spec = NodeSpec::tianhe_1a();
        let model = spec.power_model(1.0);
        let mut collector = Collector::new();
        let busy = OperatingState {
            cpu_util: 0.9,
            mem_used_bytes: 0,
            nic_bytes: 0,
        };
        collector.ingest(NodeSample {
            node: NodeId(0),
            at: SimTime::ZERO,
            state: busy,
            level: Level::new(9),
            power_w: 250.0,
        });
        let candidates: BTreeSet<NodeId> = [NodeId(0)].into_iter().collect();
        let m = model.clone();
        let members = [NodeId(0)];
        let obs = observe_jobs(
            &collector,
            [(JobId(7), &members[..])],
            &candidates,
            &move |_| m.clone(),
        );
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].prev_power_w, None);
    }
}
