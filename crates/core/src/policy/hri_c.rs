//! HRI-C — the *highest rate of increase* job-collection policy.
//!
//! The paper notes that the collection counterpart makes sense for HRI
//! (unlike for BFP): walk jobs from the fastest-ramping downward,
//! accumulating one-level savings until the deficit `P − P_L` is covered.
//! Jobs without rate information are appended after rated ones, ordered
//! by power, so the collection can still complete on cold starts.

use crate::observe::{JobObservation, SelectionContext};
use crate::policy::TargetSelectionPolicy;
use ppc_node::NodeId;
use std::collections::BTreeSet;

/// The HRI-C policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct HriC;

impl TargetSelectionPolicy for HriC {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "HRI-C"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        let mut rated: Vec<(&JobObservation, f64)> = Vec::new();
        let mut unrated: Vec<&JobObservation> = Vec::new();
        for j in ctx.jobs.iter().filter(|j| j.has_degradable()) {
            match j.power_rate() {
                Some(r) => rated.push((j, r)),
                None => unrated.push(j),
            }
        }
        // total_cmp: a total order even on pathological inputs, so the
        // selection can never panic mid-control-cycle.
        rated.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.id.cmp(&b.0.id)));
        unrated.sort_by(|a, b| {
            b.power_w()
                .total_cmp(&a.power_w())
                .then_with(|| a.id.cmp(&b.id))
        });

        let deficit = ctx.deficit_w();
        let mut saved = 0.0;
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        for job in rated.into_iter().map(|(j, _)| j).chain(unrated) {
            for n in job.degradable_nodes() {
                if targets.insert(n.node) {
                    saved += n.saving_w;
                }
            }
            if saved >= deficit {
                break;
            }
        }
        targets.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    // testutil savings: 10 W per degradable node.
    #[test]
    fn collects_fastest_ramps_first() {
        let slow_ramp = jobs_obs(1, vec![nobs(0, 5, 110.0)], Some(100.0)); // +10%
        let fast_ramp = jobs_obs(2, vec![nobs(1, 5, 150.0)], Some(100.0)); // +50%
        let flat = jobs_obs(3, vec![nobs(2, 5, 500.0)], Some(500.0)); // 0%
                                                                      // Deficit 15: fast (10) then slow (10) covers it; flat untouched.
        let c = ctx(vec![slow_ramp, fast_ramp, flat], 1_015.0, 1_000.0);
        assert_eq!(HriC.select(&c), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn single_job_suffices_for_small_deficit() {
        let fast = jobs_obs(2, vec![nobs(1, 5, 150.0)], Some(100.0));
        let slow = jobs_obs(1, vec![nobs(0, 5, 110.0)], Some(100.0));
        let c = ctx(vec![slow, fast], 1_005.0, 1_000.0);
        assert_eq!(HriC.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn unrated_jobs_fill_in_after_rated_ones() {
        let rated = jobs_obs(1, vec![nobs(0, 5, 100.0)], Some(90.0)); // saves 10
        let unrated = jobs_obs(2, vec![nobs(1, 5, 400.0)], None); // saves 10
        let c = ctx(vec![unrated, rated], 1_015.0, 1_000.0); // deficit 15
        assert_eq!(HriC.select(&c), vec![NodeId(0), NodeId(1)]);
    }
}
