//! LPC — the *least power consuming job* policy.
//!
//! Targets the job with the smallest `Power(J)`. The slowest-acting
//! state-based policy, but the least likely to cause power-state swings
//! between Green and Yellow (paper §IV.A).

use crate::observe::SelectionContext;
use crate::policy::{argmax_job, targets_of, TargetSelectionPolicy};
use ppc_node::NodeId;

/// The LPC policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lpc;

impl TargetSelectionPolicy for Lpc {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "LPC"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        // argmax over negated power = argmin with the same id tie-break.
        argmax_job(
            ctx.jobs
                .iter()
                .filter(|j| j.has_degradable())
                .map(|j| (j, -j.power_w())),
        )
        .map(targets_of)
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn picks_the_smallest_job() {
        let small = jobs_obs(2, vec![nobs(0, 5, 150.0)], None);
        let big = jobs_obs(1, vec![nobs(1, 5, 500.0)], None);
        let c = ctx(vec![big, small], 10_000.0, 9_000.0);
        assert_eq!(Lpc.select(&c), vec![NodeId(0)]);
    }

    #[test]
    fn ties_break_toward_lower_job_id() {
        let a = jobs_obs(4, vec![nobs(0, 5, 100.0)], None);
        let b = jobs_obs(2, vec![nobs(1, 5, 100.0)], None);
        let c = ctx(vec![a, b], 10_000.0, 9_000.0);
        assert_eq!(Lpc.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn empty_context_selects_nothing() {
        assert!(Lpc.select(&ctx(vec![], 1.0, 0.5)).is_empty());
    }
}
