//! MPC-C — the *most power consuming job collection* policy
//! (paper Algorithm 2).
//!
//! Walks jobs in descending `Power(J)` order, accumulating the predicted
//! savings `Σ [P(x) − P'(x)]` over nodes not yet in the target set, and
//! stops as soon as the accumulated saving covers the deficit `P − P_L`.
//! This returns the system to Green faster than single-job MPC at the
//! cost of touching more jobs.

use crate::observe::SelectionContext;
use crate::policy::TargetSelectionPolicy;
use ppc_node::NodeId;
use std::collections::BTreeSet;

/// The MPC-C policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct MpcC;

impl TargetSelectionPolicy for MpcC {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "MPC-C"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        collect_until_deficit(ctx, /* descending_power = */ true)
    }
}

/// Shared engine for MPC-C and LPC-C: walk jobs ordered by power and
/// accumulate until the saving covers the deficit.
pub(crate) fn collect_until_deficit(ctx: &SelectionContext, descending_power: bool) -> Vec<NodeId> {
    let mut order: Vec<&crate::observe::JobObservation> =
        ctx.jobs.iter().filter(|j| j.has_degradable()).collect();
    // Sort by power with deterministic id tie-break.
    order.sort_by(|a, b| {
        // total_cmp: panic-free total order even on pathological inputs.
        let cmp = a.power_w().total_cmp(&b.power_w());
        let cmp = if descending_power { cmp.reverse() } else { cmp };
        cmp.then_with(|| a.id.cmp(&b.id))
    });

    let deficit = ctx.deficit_w();
    let mut saved = 0.0;
    let mut targets: BTreeSet<NodeId> = BTreeSet::new();
    for job in order {
        for n in job.degradable_nodes() {
            // `Nodes(J_i) − A` in Algorithm 2: only count nodes not already
            // collected (jobs never share nodes under exclusive scheduling,
            // but the algorithm is written to tolerate overlap).
            if targets.insert(n.node) {
                saved += n.saving_w;
            }
        }
        if saved >= deficit {
            break;
        }
    }
    targets.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn stops_once_deficit_is_covered() {
        // Deficit 15 W; each degradable node saves 10 W (testutil fixture).
        // Biggest job (2 nodes) saves 20 ≥ 15 → only that job selected.
        let big = jobs_obs(1, vec![nobs(0, 5, 400.0), nobs(1, 5, 300.0)], None);
        let small = jobs_obs(2, vec![nobs(2, 5, 100.0)], None);
        let c = ctx(vec![small.clone(), big.clone()], 1_015.0, 1_000.0);
        let t = MpcC.select(&c);
        assert_eq!(t, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn spills_into_next_job_when_needed() {
        // Deficit 25 W; big job saves 20 → also takes the next job.
        let big = jobs_obs(1, vec![nobs(0, 5, 400.0), nobs(1, 5, 300.0)], None);
        let small = jobs_obs(2, vec![nobs(2, 5, 100.0)], None);
        let c = ctx(vec![small, big], 1_025.0, 1_000.0);
        let t = MpcC.select(&c);
        assert_eq!(t, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn takes_everything_when_deficit_unreachable() {
        let a = jobs_obs(1, vec![nobs(0, 5, 400.0)], None);
        let b = jobs_obs(2, vec![nobs(1, 5, 100.0)], None);
        let c = ctx(vec![a, b], 2_000.0, 1_000.0); // deficit 1000 ≫ 20
        let t = MpcC.select(&c);
        assert_eq!(t.len(), 2, "all degradable nodes selected");
    }

    #[test]
    fn zero_deficit_still_selects_the_top_job() {
        // Algorithm 2's loop body runs before the exit check, so even at
        // P ≤ P_L (caller normally does not invoke selection then) the
        // first job is collected.
        let a = jobs_obs(1, vec![nobs(0, 5, 400.0)], None);
        let c = ctx(vec![a], 900.0, 1_000.0);
        assert_eq!(MpcC.select(&c).len(), 1);
    }

    #[test]
    fn floored_nodes_do_not_count_toward_saving() {
        // Job 1: one degradable (10 W) + one floored (0 W). Deficit 15 W →
        // must also pull in job 2.
        let a = jobs_obs(1, vec![nobs(0, 5, 400.0), nobs(1, 0, 300.0)], None);
        let b = jobs_obs(2, vec![nobs(2, 5, 100.0)], None);
        let c = ctx(vec![a, b], 1_015.0, 1_000.0);
        let t = MpcC.select(&c);
        assert_eq!(t, vec![NodeId(0), NodeId(2)]);
    }
}
