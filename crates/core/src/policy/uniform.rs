//! UNIFORM — an ensemble-style related-work baseline.
//!
//! The approaches the paper positions itself against (Femal's two-level
//! budget allocation, Ranganathan's ensemble controller, Wang's MIMO
//! loop) treat *all nodes as equally important*: when the ensemble is
//! over budget, every controllable node gives something back. This
//! baseline reproduces that shape — every degradable node in every
//! observed job is targeted each Yellow cycle — so the experiments can
//! quantify what the paper's job-aware selection actually buys.
//!
//! Predicted character: fastest possible power reduction per cycle, but
//! every running job is slowed every time, so CPLJ collapses.

use crate::observe::SelectionContext;
use crate::policy::TargetSelectionPolicy;
use ppc_node::NodeId;
use std::collections::BTreeSet;

/// The UNIFORM baseline (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl TargetSelectionPolicy for Uniform {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "UNIFORM"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        for job in ctx.jobs {
            for n in job.degradable_nodes() {
                targets.insert(n.node);
            }
        }
        targets.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn targets_every_degradable_node() {
        let a = jobs_obs(1, vec![nobs(0, 5, 300.0), nobs(1, 0, 200.0)], None);
        let b = jobs_obs(2, vec![nobs(2, 3, 100.0)], None);
        let c = ctx(vec![a, b], 1_100.0, 1_000.0);
        let t = Uniform.select(&c);
        // Node 1 is floored and excluded; 0 and 2 are taken.
        assert_eq!(t, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn empty_context_selects_nothing() {
        assert!(Uniform.select(&ctx(vec![], 1_100.0, 1_000.0)).is_empty());
    }
}
