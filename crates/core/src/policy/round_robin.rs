//! RR — a fairness-first related-work baseline.
//!
//! Degrades one job per Yellow cycle, rotating through the running jobs
//! in id order regardless of their power or ramp: the "fair share"
//! strawman against which the paper's power-aware policies (which
//! deliberately punish the biggest or fastest-growing job) can be
//! quantified. The only *stateful* policy — it remembers which job it
//! throttled last.

use crate::observe::SelectionContext;
use crate::policy::{targets_of, TargetSelectionPolicy};
use ppc_node::NodeId;
use ppc_workload::JobId;

/// The round-robin baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    /// Id of the last job throttled; the next selection takes the first
    /// eligible job with a strictly greater id, wrapping around.
    last: Option<JobId>,
}

impl TargetSelectionPolicy for RoundRobin {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "RR"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        let mut eligible: Vec<&crate::observe::JobObservation> =
            ctx.jobs.iter().filter(|j| j.has_degradable()).collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        eligible.sort_by_key(|j| j.id);
        let chosen = match self.last {
            Some(last) => eligible
                .iter()
                .find(|j| j.id > last)
                .copied()
                .unwrap_or(eligible[0]),
            None => eligible[0],
        };
        self.last = Some(chosen.id);
        targets_of(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    fn three_jobs() -> crate::observe::SelectionContext<'static> {
        ctx(
            vec![
                jobs_obs(1, vec![nobs(0, 5, 100.0)], None),
                jobs_obs(2, vec![nobs(1, 5, 900.0)], None),
                jobs_obs(3, vec![nobs(2, 5, 500.0)], None),
            ],
            1_100.0,
            1_000.0,
        )
    }

    #[test]
    fn rotates_through_jobs_ignoring_power() {
        let mut p = RoundRobin::default();
        let c = three_jobs();
        assert_eq!(p.select(&c), vec![NodeId(0)]); // job 1
        assert_eq!(p.select(&c), vec![NodeId(1)]); // job 2
        assert_eq!(p.select(&c), vec![NodeId(2)]); // job 3
        assert_eq!(p.select(&c), vec![NodeId(0)], "wraps around");
    }

    #[test]
    fn skips_vanished_jobs() {
        let mut p = RoundRobin::default();
        p.select(&three_jobs()); // last = job 1
                                 // Job 2 has finished; next eligible above 1 is job 3.
        let c = ctx(
            vec![
                jobs_obs(1, vec![nobs(0, 5, 100.0)], None),
                jobs_obs(3, vec![nobs(2, 5, 500.0)], None),
            ],
            1_100.0,
            1_000.0,
        );
        assert_eq!(p.select(&c), vec![NodeId(2)]);
    }

    #[test]
    fn empty_context_keeps_state() {
        let mut p = RoundRobin::default();
        assert!(p.select(&ctx(vec![], 1_100.0, 1_000.0)).is_empty());
        assert_eq!(p.select(&three_jobs()), vec![NodeId(0)]);
    }
}
