//! LPC-C — the *least power consuming job collection* policy.
//!
//! The ascending counterpart of Algorithm 2: walk jobs from the smallest
//! `Power(J)` upward, accumulating savings until the deficit is covered.
//! Gentle on big jobs, at the cost of touching many small ones.

use crate::observe::SelectionContext;
use crate::policy::mpc_c::collect_until_deficit;
use crate::policy::TargetSelectionPolicy;
use ppc_node::NodeId;

/// The LPC-C policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct LpcC;

impl TargetSelectionPolicy for LpcC {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "LPC-C"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        collect_until_deficit(ctx, /* descending_power = */ false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn collects_from_the_small_end() {
        // Deficit 15 W; smallest job saves 10, next smallest 10 → two
        // smallest jobs selected, biggest untouched.
        let big = jobs_obs(1, vec![nobs(0, 5, 500.0)], None);
        let mid = jobs_obs(2, vec![nobs(1, 5, 200.0)], None);
        let small = jobs_obs(3, vec![nobs(2, 5, 100.0)], None);
        let c = ctx(vec![big, mid, small], 1_015.0, 1_000.0);
        let t = LpcC.select(&c);
        assert_eq!(t, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn single_small_job_suffices_for_tiny_deficit() {
        let big = jobs_obs(1, vec![nobs(0, 5, 500.0)], None);
        let small = jobs_obs(2, vec![nobs(1, 5, 100.0)], None);
        let c = ctx(vec![big, small], 1_005.0, 1_000.0);
        assert_eq!(LpcC.select(&c), vec![NodeId(1)]);
    }
}
