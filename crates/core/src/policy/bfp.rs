//! BFP — the *best fit job* policy.
//!
//! Selects the job whose one-level saving is *just above* the deficit
//! `P − P_L`: enough to return to Green, with the least over-correction.
//! When no single job can cover the deficit, the job with the largest
//! saving is taken (the closest achievable fit). A compromise between MPC
//! and LPC (paper §IV.A).

use crate::observe::SelectionContext;
use crate::policy::{argmax_job, targets_of, TargetSelectionPolicy};
use ppc_node::NodeId;

/// The BFP policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bfp;

impl TargetSelectionPolicy for Bfp {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "BFP"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        let deficit = ctx.deficit_w();
        let candidates = || ctx.jobs.iter().filter(|j| j.has_degradable());
        // Best fit: smallest saving that still covers the deficit …
        let fit = argmax_job(
            candidates()
                .filter(|j| j.saving_w() >= deficit)
                .map(|j| (j, -j.saving_w())),
        );
        // … falling back to the largest saving when none covers it.
        let chosen = fit.or_else(|| argmax_job(candidates().map(|j| (j, j.saving_w()))));
        chosen.map(targets_of).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    // testutil savings: 10 W per degradable node.
    #[test]
    fn picks_smallest_sufficient_job() {
        let one_node = jobs_obs(1, vec![nobs(0, 5, 100.0)], None); // saves 10
        let two_node = jobs_obs(2, vec![nobs(1, 5, 300.0), nobs(2, 5, 300.0)], None); // saves 20
        let three_node = jobs_obs(
            3,
            vec![nobs(3, 5, 300.0), nobs(4, 5, 300.0), nobs(5, 5, 300.0)],
            None,
        ); // saves 30
           // Deficit 15 → two-node job (20 ≥ 15) beats three-node (30 ≥ 15).
        let c = ctx(vec![one_node, two_node, three_node], 1_015.0, 1_000.0);
        assert_eq!(Bfp.select(&c), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn falls_back_to_biggest_saving_when_deficit_unreachable() {
        let a = jobs_obs(1, vec![nobs(0, 5, 100.0)], None); // saves 10
        let b = jobs_obs(2, vec![nobs(1, 5, 300.0), nobs(2, 5, 300.0)], None); // saves 20
        let c = ctx(vec![a, b], 1_500.0, 1_000.0); // deficit 500
        assert_eq!(Bfp.select(&c), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn exact_fit_is_accepted() {
        let a = jobs_obs(1, vec![nobs(0, 5, 100.0)], None); // saves exactly 10
        let c = ctx(vec![a], 1_010.0, 1_000.0);
        assert_eq!(Bfp.select(&c), vec![NodeId(0)]);
    }

    #[test]
    fn empty_context_selects_nothing() {
        assert!(Bfp.select(&ctx(vec![], 1_010.0, 1_000.0)).is_empty());
    }
}
