//! Target-set selection policies.
//!
//! Given the cycle's [`SelectionContext`], a policy returns the nodes to
//! degrade by one level (`A_target`). Two families exist:
//!
//! * **state-based** — select by the *current* power of jobs: [`Mpc`]
//!   (most power-consuming job), [`MpcC`] (Algorithm 2's job collection),
//!   [`Lpc`]/[`LpcC`] (least consuming), [`Bfp`] (best fit);
//! * **change-based** — select by the *rate of increase* of job power:
//!   [`Hri`] and its collection variant [`HriC`].
//!
//! Contract (checked by the property tests in `capping`): a returned node
//! must appear in the context (hence candidate and non-idle) and be
//! degradable (not at its lowest level). Idle nodes never enter the
//! context, satisfying Algorithm 1's note that "a valid target set
//! selection policy shall not select an idle node".

mod bfp;
mod hri;
mod hri_c;
mod lpc;
mod lpc_c;
mod mpc;
mod mpc_c;
mod round_robin;
mod uniform;

pub use bfp::Bfp;
pub use hri::Hri;
pub use hri_c::HriC;
pub use lpc::Lpc;
pub use lpc_c::LpcC;
pub use mpc::Mpc;
pub use mpc_c::MpcC;
pub use round_robin::RoundRobin;
pub use uniform::Uniform;

use crate::observe::{JobObservation, SelectionContext};
use ppc_node::NodeId;
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// A target-set selection policy.
///
/// `Send + Sync` so a sim holding one can be shared immutably across the
/// worker pool, and [`clone_box`](Self::clone_box) so the manager — and
/// therefore a whole simulation — can be deep-cloned for snapshot/branch.
pub trait TargetSelectionPolicy: Send + Sync {
    /// Short policy name (e.g. `"MPC"`).
    fn name(&self) -> &'static str;

    /// Selects `A_target`: the nodes to degrade one level this cycle.
    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId>;

    /// Deep copy behind the trait object, including any internal state
    /// (e.g. [`RoundRobin`]'s cursor).
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy>;
}

impl Clone for Box<dyn TargetSelectionPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Enumerates the implemented policies (CLI/config surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Most power-consuming job.
    Mpc,
    /// Most power-consuming job collection (paper Algorithm 2).
    MpcC,
    /// Least power-consuming job.
    Lpc,
    /// Least power-consuming job collection.
    LpcC,
    /// Best-fit job (saving just above the deficit).
    Bfp,
    /// Highest rate of increase in power consumption.
    Hri,
    /// Highest-rate job collection.
    HriC,
    /// Related-work baseline: degrade every degradable node (ensemble /
    /// uniform capping, all nodes equally important).
    Uniform,
    /// Related-work baseline: rotate through jobs fairly, ignoring power.
    RoundRobin,
}

impl PolicyKind {
    /// Every implemented policy, including the related-work baselines.
    pub const ALL: [PolicyKind; 9] = [
        PolicyKind::Mpc,
        PolicyKind::MpcC,
        PolicyKind::Lpc,
        PolicyKind::LpcC,
        PolicyKind::Bfp,
        PolicyKind::Hri,
        PolicyKind::HriC,
        PolicyKind::Uniform,
        PolicyKind::RoundRobin,
    ];

    /// The seven policies the paper itself describes (§IV).
    pub const PAPER_FAMILY: [PolicyKind; 7] = [
        PolicyKind::Mpc,
        PolicyKind::MpcC,
        PolicyKind::Lpc,
        PolicyKind::LpcC,
        PolicyKind::Bfp,
        PolicyKind::Hri,
        PolicyKind::HriC,
    ];

    /// The two policies the paper evaluates on the testbed.
    pub const PAPER: [PolicyKind; 2] = [PolicyKind::Mpc, PolicyKind::Hri];

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Mpc => "MPC",
            PolicyKind::MpcC => "MPC-C",
            PolicyKind::Lpc => "LPC",
            PolicyKind::LpcC => "LPC-C",
            PolicyKind::Bfp => "BFP",
            PolicyKind::Hri => "HRI",
            PolicyKind::HriC => "HRI-C",
            PolicyKind::Uniform => "UNIFORM",
            PolicyKind::RoundRobin => "RR",
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn TargetSelectionPolicy> {
        match self {
            PolicyKind::Mpc => Box::new(Mpc),
            PolicyKind::MpcC => Box::new(MpcC),
            PolicyKind::Lpc => Box::new(Lpc),
            PolicyKind::LpcC => Box::new(LpcC),
            PolicyKind::Bfp => Box::new(Bfp),
            PolicyKind::Hri => Box::new(Hri),
            PolicyKind::HriC => Box::new(HriC),
            PolicyKind::Uniform => Box::new(Uniform),
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
        }
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_uppercase().replace('_', "-");
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.name() == norm)
            .ok_or_else(|| format!("unknown policy {s:?}; expected one of MPC, MPC-C, LPC, LPC-C, BFP, HRI, HRI-C, UNIFORM, RR"))
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic tie-break: orders jobs by `(key desc, id asc)` and
/// returns the winner. Shared by the single-job policies.
pub(crate) fn argmax_job<'a>(
    jobs: impl Iterator<Item = (&'a JobObservation, f64)>,
) -> Option<&'a JobObservation> {
    jobs.fold(
        None::<(&JobObservation, f64)>,
        |best, (job, key)| match best {
            None => Some((job, key)),
            Some((bj, bk)) => {
                if key > bk || (key == bk && job.id < bj.id) {
                    Some((job, key))
                } else {
                    Some((bj, bk))
                }
            }
        },
    )
    .map(|(j, _)| j)
}

/// All degradable nodes of a job, as the target list.
pub(crate) fn targets_of(job: &JobObservation) -> Vec<NodeId> {
    job.degradable_nodes().map(|n| n.node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn kind_roundtrips_through_strings() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            let lower: PolicyKind = kind.name().to_ascii_lowercase().parse().unwrap();
            assert_eq!(lower, kind);
        }
        assert!("nope".parse::<PolicyKind>().is_err());
        assert_eq!("mpc_c".parse::<PolicyKind>().unwrap(), PolicyKind::MpcC);
    }

    #[test]
    fn build_matches_name() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            assert_eq!(p.name(), kind.name());
            // An empty context selects nothing, for every policy.
            assert!(p.select(&ctx(vec![], 1_000.0, 900.0)).is_empty());
        }
    }

    #[test]
    fn argmax_breaks_ties_by_lower_id() {
        let a = jobs_obs(3, vec![nobs(0, 5, 100.0)], None);
        let b = jobs_obs(1, vec![nobs(1, 5, 100.0)], None);
        let c = jobs_obs(2, vec![nobs(2, 5, 100.0)], None);
        let jobs = [&a, &b, &c];
        let win = argmax_job(jobs.iter().map(|j| (*j, j.power_w()))).unwrap();
        assert_eq!(win.id.0, 1);
    }

    #[test]
    fn paper_policies_are_mpc_and_hri() {
        assert_eq!(PolicyKind::PAPER[0].name(), "MPC");
        assert_eq!(PolicyKind::PAPER[1].name(), "HRI");
    }
}
