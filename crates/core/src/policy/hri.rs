//! HRI — the *highest rate of increase in power consumption* policy.
//!
//! The change-based alternative (paper §IV.B): target the job whose
//! `ΔP^t(J) = (P^t(J) − P^{t−1}(J)) / P^{t−1}(J)` is largest — i.e. punish
//! the job that actually *caused* the excursion into Yellow. Fairer than
//! MPC, but the ramping job is often small, so each cycle reduces less
//! power and recovery to Green is slower (which is exactly the ΔP×T gap
//! the paper measures between the two policies).
//!
//! Jobs observed for less than two intervals have no rate yet; when *no*
//! job has a rate (e.g. the first cycle after a candidate-set change), we
//! fall back to the most power-consuming job so a Yellow cycle is never
//! wasted — the fallback the paper's description implies by requiring the
//! target set to be non-empty whenever degradable jobs exist.

use crate::observe::SelectionContext;
use crate::policy::{argmax_job, targets_of, TargetSelectionPolicy};
use ppc_node::NodeId;

/// The HRI policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hri;

impl TargetSelectionPolicy for Hri {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "HRI"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        let degradable = || ctx.jobs.iter().filter(|j| j.has_degradable());
        let by_rate = argmax_job(degradable().filter_map(|j| j.power_rate().map(|r| (j, r))));
        let chosen = by_rate.or_else(|| argmax_job(degradable().map(|j| (j, j.power_w()))));
        chosen.map(targets_of).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};

    #[test]
    fn targets_the_fastest_ramping_job_not_the_biggest() {
        // Big job: 500 W, flat. Small job: 120 W, up from 80 W (+50%).
        let big = jobs_obs(1, vec![nobs(0, 5, 500.0)], Some(500.0));
        let small = jobs_obs(2, vec![nobs(1, 5, 120.0)], Some(80.0));
        let c = ctx(vec![big, small], 10_000.0, 9_000.0);
        assert_eq!(Hri.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn decreasing_jobs_lose_to_increasing_ones() {
        let falling = jobs_obs(1, vec![nobs(0, 5, 100.0)], Some(200.0)); // −50%
        let rising = jobs_obs(2, vec![nobs(1, 5, 110.0)], Some(100.0)); // +10%
        let c = ctx(vec![falling, rising], 10_000.0, 9_000.0);
        assert_eq!(Hri.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn falls_back_to_mpc_when_no_rates_exist() {
        let a = jobs_obs(1, vec![nobs(0, 5, 100.0)], None);
        let b = jobs_obs(2, vec![nobs(1, 5, 400.0)], None);
        let c = ctx(vec![a, b], 10_000.0, 9_000.0);
        assert_eq!(Hri.select(&c), vec![NodeId(1)], "biggest job as fallback");
    }

    #[test]
    fn rated_jobs_beat_unrated_even_at_lower_power() {
        let unrated_big = jobs_obs(1, vec![nobs(0, 5, 900.0)], None);
        let rated_small = jobs_obs(2, vec![nobs(1, 5, 50.0)], Some(40.0));
        let c = ctx(vec![unrated_big, rated_small], 10_000.0, 9_000.0);
        assert_eq!(Hri.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn skips_floored_jobs_entirely() {
        let floored = jobs_obs(1, vec![nobs(0, 0, 100.0)], Some(50.0));
        let usable = jobs_obs(2, vec![nobs(1, 5, 60.0)], Some(59.0));
        let c = ctx(vec![floored, usable], 10_000.0, 9_000.0);
        assert_eq!(Hri.select(&c), vec![NodeId(1)]);
    }
}
