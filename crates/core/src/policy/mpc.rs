//! MPC — the *most power consuming job* policy.
//!
//! Selects `Nodes(J)` for the job `J` with the largest `Power(J)` among
//! all jobs that still have degradable nodes. The rationale (paper §IV.A):
//! for a well-balanced application, degrading every node of one job costs
//! the same performance as degrading a single node — but saves much more
//! power — so the cheapest watts per unit of performance lost come from
//! throttling an entire job, and the biggest job buys the most watts.

use crate::observe::SelectionContext;
use crate::policy::{argmax_job, targets_of, TargetSelectionPolicy};
use ppc_node::NodeId;

/// The MPC policy (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mpc;

impl TargetSelectionPolicy for Mpc {
    fn clone_box(&self) -> Box<dyn TargetSelectionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "MPC"
    }

    fn select(&mut self, ctx: &SelectionContext) -> Vec<NodeId> {
        argmax_job(
            ctx.jobs
                .iter()
                .filter(|j| j.has_degradable())
                .map(|j| (j, j.power_w())),
        )
        .map(targets_of)
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};
    use ppc_node::NodeId;

    #[test]
    fn picks_the_hungriest_job() {
        let small = jobs_obs(1, vec![nobs(0, 5, 200.0)], None);
        let big = jobs_obs(2, vec![nobs(1, 5, 300.0), nobs(2, 5, 250.0)], None);
        let c = ctx(vec![small, big], 10_000.0, 9_000.0);
        let mut p = Mpc;
        assert_eq!(p.select(&c), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn skips_jobs_with_no_degradable_nodes() {
        // The biggest job is entirely at the lowest level.
        let floored = jobs_obs(1, vec![nobs(0, 0, 900.0)], None);
        let usable = jobs_obs(2, vec![nobs(1, 3, 100.0)], None);
        let c = ctx(vec![floored, usable], 10_000.0, 9_000.0);
        assert_eq!(Mpc.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn excludes_floored_nodes_of_the_chosen_job() {
        let j = jobs_obs(1, vec![nobs(0, 0, 500.0), nobs(1, 4, 100.0)], None);
        let c = ctx(vec![j], 10_000.0, 9_000.0);
        assert_eq!(Mpc.select(&c), vec![NodeId(1)]);
    }

    #[test]
    fn empty_when_nothing_selectable() {
        let floored = jobs_obs(1, vec![nobs(0, 0, 900.0)], None);
        assert!(Mpc.select(&ctx(vec![floored], 1.0, 0.5)).is_empty());
        assert!(Mpc.select(&ctx(vec![], 1.0, 0.5)).is_empty());
    }
}
