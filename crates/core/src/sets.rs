//! Node-set classification.
//!
//! The architecture's first move is to stop treating all nodes alike:
//!
//! * `A_total` — every node that consumes power budget;
//! * `A_uncontrollable` — privileged nodes (no DVFS facility, or running
//!   work that must not be degraded); never sensed, never throttled;
//! * `A_candidate = A_total − A_uncontrollable` — the monitored pool,
//!   possibly further capped to bound management cost (Figures 5/6 sweep
//!   this cap);
//! * `A_target ⊆ A_candidate` — chosen per cycle by the selection policy.
//!
//! `BTreeSet` keeps iteration order deterministic; with first-fit
//! scheduling, taking the *lowest-indexed* `k` controllable nodes as
//! candidates covers most running work (the paper's saturation-at-48
//! effect).

use ppc_node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The architecture's node classification.
///
/// The candidate set is cached and rebuilt on every mutation, so the
/// per-cycle read path ([`NodeSets::candidates`], [`NodeSets::is_candidate`])
/// never allocates: classification changes are rare (job start/finish),
/// reads happen every control cycle for every candidate node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "NodeSetsWire")]
pub struct NodeSets {
    total: BTreeSet<NodeId>,
    privileged: BTreeSet<NodeId>,
    /// Dense bitmask mirror of `candidates`, for O(1) membership tests on
    /// the per-tick hot path (one word load instead of a tree descent).
    #[serde(skip)]
    candidate_mask: Vec<u64>,
    /// Bumped on every candidate-set rebuild; consumers memoizing work
    /// against the candidate set (e.g. the capping algorithm's degraded-set
    /// prune) re-run only when this moves.
    #[serde(skip)]
    generation: u64,
    /// Nodes currently down (crashed, awaiting reboot). Offline nodes
    /// consume no power and accept no commands, so they leave
    /// `A_candidate` until they rejoin.
    offline: BTreeSet<NodeId>,
    /// Optional cap on the candidate count (`None` = all controllable).
    candidate_cap: Option<usize>,
    /// Cached `A_candidate` (derived; excluded from the wire format).
    #[serde(skip)]
    candidates: BTreeSet<NodeId>,
}

/// Wire shape of [`NodeSets`]: the source fields only; the candidate
/// cache is rebuilt on deserialization.
#[derive(Deserialize)]
struct NodeSetsWire {
    total: BTreeSet<NodeId>,
    privileged: BTreeSet<NodeId>,
    offline: BTreeSet<NodeId>,
    candidate_cap: Option<usize>,
}

impl From<NodeSetsWire> for NodeSets {
    fn from(wire: NodeSetsWire) -> Self {
        let mut sets = NodeSets {
            total: wire.total,
            privileged: wire.privileged,
            offline: wire.offline,
            candidate_cap: wire.candidate_cap,
            candidates: BTreeSet::new(),
            candidate_mask: Vec::new(),
            generation: 0,
        };
        sets.rebuild();
        sets
    }
}

impl NodeSets {
    /// Classifies `total` nodes with the given privileged subset.
    ///
    /// # Panics
    /// Panics if a privileged node is not in the total set.
    pub fn new(
        total: impl IntoIterator<Item = NodeId>,
        privileged: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let total: BTreeSet<NodeId> = total.into_iter().collect();
        let privileged: BTreeSet<NodeId> = privileged.into_iter().collect();
        assert!(
            privileged.is_subset(&total),
            "privileged nodes must be part of the total set"
        );
        let mut sets = NodeSets {
            total,
            privileged,
            offline: BTreeSet::new(),
            candidate_cap: None,
            candidates: BTreeSet::new(),
            candidate_mask: Vec::new(),
            generation: 0,
        };
        sets.rebuild();
        sets
    }

    /// Recomputes the cached candidate set from the source fields.
    fn rebuild(&mut self) {
        let it = self
            .total
            .difference(&self.privileged)
            .filter(|n| !self.offline.contains(n))
            .copied();
        self.candidates = match self.candidate_cap {
            Some(cap) => it.take(cap).collect(),
            None => it.collect(),
        };
        self.candidate_mask.clear();
        if let Some(max) = self.candidates.iter().next_back() {
            self.candidate_mask.resize(max.0 as usize / 64 + 1, 0);
            for n in &self.candidates {
                self.candidate_mask[n.0 as usize / 64] |= 1u64 << (n.0 % 64);
            }
        }
        self.generation += 1;
    }

    /// Caps the candidate set to its lowest-indexed `cap` members (the
    /// Figure 5/6 sweep knob). `None` removes the cap.
    pub fn with_candidate_cap(mut self, cap: Option<usize>) -> Self {
        self.set_candidate_cap(cap);
        self
    }

    /// Adjusts the candidate cap in place.
    pub fn set_candidate_cap(&mut self, cap: Option<usize>) {
        self.candidate_cap = cap;
        self.rebuild();
    }

    /// Marks a node privileged (joins `A_uncontrollable`) or not. The
    /// candidate set "may vary during the execution of the system".
    ///
    /// # Panics
    /// Panics if the node is not in the total set.
    pub fn set_privileged(&mut self, node: NodeId, privileged: bool) {
        assert!(self.total.contains(&node), "unknown node {node}");
        let changed = if privileged {
            self.privileged.insert(node)
        } else {
            self.privileged.remove(&node)
        };
        if changed {
            self.rebuild();
        }
    }

    /// Marks a node offline (down) or back online. Offline nodes leave
    /// `A_candidate` immediately; a rejoining node re-enters on the next
    /// rebuild (membership churn under faults).
    ///
    /// # Panics
    /// Panics if the node is not in the total set.
    pub fn set_offline(&mut self, node: NodeId, offline: bool) {
        assert!(self.total.contains(&node), "unknown node {node}");
        let changed = if offline {
            self.offline.insert(node)
        } else {
            self.offline.remove(&node)
        };
        if changed {
            self.rebuild();
        }
    }

    /// Nodes currently offline.
    pub fn offline(&self) -> &BTreeSet<NodeId> {
        &self.offline
    }

    /// `A_total`.
    pub fn total(&self) -> &BTreeSet<NodeId> {
        &self.total
    }

    /// `A_uncontrollable`.
    pub fn privileged(&self) -> &BTreeSet<NodeId> {
        &self.privileged
    }

    /// `A_candidate = A_total − A_uncontrollable`, truncated to the cap.
    /// Borrowed from the cache — no per-call allocation.
    pub fn candidates(&self) -> &BTreeSet<NodeId> {
        &self.candidates
    }

    /// Number of candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// True if `node` is currently a candidate — a single word load
    /// against the dense bitmask, for per-member tests on hot paths.
    pub fn is_candidate(&self, node: NodeId) -> bool {
        self.candidate_mask
            .get(node.0 as usize / 64)
            .is_some_and(|w| w & (1u64 << (node.0 % 64)) != 0)
    }

    /// The candidate-set generation: bumped on every rebuild (privilege,
    /// offline or cap change). Equal generations guarantee an identical
    /// candidate set, so memoized per-set work can be skipped.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl crate::observe::CandidateFilter for NodeSets {
    fn admits(&self, node: NodeId) -> bool {
        self.is_candidate(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: impl IntoIterator<Item = u32>) -> Vec<NodeId> {
        v.into_iter().map(NodeId).collect()
    }

    #[test]
    fn candidate_is_total_minus_privileged() {
        let s = NodeSets::new(ids(0..8), ids([1, 3]));
        let cand = s.candidates();
        assert_eq!(cand.len(), 6);
        assert!(!cand.contains(&NodeId(1)));
        assert!(!cand.contains(&NodeId(3)));
        assert!(s.is_candidate(NodeId(0)));
        assert!(!s.is_candidate(NodeId(3)));
        assert_eq!(s.candidate_count(), 6);
    }

    #[test]
    fn cap_takes_lowest_indices() {
        let s = NodeSets::new(ids(0..10), ids([0])).with_candidate_cap(Some(3));
        let cand: Vec<NodeId> = s.candidates().iter().copied().collect();
        assert_eq!(cand, ids([1, 2, 3]));
        assert_eq!(s.candidate_count(), 3);
        assert!(!s.is_candidate(NodeId(4)));
    }

    #[test]
    fn cap_larger_than_pool_is_harmless() {
        let s = NodeSets::new(ids(0..4), ids([])).with_candidate_cap(Some(100));
        assert_eq!(s.candidate_count(), 4);
    }

    #[test]
    fn zero_cap_disables_management() {
        let s = NodeSets::new(ids(0..4), ids([])).with_candidate_cap(Some(0));
        assert!(s.candidates().is_empty());
        assert_eq!(s.candidate_count(), 0);
    }

    #[test]
    fn privilege_can_change_at_runtime() {
        let mut s = NodeSets::new(ids(0..4), ids([]));
        assert_eq!(s.candidate_count(), 4);
        s.set_privileged(NodeId(2), true);
        assert_eq!(s.candidate_count(), 3);
        s.set_privileged(NodeId(2), false);
        assert_eq!(s.candidate_count(), 4);
    }

    #[test]
    #[should_panic(expected = "part of the total set")]
    fn foreign_privileged_node_rejected() {
        NodeSets::new(ids(0..4), ids([9]));
    }

    #[test]
    fn offline_nodes_leave_and_rejoin_the_candidate_pool() {
        let mut s = NodeSets::new(ids(0..6), ids([0]));
        assert_eq!(s.candidate_count(), 5);
        s.set_offline(NodeId(2), true);
        s.set_offline(NodeId(3), true);
        assert_eq!(s.candidate_count(), 3);
        assert!(!s.is_candidate(NodeId(2)));
        assert_eq!(s.offline().len(), 2);
        // Redundant marking is a no-op.
        s.set_offline(NodeId(2), true);
        assert_eq!(s.candidate_count(), 3);
        // Rejoin restores membership.
        s.set_offline(NodeId(2), false);
        assert!(s.is_candidate(NodeId(2)));
        assert_eq!(s.candidate_count(), 4);
    }

    #[test]
    fn offline_interacts_with_the_cap_by_backfilling() {
        // Cap 2 takes the lowest controllable online nodes; when one goes
        // offline the next-lowest node backfills the capped set.
        let mut s = NodeSets::new(ids(0..5), ids([])).with_candidate_cap(Some(2));
        assert_eq!(
            s.candidates().iter().copied().collect::<Vec<_>>(),
            ids([0, 1])
        );
        s.set_offline(NodeId(0), true);
        assert_eq!(
            s.candidates().iter().copied().collect::<Vec<_>>(),
            ids([1, 2])
        );
        s.set_offline(NodeId(0), false);
        assert_eq!(
            s.candidates().iter().copied().collect::<Vec<_>>(),
            ids([0, 1])
        );
    }

    proptest! {
        /// Candidates are always a subset of total, disjoint from
        /// privileged, and respect the cap.
        #[test]
        fn prop_set_algebra(total in 1u32..64, npriv in 0u32..32, cap in proptest::option::of(0usize..70)) {
            let privileged: Vec<NodeId> = (0..npriv.min(total)).map(|i| NodeId(i * 2 % total)).collect();
            let s = NodeSets::new((0..total).map(NodeId), privileged.clone())
                .with_candidate_cap(cap);
            let cand = s.candidates();
            prop_assert!(cand.is_subset(s.total()));
            prop_assert!(cand.is_disjoint(s.privileged()));
            if let Some(c) = cap {
                prop_assert!(cand.len() <= c);
            }
            prop_assert_eq!(cand.len(), s.candidate_count());
        }
    }
}
