//! # ppc-core — the power provision & capping architecture
//!
//! This crate is the paper's contribution, implemented in full:
//!
//! * [`sets`] — the node classification `A_total ⊇ A_uncontrollable`,
//!   `A_candidate = A_total − A_uncontrollable`, and per-cycle `A_target`;
//! * [`state`] — the Green / Yellow / Red power-consumption states defined
//!   by the two thresholds `P_L ≤ P_H`;
//! * [`thresholds`] — threshold setting and adjustment: a training period
//!   records the system peak `P_peak`, then `P_H = 93%·P_peak` and
//!   `P_L = 84%·P_peak` (margins from Fan et al.), re-adjusted every `t_p`
//!   control cycles;
//! * [`capping`] — Algorithm 1: steady-green recovery, yellow one-level
//!   degradation of a policy-selected target set, red force-to-lowest;
//! * [`policy`] — the target-set selection policies: state-based MPC,
//!   MPC-C (Algorithm 2), LPC, LPC-C, BFP and change-based HRI, HRI-C;
//! * [`observe`] — the per-cycle view (jobs → candidate nodes → power and
//!   one-level-down savings) that policies consume;
//! * [`manager`] — the control loop tying sensing to throttling commands;
//! * [`topology`] — the facility → row → rack → node tree with
//!   contiguous per-rack node-id ranges;
//! * [`hierarchy`] — the hierarchical control plane: per-rack
//!   sub-managers under delegated budgets, sibling headroom
//!   re-delegation, and worst-state rollup classification.

pub mod budget;
pub mod capping;
pub mod config;
pub mod error;
pub mod hierarchy;
pub mod manager;
pub mod observe;
pub mod policy;
pub mod sets;
pub mod state;
pub mod thresholds;
pub mod topology;

pub use budget::{
    conserves_budget, delegate_with_headroom, split_proportional, BudgetNodeView,
    ProportionalBudgetController,
};
pub use capping::{CappingAlgorithm, NodeCommand};
pub use config::ManagerConfig;
pub use error::CoreError;
pub use hierarchy::{DelegationOutcome, HierarchicalManager};
pub use manager::{CycleOutcome, ManagerStats, PowerManager};
pub use observe::{JobObservation, NodeObsCache, NodeObservation, SelectionContext};
pub use policy::{PolicyKind, TargetSelectionPolicy};
pub use sets::NodeSets;
pub use state::{PowerState, Thresholds};
pub use thresholds::ThresholdLearner;
pub use topology::Topology;
