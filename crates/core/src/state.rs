//! Power-consumption states and the two-threshold scheme.
//!
//! Two thresholds `P_L ≤ P_H` partition total system power into three
//! states. The gap between them is the safety buffer that lets the system
//! hover near `P_L` (performance) without spilling into Red (safety).

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three power-consumption states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// `P < P_L`: safe; no throttling needed.
    Green,
    /// `P_L ≤ P < P_H`: warning; reduce power mildly (one level on a
    /// policy-selected target set).
    Yellow,
    /// `P ≥ P_H`: critical; force every candidate node to its lowest
    /// power state immediately.
    Red,
}

impl PowerState {
    /// The state's color name as a static string (used for journal
    /// messages and span attributes without allocating).
    pub fn name(self) -> &'static str {
        match self {
            PowerState::Green => "green",
            PowerState::Yellow => "yellow",
            PowerState::Red => "red",
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated `(P_L, P_H)` pair, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    p_low_w: f64,
    p_high_w: f64,
}

impl Thresholds {
    /// Builds a threshold pair, enforcing `0 < P_L ≤ P_H`.
    pub fn new(p_low_w: f64, p_high_w: f64) -> Result<Self, CoreError> {
        if !(p_low_w > 0.0 && p_low_w <= p_high_w && p_high_w.is_finite()) {
            return Err(CoreError::InvalidThresholds { p_low_w, p_high_w });
        }
        Ok(Thresholds { p_low_w, p_high_w })
    }

    /// Derives thresholds from a peak observation with the paper's
    /// margins: `P_H = (1 − high_margin)·P_peak`, `P_L = (1 − low_margin)·P_peak`.
    pub fn from_peak(p_peak_w: f64, low_margin: f64, high_margin: f64) -> Result<Self, CoreError> {
        if p_peak_w.is_nan() || p_peak_w <= 0.0 {
            return Err(CoreError::InvalidThresholds {
                p_low_w: 0.0,
                p_high_w: 0.0,
            });
        }
        if !(0.0..1.0).contains(&high_margin) || !(high_margin..1.0).contains(&low_margin) {
            return Err(CoreError::InvalidConfig(format!(
                "margins must satisfy 0 <= high ({high_margin}) <= low ({low_margin}) < 1"
            )));
        }
        Thresholds::new(
            (1.0 - low_margin) * p_peak_w,
            (1.0 - high_margin) * p_peak_w,
        )
    }

    /// `P_L`, watts.
    pub fn p_low_w(&self) -> f64 {
        self.p_low_w
    }

    /// `P_H`, watts.
    pub fn p_high_w(&self) -> f64 {
        self.p_high_w
    }

    /// Classifies a power reading.
    pub fn classify(&self, power_w: f64) -> PowerState {
        if power_w < self.p_low_w {
            PowerState::Green
        } else if power_w < self.p_high_w {
            PowerState::Yellow
        } else {
            PowerState::Red
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classification_boundaries_are_half_open() {
        let t = Thresholds::new(100.0, 200.0).unwrap();
        assert_eq!(t.classify(99.9), PowerState::Green);
        assert_eq!(t.classify(100.0), PowerState::Yellow);
        assert_eq!(t.classify(199.9), PowerState::Yellow);
        assert_eq!(t.classify(200.0), PowerState::Red);
        assert_eq!(t.classify(1e9), PowerState::Red);
    }

    #[test]
    fn equal_thresholds_skip_yellow() {
        let t = Thresholds::new(100.0, 100.0).unwrap();
        assert_eq!(t.classify(99.0), PowerState::Green);
        assert_eq!(t.classify(100.0), PowerState::Red);
    }

    #[test]
    fn invalid_pairs_rejected() {
        assert!(Thresholds::new(200.0, 100.0).is_err());
        assert!(Thresholds::new(0.0, 100.0).is_err());
        assert!(Thresholds::new(-5.0, 100.0).is_err());
        assert!(Thresholds::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn paper_margins_give_84_and_93_percent() {
        let t = Thresholds::from_peak(1000.0, 0.16, 0.07).unwrap();
        assert!((t.p_low_w() - 840.0).abs() < 1e-9);
        assert!((t.p_high_w() - 930.0).abs() < 1e-9);
    }

    #[test]
    fn from_peak_validates_margins() {
        assert!(
            Thresholds::from_peak(1000.0, 0.07, 0.16).is_err(),
            "swapped"
        );
        assert!(Thresholds::from_peak(1000.0, 1.2, 0.07).is_err());
        assert!(Thresholds::from_peak(0.0, 0.16, 0.07).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(PowerState::Green.to_string(), "green");
        assert_eq!(PowerState::Red.to_string(), "red");
    }

    proptest! {
        /// Classification is monotone: more power never yields a "safer"
        /// state.
        #[test]
        fn prop_classification_monotone(pl in 1.0f64..1e6, gap in 0.0f64..1e5, p1 in 0.0f64..2e6, p2 in 0.0f64..2e6) {
            let t = Thresholds::new(pl, pl + gap).unwrap();
            let rank = |s: PowerState| match s {
                PowerState::Green => 0,
                PowerState::Yellow => 1,
                PowerState::Red => 2,
            };
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(rank(t.classify(lo)) <= rank(t.classify(hi)));
        }

        /// from_peak always yields valid, ordered thresholds below peak.
        #[test]
        fn prop_from_peak_ordering(peak in 1.0f64..1e7) {
            let t = Thresholds::from_peak(peak, 0.16, 0.07).unwrap();
            prop_assert!(t.p_low_w() <= t.p_high_w());
            prop_assert!(t.p_high_w() < peak);
            prop_assert!(t.p_low_w() > 0.0);
        }
    }
}
