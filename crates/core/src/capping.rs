//! Algorithm 1 — the power capping algorithm.
//!
//! Runs once per control cycle on the classified power state:
//!
//! * **Green** — increment the steady-green timer `Time_g`; once the
//!   system has stayed Green for `T_g` cycles and some nodes are still
//!   degraded, promote every degraded node one level (removing those that
//!   reach their top level from `A_degraded`) — gradual recovery that also
//!   lets the machine cool down after an excursion.
//! * **Yellow** — reset `Time_g`; ask the selection policy for `A_target`
//!   and degrade each target one level, recording it in `A_degraded`.
//!   One level at a time is deliberately mild to avoid over-correction.
//! * **Red** — reset `Time_g`; force *every* candidate node to its lowest
//!   power state. Under the Controllability assumption this is guaranteed
//!   to bring the system back under the provision capability.
//!
//! The algorithm works on any ladder height per node (heterogeneous
//! clusters), never commands a privileged node (they are not candidates),
//! never degrades below the lowest level, and never promotes above the
//! highest.

use crate::observe::SelectionContext;
use crate::policy::TargetSelectionPolicy;
use crate::state::PowerState;
use ppc_node::{Level, NodeId};
use ppc_obs::{AttrValue, SpanRecorder};
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One throttling command: set `node` to `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCommand {
    /// The commanded node.
    pub node: NodeId,
    /// The absolute level to apply.
    pub level: Level,
}

/// Read-only node facts the algorithm needs each cycle.
pub trait LevelView {
    /// The node's current power level.
    fn level_of(&self, node: NodeId) -> Level;
    /// The node's highest (unthrottled) level.
    fn highest_of(&self, node: NodeId) -> Level;
}

/// Convenience [`LevelView`] over closures.
pub struct FnLevelView<'a> {
    /// Returns a node's current level.
    pub level_of: &'a dyn Fn(NodeId) -> Level,
    /// Returns a node's highest level.
    pub highest_of: &'a dyn Fn(NodeId) -> Level,
}

impl LevelView for FnLevelView<'_> {
    fn level_of(&self, node: NodeId) -> Level {
        (self.level_of)(node)
    }
    fn highest_of(&self, node: NodeId) -> Level {
        (self.highest_of)(node)
    }
}

/// Algorithm 1's persistent state across cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CappingAlgorithm {
    /// `A_degraded`: candidate nodes currently below their top level due
    /// to capping.
    degraded: BTreeSet<NodeId>,
    /// `Time_g`: consecutive Green cycles.
    time_g: u64,
    /// `T_g`: Green cycles required before recovery starts.
    t_g: u64,
    /// Candidate-set generation `A_degraded` was last pruned against
    /// (see [`CappingAlgorithm::prune_for`]); not part of the algorithm's
    /// wire state.
    #[serde(skip)]
    pruned_gen: Option<u64>,
    /// Set by [`CappingAlgorithm::prune_for`]; consumed by the next
    /// `cycle*` call to skip its unconditional prune.
    #[serde(skip)]
    prune_done: bool,
}

impl CappingAlgorithm {
    /// Creates the algorithm with recovery patience `T_g` (in cycles).
    pub fn new(t_g: u64) -> Self {
        CappingAlgorithm {
            degraded: BTreeSet::new(),
            time_g: 0,
            t_g,
            pruned_gen: None,
            prune_done: false,
        }
    }

    /// Prunes `A_degraded` to the candidate set, memoized on the set's
    /// generation: nodes only ever enter `A_degraded` while they are
    /// candidates, and candidate membership can't change without bumping
    /// the generation — so until it moves, the prune is a no-op. The next
    /// `cycle*` call skips its own unconditional prune.
    pub fn prune_for(&mut self, candidates: &BTreeSet<NodeId>, generation: u64) {
        if self.pruned_gen != Some(generation) {
            self.degraded.retain(|n| candidates.contains(n));
            self.pruned_gen = Some(generation);
        }
        self.prune_done = true;
    }

    /// The unconditional per-cycle prune, unless [`Self::prune_for`]
    /// already covered this cycle.
    fn prune(&mut self, candidates: &BTreeSet<NodeId>) {
        if !std::mem::take(&mut self.prune_done) {
            self.degraded.retain(|n| candidates.contains(n));
            self.pruned_gen = None;
        }
    }

    /// Current `A_degraded`.
    pub fn degraded(&self) -> &BTreeSet<NodeId> {
        &self.degraded
    }

    /// Current `Time_g`.
    pub fn time_g(&self) -> u64 {
        self.time_g
    }

    /// Runs one cycle of Algorithm 1 and returns the commands to issue.
    ///
    /// `candidates` is the current `A_candidate`; membership may have
    /// changed since the last cycle, so `A_degraded` is pruned to it first
    /// (a node that left the candidate set is no longer ours to manage).
    pub fn cycle(
        &mut self,
        state: PowerState,
        ctx: &SelectionContext,
        policy: &mut dyn TargetSelectionPolicy,
        candidates: &BTreeSet<NodeId>,
        view: &dyn LevelView,
    ) -> Vec<NodeCommand> {
        self.cycle_traced(
            state,
            ctx,
            policy,
            candidates,
            view,
            SimTime::ZERO,
            &mut SpanRecorder::disabled(),
        )
    }

    /// [`CappingAlgorithm::cycle`] with span recording: Yellow wraps the
    /// policy selection in a `select` span carrying the policy name,
    /// `|A_target|` and the deficit driving it.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_traced(
        &mut self,
        state: PowerState,
        ctx: &SelectionContext,
        policy: &mut dyn TargetSelectionPolicy,
        candidates: &BTreeSet<NodeId>,
        view: &dyn LevelView,
        at: SimTime,
        spans: &mut SpanRecorder,
    ) -> Vec<NodeCommand> {
        self.prune(candidates);
        match state {
            PowerState::Green => self.green_cycle(view),
            PowerState::Yellow => self.yellow_cycle(ctx, policy, candidates, view, at, spans),
            PowerState::Red => self.red_cycle(candidates, view),
        }
    }

    /// Adopts a node into `A_degraded` without issuing a command — used
    /// when a crashed node rejoins the cluster at its lowest level: the
    /// fault path already set the level, and adoption makes steady-green
    /// recovery promote the node back up exactly like a capped one.
    pub fn adopt(&mut self, node: NodeId) {
        self.degraded.insert(node);
    }

    /// Degraded-telemetry Yellow cycle: too few candidates have fresh
    /// samples for the selection policy's savings estimates to mean
    /// anything, so instead of optimizing, degrade *every* observed
    /// degradable candidate one level. Strictly more conservative than any
    /// policy selection (the policy picks a subset of these nodes), so the
    /// capping guarantee survives telemetry loss at the cost of
    /// performance.
    pub fn conservative_yellow(
        &mut self,
        ctx: &SelectionContext,
        candidates: &BTreeSet<NodeId>,
        view: &dyn LevelView,
    ) -> Vec<NodeCommand> {
        self.prune(candidates);
        self.time_g = 0;
        let mut commands = Vec::new();
        let mut seen = BTreeSet::new();
        for job in ctx.jobs {
            for obs in &job.nodes {
                let node = obs.node;
                if !candidates.contains(&node) || !seen.insert(node) {
                    continue;
                }
                let Some(lower) = view.level_of(node).down() else {
                    continue;
                };
                commands.push(NodeCommand { node, level: lower });
                self.degraded.insert(node);
            }
        }
        commands
    }

    fn green_cycle(&mut self, view: &dyn LevelView) -> Vec<NodeCommand> {
        self.time_g += 1;
        if self.time_g < self.t_g || self.degraded.is_empty() {
            return Vec::new();
        }
        // Steady green: promote every degraded node one level.
        let mut commands = Vec::with_capacity(self.degraded.len());
        let mut recovered = Vec::new();
        for &node in &self.degraded {
            let current = view.level_of(node);
            let highest = view.highest_of(node);
            if current >= highest {
                // Already back at the top (e.g. externally reset): just
                // drop it from the degraded set.
                recovered.push(node);
                continue;
            }
            let next = current.up();
            commands.push(NodeCommand { node, level: next });
            if next >= highest {
                recovered.push(node);
            }
        }
        for node in recovered {
            self.degraded.remove(&node);
        }
        commands
    }

    fn yellow_cycle(
        &mut self,
        ctx: &SelectionContext,
        policy: &mut dyn TargetSelectionPolicy,
        candidates: &BTreeSet<NodeId>,
        view: &dyn LevelView,
        at: SimTime,
        spans: &mut SpanRecorder,
    ) -> Vec<NodeCommand> {
        self.time_g = 0;
        spans.open("select", at);
        spans.attr("policy", AttrValue::Str(policy.name()));
        spans.attr("deficit_w", AttrValue::F64(ctx.deficit_w()));
        let targets = policy.select(ctx);
        spans.attr("a_target", AttrValue::U64(targets.len() as u64));
        spans.close(at);
        let mut commands = Vec::with_capacity(targets.len());
        let mut seen = BTreeSet::new();
        for node in targets {
            // Defensive screening of policy output: must be a candidate,
            // not a duplicate, and still degradable.
            if !candidates.contains(&node) || !seen.insert(node) {
                debug_assert!(false, "policy returned invalid target {node}");
                continue;
            }
            let Some(lower) = view.level_of(node).down() else {
                // Not a policy bug: under fault injection a node's freshest
                // observation can be one control cycle stale (a dropped
                // sample right after a Red floor), so a just-floored node
                // may still look degradable to the policy. Screening it
                // out here is the contract.
                continue;
            };
            commands.push(NodeCommand { node, level: lower });
            self.degraded.insert(node);
        }
        commands
    }

    fn red_cycle(
        &mut self,
        candidates: &BTreeSet<NodeId>,
        view: &dyn LevelView,
    ) -> Vec<NodeCommand> {
        self.time_g = 0;
        // Emergency: every candidate to its lowest state, even those
        // already there (the command is idempotent; re-sending costs
        // nothing and tolerates lost earlier commands).
        let commands = candidates
            .iter()
            .map(|&node| NodeCommand {
                node,
                level: Level::LOWEST,
            })
            .collect();
        // A_degraded := A_candidate — but only nodes whose ladder has more
        // than one level can ever recover; all candidates qualify by the
        // Controllability assumption.
        self.degraded = candidates
            .iter()
            .copied()
            .filter(|&n| view.highest_of(n) > Level::LOWEST)
            .collect();
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::testutil::{ctx, jobs_obs, nobs};
    use crate::policy::PolicyKind;
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    /// Mutable level store standing in for the cluster.
    struct Levels {
        map: RefCell<BTreeMap<NodeId, Level>>,
        highest: Level,
    }

    impl Levels {
        fn new(nodes: &[u32], highest: u8) -> Self {
            Levels {
                map: RefCell::new(
                    nodes
                        .iter()
                        .map(|&n| (NodeId(n), Level::new(highest)))
                        .collect(),
                ),
                highest: Level::new(highest),
            }
        }
        fn apply(&self, commands: &[NodeCommand]) {
            let mut map = self.map.borrow_mut();
            for c in commands {
                map.insert(c.node, c.level);
            }
        }
        fn level(&self, n: u32) -> Level {
            self.map.borrow()[&NodeId(n)]
        }
    }

    impl LevelView for Levels {
        fn level_of(&self, node: NodeId) -> Level {
            self.map.borrow()[&node]
        }
        fn highest_of(&self, _node: NodeId) -> Level {
            self.highest
        }
    }

    fn cands(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn yellow_degrades_policy_targets_one_level() {
        let levels = Levels::new(&[0, 1, 2], 9);
        let mut alg = CappingAlgorithm::new(10);
        let mut policy = PolicyKind::Mpc.build();
        let c = ctx(
            vec![jobs_obs(
                1,
                vec![nobs(0, 9, 300.0), nobs(1, 9, 300.0)],
                None,
            )],
            1_100.0,
            1_000.0,
        );
        let commands = alg.cycle(
            PowerState::Yellow,
            &c,
            policy.as_mut(),
            &cands(&[0, 1, 2]),
            &levels,
        );
        levels.apply(&commands);
        assert_eq!(commands.len(), 2);
        assert_eq!(levels.level(0), Level::new(8));
        assert_eq!(levels.level(1), Level::new(8));
        assert_eq!(levels.level(2), Level::new(9), "non-target untouched");
        assert_eq!(alg.degraded().len(), 2);
        assert_eq!(alg.time_g(), 0);
    }

    #[test]
    fn red_forces_all_candidates_to_lowest() {
        let levels = Levels::new(&[0, 1, 2, 3], 9);
        let mut alg = CappingAlgorithm::new(10);
        let mut policy = PolicyKind::Hri.build();
        let c = ctx(vec![], 2_000.0, 1_000.0);
        let commands = alg.cycle(
            PowerState::Red,
            &c,
            policy.as_mut(),
            &cands(&[0, 1, 2]),
            &levels,
        );
        levels.apply(&commands);
        assert_eq!(commands.len(), 3);
        for n in [0, 1, 2] {
            assert_eq!(levels.level(n), Level::LOWEST);
        }
        assert_eq!(levels.level(3), Level::new(9), "non-candidate untouched");
        assert_eq!(alg.degraded().len(), 3);
    }

    #[test]
    fn green_recovery_waits_for_t_g_then_steps_up() {
        let levels = Levels::new(&[0], 2);
        let mut alg = CappingAlgorithm::new(3);
        let mut policy = PolicyKind::Mpc.build();
        let cand = cands(&[0]);
        // Degrade twice via red.
        let c_red = ctx(vec![], 9_999.0, 1_000.0);
        let cmds = alg.cycle(PowerState::Red, &c_red, policy.as_mut(), &cand, &levels);
        levels.apply(&cmds);
        assert_eq!(levels.level(0), Level::new(0));

        let c_green = ctx(vec![], 1.0, 1_000.0);
        // Two green cycles: below T_g, nothing happens.
        for expected_tg in [1, 2] {
            let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
            assert!(cmds.is_empty());
            assert_eq!(alg.time_g(), expected_tg);
        }
        // Third green cycle: promote 0 → 1.
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        levels.apply(&cmds);
        assert_eq!(levels.level(0), Level::new(1));
        assert_eq!(alg.degraded().len(), 1, "not yet at top");
        // Fourth green cycle: promote 1 → 2 (top) and forget the node.
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        levels.apply(&cmds);
        assert_eq!(levels.level(0), Level::new(2));
        assert!(alg.degraded().is_empty());
        // Fifth: nothing left to do.
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        assert!(cmds.is_empty());
    }

    #[test]
    fn yellow_resets_green_timer() {
        let levels = Levels::new(&[0], 9);
        let mut alg = CappingAlgorithm::new(5);
        let mut policy = PolicyKind::Mpc.build();
        let cand = cands(&[0]);
        let c_green = ctx(vec![], 1.0, 1_000.0);
        for _ in 0..3 {
            alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        }
        assert_eq!(alg.time_g(), 3);
        let c_yellow = ctx(
            vec![jobs_obs(1, vec![nobs(0, 9, 300.0)], None)],
            1_100.0,
            1_000.0,
        );
        let cmds = alg.cycle(
            PowerState::Yellow,
            &c_yellow,
            policy.as_mut(),
            &cand,
            &levels,
        );
        levels.apply(&cmds);
        assert_eq!(alg.time_g(), 0);
    }

    #[test]
    fn degraded_set_prunes_nodes_leaving_candidates() {
        let levels = Levels::new(&[0, 1], 9);
        let mut alg = CappingAlgorithm::new(1);
        let mut policy = PolicyKind::Mpc.build();
        let c_red = ctx(vec![], 9_999.0, 1_000.0);
        let cmds = alg.cycle(
            PowerState::Red,
            &c_red,
            policy.as_mut(),
            &cands(&[0, 1]),
            &levels,
        );
        levels.apply(&cmds);
        assert_eq!(alg.degraded().len(), 2);
        // Node 1 becomes privileged (leaves the candidate set).
        let c_green = ctx(vec![], 1.0, 1_000.0);
        let cmds = alg.cycle(
            PowerState::Green,
            &c_green,
            policy.as_mut(),
            &cands(&[0]),
            &levels,
        );
        assert!(alg.degraded().iter().all(|&n| n == NodeId(0)));
        // Only node 0 gets a recovery command.
        assert!(cmds.iter().all(|c| c.node == NodeId(0)));
    }

    #[test]
    fn externally_restored_node_is_dropped_without_command() {
        let levels = Levels::new(&[0], 9);
        let mut alg = CappingAlgorithm::new(1);
        let mut policy = PolicyKind::Mpc.build();
        let cand = cands(&[0]);
        let c_yellow = ctx(
            vec![jobs_obs(1, vec![nobs(0, 9, 300.0)], None)],
            1_100.0,
            1_000.0,
        );
        let cmds = alg.cycle(
            PowerState::Yellow,
            &c_yellow,
            policy.as_mut(),
            &cand,
            &levels,
        );
        levels.apply(&cmds);
        assert_eq!(alg.degraded().len(), 1);
        // An operator resets the node to top level out-of-band.
        levels.apply(&[NodeCommand {
            node: NodeId(0),
            level: Level::new(9),
        }]);
        let c_green = ctx(vec![], 1.0, 1_000.0);
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        assert!(cmds.is_empty());
        assert!(alg.degraded().is_empty());
    }

    #[test]
    fn adopted_node_recovers_via_green_cycles() {
        let levels = Levels::new(&[0, 1], 2);
        // Node 0 rejoined after a crash at the lowest level.
        levels.apply(&[NodeCommand {
            node: NodeId(0),
            level: Level::LOWEST,
        }]);
        let mut alg = CappingAlgorithm::new(1);
        alg.adopt(NodeId(0));
        let mut policy = PolicyKind::Mpc.build();
        let cand = cands(&[0, 1]);
        let c_green = ctx(vec![], 1.0, 1_000.0);
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        levels.apply(&cmds);
        assert_eq!(levels.level(0), Level::new(1), "adopted node promoted");
        assert_eq!(levels.level(1), Level::new(2), "untouched");
        let cmds = alg.cycle(PowerState::Green, &c_green, policy.as_mut(), &cand, &levels);
        levels.apply(&cmds);
        assert_eq!(levels.level(0), Level::new(2));
        assert!(alg.degraded().is_empty());
    }

    #[test]
    fn conservative_yellow_degrades_every_observed_candidate() {
        let levels = Levels::new(&[0, 1, 2, 3], 9);
        let mut alg = CappingAlgorithm::new(10);
        // Job spans nodes 0-2; node 3 idle, node 2 not a candidate.
        let c = ctx(
            vec![jobs_obs(
                1,
                vec![nobs(0, 9, 300.0), nobs(1, 9, 300.0), nobs(2, 9, 300.0)],
                None,
            )],
            1_100.0,
            1_000.0,
        );
        let commands = alg.conservative_yellow(&c, &cands(&[0, 1, 3]), &levels);
        levels.apply(&commands);
        assert_eq!(commands.len(), 2, "all observed candidates, nothing else");
        assert_eq!(levels.level(0), Level::new(8));
        assert_eq!(levels.level(1), Level::new(8));
        assert_eq!(levels.level(2), Level::new(9), "non-candidate untouched");
        assert_eq!(levels.level(3), Level::new(9), "idle node untouched");
        assert_eq!(alg.degraded().len(), 2);
        assert_eq!(alg.time_g(), 0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Drives the algorithm through an arbitrary state sequence on a
        /// mutable level store, checking the structural invariants after
        /// every cycle.
        fn drive(states: Vec<u8>, n_nodes: u32, highest: u8) {
            let levels = Levels::new(&(0..n_nodes).collect::<Vec<_>>(), highest);
            let cand = cands(&(0..n_nodes).collect::<Vec<_>>());
            let mut alg = CappingAlgorithm::new(3);
            let mut policy = PolicyKind::MpcC.build();
            for code in states {
                let state = match code % 3 {
                    0 => PowerState::Green,
                    1 => PowerState::Yellow,
                    _ => PowerState::Red,
                };
                // Build a context reflecting the *current* levels so the
                // policy only sees degradable nodes.
                let nodes: Vec<crate::observe::NodeObservation> = (0..n_nodes)
                    .map(|i| {
                        let l = levels.level(i);
                        crate::observe::NodeObservation {
                            node: NodeId(i),
                            level: l,
                            power_w: 200.0 + i as f64,
                            saving_w: if l > Level::LOWEST { 10.0 } else { 0.0 },
                        }
                    })
                    .collect();
                let c = ctx(vec![jobs_obs(1, nodes, None)], 1_100.0, 1_000.0);
                let commands = alg.cycle(state, &c, policy.as_mut(), &cand, &levels);
                // Invariants on the issued commands.
                for cmd in &commands {
                    assert!(cand.contains(&cmd.node), "command to non-candidate");
                    assert!(cmd.level.index() <= highest as usize, "level off ladder");
                    match state {
                        PowerState::Yellow => {
                            assert_eq!(
                                cmd.level.index() + 1,
                                levels.level(cmd.node.0).index(),
                                "yellow degrades exactly one level"
                            );
                        }
                        PowerState::Red => assert_eq!(cmd.level, Level::LOWEST),
                        PowerState::Green => {
                            assert_eq!(
                                cmd.level.index(),
                                levels.level(cmd.node.0).index() + 1,
                                "green promotes exactly one level"
                            );
                        }
                    }
                }
                levels.apply(&commands);
                // A_degraded ⊆ candidates, and every degraded node is
                // actually below its top level (or about to recover).
                for &d in alg.degraded() {
                    assert!(cand.contains(&d));
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_invariants_hold_over_random_state_sequences(
                states in proptest::collection::vec(0u8..3, 1..60),
                n_nodes in 1u32..12,
                highest in 1u8..10,
            ) {
                drive(states, n_nodes, highest);
            }
        }
    }

    #[test]
    fn empty_candidate_set_is_inert() {
        let levels = Levels::new(&[], 9);
        let mut alg = CappingAlgorithm::new(1);
        let mut policy = PolicyKind::MpcC.build();
        let none = BTreeSet::new();
        for state in [PowerState::Green, PowerState::Yellow, PowerState::Red] {
            let cmds = alg.cycle(
                state,
                &ctx(vec![], 5_000.0, 1_000.0),
                policy.as_mut(),
                &none,
                &levels,
            );
            assert!(cmds.is_empty(), "{state}");
        }
    }
}
