//! The hierarchical control plane: facility → row → rack sub-managers.
//!
//! The paper's manager is flat — one collector and one capping loop over
//! every node — which stops scaling long before 100k nodes. This module
//! delegates instead: the facility budget (`P_provision`) is cut across
//! rows, each row's cut across its racks, and **each rack runs the
//! paper's full flat control stack** ([`PowerManager`]: learner,
//! Algorithm 1, the seven node-scoped policies) against its delegated
//! budget. Classification rolls back up the tree each cycle — the
//! facility is Yellow/Red when any rack's rollup is — and sibling
//! headroom is re-delegated every control cycle through
//! [`crate::budget::delegate_with_headroom`], so an idle rack's slack
//! flows to a pressed one instead of sitting stranded.
//!
//! Conservation is structural: both delegation stages go through
//! [`crate::budget::split_proportional`], whose output satisfies the
//! sequential draw-down invariant of [`crate::budget::conserves_budget`]
//! exactly — Σ rack budgets ≤ row budget ≤ facility budget at every
//! cycle, bit for bit, including under fault churn (a dead rack's online
//! weight is exactly zero, so its budget drains back to the row and its
//! siblings absorb the headroom).
//!
//! **Flat equivalence.** On a [`Topology::single_rack`] the hierarchy is
//! a pure passthrough: the lone rack's budget is the facility budget bit
//! for bit (single-child split is exact), [`HierarchicalManager::delegate`]
//! never moves it, and every query (`stats`, `thresholds`, `in_training`)
//! forwards to the one sub-manager. A single-rack hierarchical run is
//! therefore *bit-identical* to the flat manager on all four determinism
//! fingerprints — the property `determinism_gate` pins in CI.

use crate::budget::{conserves_budget, delegate_with_headroom, is_positive, split_proportional};
use crate::config::ManagerConfig;
use crate::error::CoreError;
use crate::manager::{CycleOutcome, ManagerStats, PowerManager};
use crate::policy::PolicyKind;
use crate::sets::NodeSets;
use crate::state::{PowerState, Thresholds};
use crate::topology::Topology;
use ppc_node::NodeId;
use std::collections::BTreeSet;

/// Fraction of a sibling's surplus headroom offered to the lending pool
/// each cycle. Half-speed lending damps oscillation: a rack whose demand
/// collapses returns its slack over a few cycles instead of slamming the
/// budget back and forth between siblings.
const LEND_FRACTION: f64 = 0.5;

/// What one delegation pass changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelegationOutcome {
    /// Racks whose delegated budget changed (bitwise) this pass.
    pub changed: u32,
    /// Racks whose budget drained to zero this pass (all nodes offline;
    /// their headroom was reclaimed by siblings).
    pub drained: Vec<u32>,
}

/// The facility-level hierarchical power manager.
///
/// Owns one [`PowerManager`] per rack plus the facility-wide node
/// classification mirror, and moves budgets between them each control
/// cycle. `Clone` so what-if snapshots can branch the whole tree.
#[derive(Clone)]
pub struct HierarchicalManager {
    topology: Topology,
    config: ManagerConfig,
    /// Facility-wide classification mirror (the union of every rack's
    /// sets): the simulator samples work-lists and computes global
    /// coverage against this, exactly as it would against a flat manager.
    global_sets: NodeSets,
    subs: Vec<PowerManager>,
    node_weight_w: Vec<f64>,
    rack_budget_w: Vec<f64>,
    row_budget_w: Vec<f64>,
    /// Σ online node weights per rack, maintained incrementally (O(1) per
    /// down/up edge) and forced to exactly `0.0` when a rack empties so
    /// float residue can never keep a dead rack funded.
    rack_online_weight_w: Vec<f64>,
    rack_online_count: Vec<u32>,
    stats: ManagerStats,
    last_conservative_total: u64,
    last_rack_states: Vec<PowerState>,
    facility_thresholds: Thresholds,
}

impl HierarchicalManager {
    /// Builds the tree: facility budget split weight-proportionally over
    /// rows then racks, one flat [`PowerManager`] per rack scoped to its
    /// contiguous node range. `node_weight_w[i]` is node `i`'s share
    /// weight (its theoretical max draw). Every rack must come up funded.
    pub fn new(
        config: ManagerConfig,
        topology: Topology,
        privileged: &BTreeSet<NodeId>,
        node_weight_w: Vec<f64>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if node_weight_w.len() != topology.node_count() as usize {
            return Err(CoreError::InvalidConfig(format!(
                "{} node weights for a {}-node topology",
                node_weight_w.len(),
                topology.node_count()
            )));
        }
        if let Some(&w) = node_weight_w.iter().find(|&&w| !is_positive(w)) {
            return Err(CoreError::InvalidConfig(format!(
                "node weights must be positive and finite, got {w}"
            )));
        }
        let racks = topology.racks();
        let mut rack_weight_w = vec![0.0f64; racks];
        let mut rack_online_count = vec![0u32; racks];
        for (r, w) in rack_weight_w.iter_mut().enumerate() {
            let range = topology.rack_nodes(r);
            rack_online_count[r] = range.len() as u32;
            // Dense index-order fold over the rack's contiguous id range.
            *w = node_weight_w[range.start as usize..range.end as usize]
                .iter()
                .sum();
        }
        let (row_budget_w, rack_budget_w) =
            split_two_stage(config.p_provision_w, &topology, &rack_weight_w);
        if let Some(r) = rack_budget_w.iter().position(|&b| !is_positive(b)) {
            return Err(CoreError::InvalidConfig(format!(
                "rack {r} starts with no delegated budget"
            )));
        }

        let global_sets = NodeSets::new(
            (0..topology.node_count()).map(NodeId),
            privileged.iter().copied(),
        );
        let mut subs = Vec::with_capacity(racks);
        for (r, &budget) in rack_budget_w.iter().enumerate() {
            let range = topology.rack_nodes(r);
            let rack_privileged: Vec<NodeId> = privileged
                .iter()
                .copied()
                .filter(|n| range.contains(&n.0))
                .collect();
            let sets = NodeSets::new(range.map(NodeId), rack_privileged);
            let sub_config = ManagerConfig {
                p_provision_w: budget,
                ..config
            };
            subs.push(PowerManager::new(sub_config, sets)?);
        }
        let facility_thresholds =
            Thresholds::from_peak(config.p_provision_w, config.low_margin, config.high_margin)?;
        Ok(HierarchicalManager {
            topology,
            config,
            global_sets,
            subs,
            node_weight_w,
            rack_budget_w,
            row_budget_w,
            rack_online_weight_w: rack_weight_w,
            rack_online_count,
            stats: ManagerStats::default(),
            last_conservative_total: 0,
            last_rack_states: vec![PowerState::Green; racks],
            facility_thresholds,
        })
    }

    /// True on the degenerate one-rack topology (flat passthrough mode).
    pub fn is_single_rack(&self) -> bool {
        self.topology.is_single_rack()
    }

    /// The facility topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The facility-level configuration (its `p_provision_w` is the root
    /// budget delegated down the tree).
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// The facility-wide classification mirror.
    pub fn sets(&self) -> &NodeSets {
        &self.global_sets
    }

    /// The per-rack sub-managers, rack order.
    pub fn subs(&self) -> &[PowerManager] {
        &self.subs
    }

    /// The per-rack sub-managers, mutable.
    pub fn subs_mut(&mut self) -> &mut [PowerManager] {
        &mut self.subs
    }

    /// Current delegated budget per rack, watts.
    pub fn rack_budget_w(&self) -> &[f64] {
        &self.rack_budget_w
    }

    /// Current delegated budget per row, watts.
    pub fn row_budget_w(&self) -> &[f64] {
        &self.row_budget_w
    }

    /// Each rack's classified state on the most recent rolled-up cycle.
    pub fn last_rack_states(&self) -> &[PowerState] {
        &self.last_rack_states
    }

    /// Facility-level statistics. On a single-rack topology this *is* the
    /// lone sub-manager's view (flat equivalence); on a real tree it is
    /// the rolled-up facility view.
    pub fn stats(&self) -> ManagerStats {
        if self.is_single_rack() {
            self.subs[0].stats()
        } else {
            self.stats
        }
    }

    /// Facility-level thresholds: the lone rack's learned pair on a
    /// single-rack topology, the static pair derived from the facility
    /// provision on a real tree (rack learners adjust locally against
    /// their delegated budgets; the facility classifies the rollup).
    pub fn thresholds(&self) -> Thresholds {
        if self.is_single_rack() {
            self.subs[0].thresholds()
        } else {
            self.facility_thresholds
        }
    }

    /// True while rack 0's learner is still in its training period (all
    /// racks share the training schedule; they start together).
    pub fn in_training(&self) -> bool {
        self.subs[0].learner().in_training()
    }

    /// Marks `node` privileged/unprivileged in the facility mirror and in
    /// its owning rack.
    pub fn set_privileged(&mut self, node: NodeId, privileged: bool) {
        self.global_sets.set_privileged(node, privileged);
        let r = self.topology.rack_of(node);
        self.subs[r].sets_mut().set_privileged(node, privileged);
    }

    /// Routes a crash to the owning rack and maintains the rack's online
    /// weight so the next delegation pass reclaims the node's share.
    pub fn note_node_down(&mut self, node: NodeId) {
        if self.global_sets.offline().contains(&node) {
            return;
        }
        self.global_sets.set_offline(node, true);
        let r = self.topology.rack_of(node);
        self.subs[r].note_node_down(node);
        self.rack_online_count[r] -= 1;
        if self.rack_online_count[r] == 0 {
            // Exactly zero: no float residue may keep a dead rack funded.
            self.rack_online_weight_w[r] = 0.0;
        } else {
            self.rack_online_weight_w[r] -= self.node_weight_w[node.0 as usize];
        }
    }

    /// Routes a reboot to the owning rack and restores its weight share.
    pub fn note_node_rejoined(&mut self, node: NodeId) {
        if !self.global_sets.offline().contains(&node) {
            return;
        }
        self.global_sets.set_offline(node, false);
        let r = self.topology.rack_of(node);
        self.subs[r].note_node_rejoined(node);
        self.rack_online_count[r] += 1;
        self.rack_online_weight_w[r] += self.node_weight_w[node.0 as usize];
    }

    /// Swaps the target-selection policy on every rack.
    pub fn set_policy(&mut self, kind: PolicyKind) {
        self.config.policy = kind;
        for sub in &mut self.subs {
            sub.set_policy(kind);
        }
    }

    /// Changes the facility provision capability in place (what-if
    /// "raise/lower the cap"). The new budget is re-split weight-only
    /// down the tree and changed racks are reprovisioned; the next
    /// delegation pass resumes demand-aware headroom movement.
    pub fn reprovision(&mut self, p_provision_w: f64) -> Result<(), CoreError> {
        if self.is_single_rack() {
            self.subs[0].reprovision(p_provision_w)?;
            self.config.p_provision_w = p_provision_w;
            self.facility_thresholds = Thresholds::from_peak(
                p_provision_w,
                self.config.low_margin,
                self.config.high_margin,
            )?;
            return Ok(());
        }
        self.facility_thresholds = Thresholds::from_peak(
            p_provision_w,
            self.config.low_margin,
            self.config.high_margin,
        )?;
        self.config.p_provision_w = p_provision_w;
        let (row_budget_w, rack_budget_w) =
            split_two_stage(p_provision_w, &self.topology, &self.rack_online_weight_w);
        self.adopt_budgets(row_budget_w, rack_budget_w);
        Ok(())
    }

    /// One delegation pass: re-cut the facility budget facility → rows →
    /// racks from current online weights and rack power demands, lending
    /// surplus headroom between siblings, and reprovision the racks whose
    /// budget moved. `rack_demand_w[r]` is rack `r`'s current true power.
    ///
    /// Serial and purely a function of manager state — the call sits on
    /// the simulator's single-threaded control path, so the budget
    /// trajectory is identical at every worker-pool width. On a
    /// single-rack topology this is a no-op (flat equivalence).
    pub fn delegate(&mut self, rack_demand_w: &[f64]) -> DelegationOutcome {
        debug_assert_eq!(rack_demand_w.len(), self.topology.racks());
        if self.is_single_rack() {
            return DelegationOutcome::default();
        }
        let rows = self.topology.rows();
        // Stage 1: facility → rows. A row's weight/demand is the sum over
        // its racks (dense index-order folds over contiguous rack ranges).
        let mut row_weight_w = vec![0.0f64; rows];
        let mut row_demand_w = vec![0.0f64; rows];
        for row in 0..rows {
            let racks = self.topology.row_racks(row);
            row_weight_w[row] = self.rack_online_weight_w[racks.clone()].iter().sum();
            row_demand_w[row] = rack_demand_w[racks].iter().sum();
        }
        let row_budget_w = delegate_with_headroom(
            self.config.p_provision_w,
            &row_weight_w,
            &row_demand_w,
            self.config.low_margin,
            LEND_FRACTION,
        );
        // Stage 2: each row → its racks.
        let mut rack_budget_w = vec![0.0f64; self.topology.racks()];
        for (row, &budget) in row_budget_w.iter().enumerate() {
            let racks = self.topology.row_racks(row);
            let shares = delegate_with_headroom(
                budget,
                &self.rack_online_weight_w[racks.clone()],
                &rack_demand_w[racks.clone()],
                self.config.low_margin,
                LEND_FRACTION,
            );
            rack_budget_w[racks].copy_from_slice(&shares);
        }
        debug_assert!(conserves_budget(self.config.p_provision_w, &row_budget_w));
        self.adopt_budgets(row_budget_w, rack_budget_w)
    }

    /// Installs freshly cut budgets, reprovisioning every rack whose
    /// budget moved and recording drains (funded → unfunded).
    fn adopt_budgets(
        &mut self,
        row_budget_w: Vec<f64>,
        rack_budget_w: Vec<f64>,
    ) -> DelegationOutcome {
        let mut outcome = DelegationOutcome::default();
        for (r, (&new_w, old_w)) in rack_budget_w
            .iter()
            .zip(&mut self.rack_budget_w)
            .enumerate()
        {
            if new_w.to_bits() == old_w.to_bits() {
                continue;
            }
            if new_w > 0.0 {
                let sub = &mut self.subs[r];
                // ppc-lint: allow(panic-path): new_w > 0 is exactly reprovision's precondition
                sub.reprovision(new_w).expect("positive reprovision");
                outcome.changed += 1;
            } else if *old_w > 0.0 {
                // Rack fully drained: its nodes are all offline, so its
                // sub-manager runs no meaningful cycles until a rejoin
                // refunds it. Siblings have already absorbed the share.
                outcome.drained.push(r as u32);
            }
            *old_w = new_w;
        }
        self.row_budget_w = row_budget_w;
        outcome
    }

    /// Rolls per-rack cycle outcomes (rack order) up into the facility
    /// view: worst rack state wins, commands concatenate in rack order,
    /// facility thresholds stand in for the per-rack pairs. Updates the
    /// facility statistics. Serial, called after the sharded fan-out
    /// joins — the rollup never sees scheduling order.
    pub fn rollup(&mut self, outcomes: Vec<CycleOutcome>) -> CycleOutcome {
        debug_assert_eq!(outcomes.len(), self.subs.len());
        let mut state = PowerState::Green;
        let mut commands = Vec::new();
        let mut adjusted = false;
        for (outcome, last) in outcomes.into_iter().zip(&mut self.last_rack_states) {
            if severity(outcome.state) > severity(state) {
                state = outcome.state;
            }
            adjusted |= outcome.thresholds_adjusted;
            *last = outcome.state;
            commands.extend(outcome.commands);
        }
        self.stats.cycles += 1;
        match state {
            PowerState::Green => self.stats.green_cycles += 1,
            PowerState::Yellow => self.stats.yellow_cycles += 1,
            PowerState::Red => self.stats.red_cycles += 1,
        }
        self.stats.commands_issued += commands.len() as u64;
        self.stats.threshold_adjustments += u64::from(adjusted);
        // A facility cycle is conservative if any rack ran conservative
        // this cycle: detected as movement in the summed rack counters.
        let conservative_total: u64 = self
            .subs
            .iter()
            .map(|s| s.stats().conservative_cycles)
            .sum();
        self.stats.conservative_cycles +=
            u64::from(conservative_total > self.last_conservative_total);
        self.last_conservative_total = conservative_total;
        CycleOutcome {
            state,
            commands,
            thresholds: self.facility_thresholds,
            thresholds_adjusted: adjusted,
        }
    }
}

impl std::fmt::Debug for HierarchicalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchicalManager")
            .field("topology", &self.topology)
            .field("racks", &self.subs.len())
            .field("rack_budget_w", &self.rack_budget_w)
            .finish_non_exhaustive()
    }
}

/// Green < Yellow < Red for the rollup's worst-state fold.
fn severity(state: PowerState) -> u8 {
    match state {
        PowerState::Green => 0,
        PowerState::Yellow => 1,
        PowerState::Red => 2,
    }
}

/// Weight-only two-stage cut: facility → rows → racks. Used at
/// construction and reprovision, before any demand telemetry exists.
fn split_two_stage(
    facility_w: f64,
    topology: &Topology,
    rack_weight_w: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let rows = topology.rows();
    let mut row_weight_w = vec![0.0f64; rows];
    for (row, w) in row_weight_w.iter_mut().enumerate() {
        *w = rack_weight_w[topology.row_racks(row)].iter().sum();
    }
    let row_budget_w = split_proportional(facility_w, &row_weight_w);
    let mut rack_budget_w = vec![0.0f64; topology.racks()];
    for (row, &budget) in row_budget_w.iter().enumerate() {
        let racks = topology.row_racks(row);
        let shares = split_proportional(budget, &rack_weight_w[racks.clone()]);
        rack_budget_w[racks].copy_from_slice(&shares);
    }
    (row_budget_w, rack_budget_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capping::LevelView;
    use ppc_node::Level;

    struct FlatView(Level, Level);
    impl LevelView for FlatView {
        fn level_of(&self, _: NodeId) -> Level {
            self.0
        }
        fn highest_of(&self, _: NodeId) -> Level {
            self.1
        }
    }

    fn hier(nodes: u32, per_rack: u32, per_row: u32, provision_w: f64) -> HierarchicalManager {
        let topology = Topology::new(nodes, per_rack, per_row).unwrap();
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(provision_w, PolicyKind::Mpc)
        };
        let weights = vec![250.0; nodes as usize];
        HierarchicalManager::new(config, topology, &BTreeSet::new(), weights).unwrap()
    }

    #[test]
    fn construction_splits_budget_conservingly() {
        let h = hier(16, 4, 2, 4_000.0);
        assert_eq!(h.subs().len(), 4);
        assert!(conserves_budget(4_000.0, h.rack_budget_w()));
        assert!(conserves_budget(4_000.0, h.row_budget_w()));
        for (r, sub) in h.subs().iter().enumerate() {
            assert_eq!(sub.config().p_provision_w, h.rack_budget_w()[r]);
            assert_eq!(sub.sets().total().len(), 4);
        }
    }

    #[test]
    fn single_rack_owns_facility_budget_bitwise() {
        let h = hier(8, 8, 1, 2_345.678);
        assert!(h.is_single_rack());
        assert_eq!(h.rack_budget_w()[0].to_bits(), 2_345.678f64.to_bits());
        // Delegation never moves it.
        let mut h = h;
        let out = h.delegate(&[9_999.0]);
        assert_eq!(out, DelegationOutcome::default());
        assert_eq!(h.rack_budget_w()[0].to_bits(), 2_345.678f64.to_bits());
    }

    #[test]
    fn delegation_lends_headroom_toward_demand() {
        let mut h = hier(16, 4, 2, 4_000.0);
        let base = h.rack_budget_w().to_vec();
        // Rack 0 pressed, others idle: rack 0's budget must grow.
        let out = h.delegate(&[1_200.0, 50.0, 50.0, 50.0]);
        assert!(out.changed > 0);
        assert!(h.rack_budget_w()[0] > base[0]);
        assert!(conserves_budget(4_000.0, h.row_budget_w()));
        for row in 0..2 {
            assert!(conserves_budget(
                h.row_budget_w()[row],
                &h.rack_budget_w()[row * 2..row * 2 + 2]
            ));
        }
    }

    #[test]
    fn dead_rack_drains_and_rejoin_refunds() {
        let mut h = hier(8, 2, 2, 2_000.0);
        for n in [NodeId(2), NodeId(3)] {
            h.note_node_down(n);
        }
        assert_eq!(h.rack_online_weight_w[1].to_bits(), 0.0f64.to_bits());
        let out = h.delegate(&[400.0, 0.0, 400.0, 400.0]);
        assert_eq!(out.drained, vec![1]);
        assert!(h.rack_budget_w()[1] <= 0.0);
        assert!(conserves_budget(2_000.0, h.row_budget_w()));
        // Rejoin refunds the rack on the next pass.
        h.note_node_rejoined(NodeId(2));
        let _ = h.delegate(&[400.0, 100.0, 400.0, 400.0]);
        assert!(h.rack_budget_w()[1] > 0.0);
    }

    #[test]
    fn down_up_routing_is_idempotent() {
        let mut h = hier(8, 4, 1, 2_000.0);
        let w0 = h.rack_online_weight_w[0];
        h.note_node_down(NodeId(1));
        h.note_node_down(NodeId(1)); // duplicate edge: ignored
        assert_eq!(h.rack_online_count[0], 3);
        h.note_node_rejoined(NodeId(1));
        h.note_node_rejoined(NodeId(1));
        assert_eq!(h.rack_online_count[0], 4);
        assert!((h.rack_online_weight_w[0] - w0).abs() < 1e-9);
        assert!(!h.sets().offline().contains(&NodeId(1)));
    }

    #[test]
    fn rollup_takes_worst_state_and_concatenates_commands() {
        let mut h = hier(16, 4, 2, 4_000.0);
        let view = FlatView(Level::new(9), Level::new(9));
        let mut outcomes = Vec::new();
        // Rack 0 far over its ~1000 W budget → Red; others idle → Green.
        for (r, sub) in h.subs_mut().iter_mut().enumerate() {
            let power = if r == 0 { 3_000.0 } else { 100.0 };
            outcomes.push(sub.control_cycle(power, &[], &view));
        }
        let rolled = h.rollup(outcomes);
        assert_eq!(rolled.state, PowerState::Red);
        assert_eq!(rolled.commands.len(), 4, "rack 0 floors its 4 nodes");
        assert_eq!(h.last_rack_states()[0], PowerState::Red);
        assert_eq!(h.last_rack_states()[1], PowerState::Green);
        assert_eq!(h.stats().cycles, 1);
        assert_eq!(h.stats().red_cycles, 1);
        assert_eq!(h.stats().commands_issued, 4);
    }

    #[test]
    fn reprovision_resplits_the_tree() {
        let mut h = hier(16, 4, 2, 4_000.0);
        h.reprovision(2_000.0).unwrap();
        assert!(conserves_budget(2_000.0, h.row_budget_w()));
        let total: f64 = h.rack_budget_w().iter().sum();
        assert!((total - 2_000.0).abs() < 1e-9);
        for (r, sub) in h.subs().iter().enumerate() {
            assert_eq!(sub.config().p_provision_w, h.rack_budget_w()[r]);
        }
        assert!(h.reprovision(-5.0).is_err());
    }

    #[test]
    fn privileged_routing_reaches_the_owning_rack() {
        let mut h = hier(8, 4, 1, 2_000.0);
        h.set_privileged(NodeId(5), true);
        assert!(h.sets().privileged().contains(&NodeId(5)));
        assert!(h.subs()[1].sets().privileged().contains(&NodeId(5)));
        assert!(!h.subs()[0].sets().privileged().contains(&NodeId(5)));
        h.set_privileged(NodeId(5), false);
        assert!(!h.subs()[1].sets().privileged().contains(&NodeId(5)));
    }

    #[test]
    fn bad_construction_is_rejected() {
        let topology = Topology::new(4, 2, 1).unwrap();
        let config = ManagerConfig::paper_defaults(1_000.0, PolicyKind::Mpc);
        // Wrong weight count.
        assert!(
            HierarchicalManager::new(config, topology, &BTreeSet::new(), vec![250.0; 3]).is_err()
        );
        // Nonpositive weight.
        assert!(HierarchicalManager::new(
            config,
            topology,
            &BTreeSet::new(),
            vec![250.0, 250.0, 0.0, 250.0]
        )
        .is_err());
    }
}
