//! Criterion bench: the simulation substrate's event queue and RNG.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppc_simkit::{DetRng, EventQueue, SimTime};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k_random_times", |b| {
        let mut rng = DetRng::seed_from_u64(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
    group.bench_function("push_pop_10k_fifo_ties", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let t = SimTime::from_secs(1);
            for i in 0..10_000 {
                q.push(t, i);
            }
            let mut acc = 0usize;
            while let Some((_, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("xoshiro_100k_u64", |b| {
        let mut rng = DetRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(rng.next_u64_raw());
            }
            black_box(acc)
        })
    });
    group.bench_function("normal_100k", |b| {
        let mut rng = DetRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.standard_normal();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
