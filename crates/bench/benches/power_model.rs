//! Criterion bench: Formula-(1) power-model evaluation.
//!
//! The model is evaluated once per node per sampling interval by the node
//! simulation, once per sample by the agents, and once per candidate node
//! by the `P'(x)` estimator — it is the hottest leaf of the whole system.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppc_node::spec::NodeSpec;
use ppc_node::{Level, OperatingState};

fn bench_power_model(c: &mut Criterion) {
    let spec = NodeSpec::tianhe_1a();
    let model = spec.power_model(1.0);
    let states: Vec<OperatingState> = (0..1024)
        .map(|i| OperatingState {
            cpu_util: (i % 100) as f64 / 100.0,
            mem_used_bytes: (i as u64 % 24) << 30,
            nic_bytes: (i as u64 * 7_919) % 5_000_000_000,
        })
        .collect();

    let mut group = c.benchmark_group("power_model");
    group.throughput(Throughput::Elements(states.len() as u64));
    group.bench_function("power_w_1024_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, s) in states.iter().enumerate() {
                acc += model.power_w(Level::new((i % 10) as u8), black_box(s));
            }
            black_box(acc)
        })
    });
    group.bench_function("saving_one_level_1024_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, s) in states.iter().enumerate() {
                acc += model.saving_one_level_w(Level::new((i % 10) as u8), black_box(s));
            }
            black_box(acc)
        })
    });
    group.finish();

    c.bench_function("calibrate_power_table", |b| {
        b.iter(|| black_box(spec.calibrate()))
    });
}

criterion_group!(benches, bench_power_model);
criterion_main!(benches);
