//! Criterion bench: one full simulation tick of the paper-scale cluster,
//! managed and unmanaged. This is the end-to-end hot loop — 1 simulated
//! hour = 3600 of these.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_simkit::SimDuration;

fn warmed_sim(managed: bool) -> ClusterSim {
    let spec = ClusterSpec::tianhe_1a_variant();
    let sim = if managed {
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).expect("valid");
        ClusterSim::new(spec).with_manager(manager)
    } else {
        ClusterSim::new(spec)
    };
    let mut sim = sim;
    // Warm up: fill the cluster with running jobs.
    sim.run_for(SimDuration::from_mins(10));
    sim
}

fn bench_sim_step(c: &mut Criterion) {
    let mut unmanaged = warmed_sim(false);
    c.bench_function("sim_step_128_nodes_unmanaged", |b| {
        b.iter(|| {
            unmanaged.step();
            black_box(unmanaged.now())
        })
    });

    let mut managed = warmed_sim(true);
    c.bench_function("sim_step_128_nodes_managed_mpc", |b| {
        b.iter(|| {
            managed.step();
            black_box(managed.now())
        })
    });
}

criterion_group!(benches, bench_sim_step);
criterion_main!(benches);
