//! Criterion bench: central collector ingestion, one-by-one vs batched.
//!
//! Backs the Figure-5 discussion: per-cycle collection cost as the
//! monitored-node count grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppc_node::{Level, NodeId, OperatingState};
use ppc_simkit::SimTime;
use ppc_telemetry::{Collector, NodeSample};

fn samples(n: u32, at: u64) -> Vec<NodeSample> {
    (0..n)
        .map(|i| NodeSample {
            node: NodeId(i),
            at: SimTime::from_secs(at),
            state: OperatingState {
                cpu_util: 0.7,
                mem_used_bytes: 8 << 30,
                nic_bytes: 1_000_000,
            },
            level: Level::new(9),
            power_w: 250.0 + i as f64,
        })
        .collect()
}

fn bench_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_ingest");
    for n in [16u32, 128, 1_024] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            let mut collector = Collector::new();
            let mut at = 0;
            b.iter(|| {
                at += 1;
                for s in samples(n, at) {
                    collector.ingest(s);
                }
                black_box(collector.estimated_total_w())
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            let mut collector = Collector::new();
            let mut at = 0;
            b.iter(|| {
                at += 1;
                collector.ingest_batch(&samples(n, at));
                black_box(collector.estimated_total_w())
            })
        });
    }
    group.finish();

    c.bench_function("aggregate_power_22_nodes", |b| {
        let mut collector = Collector::new();
        for s in samples(128, 1) {
            collector.ingest(s);
        }
        let nodes: Vec<NodeId> = (0..22).map(NodeId).collect();
        b.iter(|| black_box(collector.aggregate_power(black_box(&nodes))))
    });
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
