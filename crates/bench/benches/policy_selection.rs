//! Criterion bench: target-set selection policies.
//!
//! Selection runs once per Yellow control cycle over every running job's
//! candidate nodes; Figure 5's management cost is dominated by this plus
//! collection. Benchmarked at the paper scale (128 nodes, ~17 jobs) and
//! at 8× scale to show the growth trend.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ppc_core::observe::{JobObservation, NodeObservation, SelectionContext};
use ppc_core::PolicyKind;
use ppc_node::{Level, NodeId};
use ppc_workload::JobId;

/// Builds a context with `jobs` jobs of `nodes_per_job` nodes each.
/// Leaks the job list: the context borrows, and a bench fixture lives for
/// the whole process anyway.
fn ctx(jobs: usize, nodes_per_job: usize) -> SelectionContext<'static> {
    let mut next_node = 0u32;
    let jobs: Vec<JobObservation> = (0..jobs)
        .map(|j| {
            let nodes = (0..nodes_per_job)
                .map(|k| {
                    let id = next_node;
                    next_node += 1;
                    NodeObservation {
                        node: NodeId(id),
                        level: Level::new((3 + (j + k) % 7) as u8),
                        power_w: 180.0 + ((j * 31 + k * 17) % 160) as f64,
                        saving_w: 8.0 + ((j + k) % 9) as f64,
                    }
                })
                .collect();
            JobObservation {
                id: JobId(j as u64),
                nodes,
                prev_power_w: (j % 3 != 0).then_some(1_500.0 + j as f64 * 10.0),
            }
        })
        .collect();
    SelectionContext {
        jobs: Vec::leak(jobs),
        power_w: 33_000.0,
        p_low_w: 31_000.0,
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    for (label, jobs, npj) in [("paper_scale", 17, 8), ("8x_scale", 136, 8)] {
        let context = ctx(jobs, npj);
        for kind in PolicyKind::ALL {
            let mut policy = kind.build();
            group.bench_with_input(
                BenchmarkId::new(kind.name(), label),
                &context,
                |b, context| b.iter(|| black_box(policy.select(black_box(context)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
