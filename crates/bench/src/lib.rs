//! # ppc-bench — figure regenerators and criterion benches
//!
//! One binary per table/figure of the paper's evaluation section (run with
//! `cargo run --release -p ppc-bench --bin <name>`):
//!
//! | binary                  | regenerates                                   |
//! |-------------------------|-----------------------------------------------|
//! | `fig4_overspend_demo`   | Fig. 4 — the ΔP×T metric on a synthetic trace |
//! | `fig5_scalability`      | Fig. 5 — manager CPU cost vs \|A_candidate\|  |
//! | `fig6_candidate_sweep`  | Fig. 6 — capping effect vs \|A_candidate\|    |
//! | `fig7_policy_comparison`| Fig. 7 — MPC vs HRI vs uncapped               |
//! | `headline_claims`       | §V.D in-text claims (2% loss, −10% P_max, …)  |
//! | `ext_policy_matrix`     | §VI future work: all seven policies           |
//! | `ablation_sweeps`       | T_g / margins / think-time / noise ablations  |
//!
//! Criterion benches live in `benches/` and measure the hot paths (power
//! model, policy selection, event queue, collector, whole sim step).

use ppc_cluster::experiment::{run_experiment, ExperimentConfig, ExperimentOutcome};
use ppc_core::PolicyKind;
use ppc_simkit::SimDuration;

/// Training length used by all figure regenerators. The paper trains for
/// 24 h of wall time; one simulated hour of our job mix already shows the
/// converged peak (hundreds of job events), so regenerators use this
/// compressed-but-shape-preserving default.
pub fn default_training() -> SimDuration {
    SimDuration::from_hours(1)
}

/// Measurement length used by all figure regenerators (paper: 12 h).
pub fn default_measurement() -> SimDuration {
    SimDuration::from_hours(6)
}

/// Builds the paper experiment config with the harness defaults.
pub fn paper_config(policy: Option<PolicyKind>, candidate_cap: Option<usize>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(policy);
    cfg.candidate_cap = candidate_cap;
    cfg.training = default_training();
    cfg.measurement = default_measurement();
    cfg
}

/// Runs one experiment, echoing progress to stderr.
pub fn run_labeled(cfg: &ExperimentConfig) -> ExperimentOutcome {
    let label = match (cfg.policy, cfg.candidate_cap) {
        (None, _) => "uncapped".to_string(),
        (Some(p), None) => p.to_string(),
        (Some(p), Some(c)) => format!("{p}/{c}"),
    };
    eprintln!("running {label} …");
    let t0 = std::time::Instant::now();
    let out = run_experiment(cfg);
    eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
    out
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_applies_overrides() {
        let cfg = paper_config(Some(PolicyKind::Hri), Some(48));
        assert_eq!(cfg.candidate_cap, Some(48));
        assert_eq!(cfg.training, default_training());
        assert_eq!(cfg.measurement, default_measurement());
    }

    #[test]
    fn formatter() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
