//! BENCH_ppc.json emitter — the repo's wall-clock regression record.
//!
//! Runs one fixed macro workload (the paper-scale 128-node cluster,
//! 1 simulated hour, MPC-managed) plus the hot-path micro measurements
//! that the criterion suite tracks, plus a node-count × pool-width
//! scaling sweep, and writes the results to `BENCH_ppc.json` in the
//! current directory:
//!
//! ```text
//! cargo run --release -p ppc-bench --bin bench_ppc
//! git diff BENCH_ppc.json   # compare against the committed baseline
//! ```
//!
//! Flags:
//!
//! * `--nodes 128,1024,10240` — node counts for the scaling sweep;
//! * `--workers 1,4,8` — explicit pool widths for the scaling sweep;
//! * `--smoke` — CI mode: skip the hour macro and the sweep, run the
//!   headline micros with fewer batches, print JSON to stdout and do
//!   **not** overwrite `BENCH_ppc.json` (the CI perf guard compares the
//!   stdout medians against the committed baseline).
//!
//! Micro numbers are medians over repeated sample batches (robust to the
//! occasional scheduler hiccup); the macro number is a single wall-clock
//! run, which is what an experiment sweep actually pays.

use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{HierarchicalManager, ManagerConfig, NodeSets, PolicyKind, PowerManager, Topology};
use ppc_node::{Level, NodeId, OperatingState};
use ppc_simkit::{SimDuration, SimTime, WorkerPool};
use ppc_telemetry::{Collector, NodeSample};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Hierarchical sweep shape: the paper-scale rack of 128 nodes, 16 racks
/// to a row — 1024 nodes = 8 racks, 102 400 nodes = 800 racks / 50 rows.
const HIER_NODES_PER_RACK: u32 = 128;
const HIER_RACKS_PER_ROW: u32 = 16;

/// Median of a sample set, in place.
fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median per-iteration microseconds over `batches` batches of `iters`
/// calls to `f`.
fn median_us(batches: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / iters as f64 * 1e6);
    }
    median(&mut samples)
}

fn sim(managed: bool) -> ClusterSim {
    let spec = ClusterSpec::tianhe_1a_variant();
    if managed {
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).expect("valid config");
        ClusterSim::new(spec).with_manager(manager)
    } else {
        ClusterSim::new(spec)
    }
}

/// A saturated cluster at `nodes` nodes: zero think time and a queue
/// depth that scales with the fleet, so the sweep measures busy ticks,
/// not an idle calendar.
fn scaling_sim(nodes: u32, managed: bool, pool: &Arc<WorkerPool>) -> ClusterSim {
    let mut spec = ClusterSpec::tianhe_1a_variant();
    spec.node_count = nodes;
    spec.think_time_mean = SimDuration::ZERO;
    spec.queue_depth = (nodes / 64).max(1) as usize;
    let sim = if managed {
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).expect("valid config");
        ClusterSim::new(spec).with_manager(manager)
    } else {
        ClusterSim::new(spec)
    };
    sim.with_worker_pool(Arc::clone(pool))
}

/// A saturated cluster under the *hierarchical* control plane at the
/// sweep shape above.
fn hier_scaling_sim(nodes: u32, pool: &Arc<WorkerPool>) -> ClusterSim {
    let mut spec = ClusterSpec::tianhe_1a_variant();
    spec.node_count = nodes;
    spec.think_time_mean = SimDuration::ZERO;
    spec.queue_depth = (nodes / 64).max(1) as usize;
    let topology =
        Topology::new(nodes, HIER_NODES_PER_RACK, HIER_RACKS_PER_ROW).expect("valid topology");
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let hier = HierarchicalManager::new(config, topology, &BTreeSet::new(), spec.node_weights_w())
        .expect("valid hierarchy");
    ClusterSim::new(spec)
        .with_hierarchy(hier)
        .with_worker_pool(Arc::clone(pool))
}

fn samples(n: u32, at: u64) -> Vec<NodeSample> {
    (0..n)
        .map(|i| NodeSample {
            node: NodeId(i),
            at: SimTime::from_secs(at),
            state: OperatingState {
                cpu_util: 0.7,
                mem_used_bytes: 8 << 30,
                nic_bytes: 1_000_000,
            },
            level: Level::new(9),
            power_w: 250.0 + i as f64,
        })
        .collect()
}

fn parse_list(s: &str) -> Vec<u32> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().expect("numeric list entry"))
        .collect()
}

fn main() {
    let mut smoke = false;
    let mut guard: Option<String> = None;
    let mut sweep_nodes: Vec<u32> = vec![128, 1024, 10_240];
    let mut sweep_workers: Vec<u32> = vec![1, 4, 8];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--guard" => guard = Some(args.next().expect("--guard <baseline.json>")),
            "--nodes" => sweep_nodes = parse_list(&args.next().expect("--nodes <csv>")),
            "--workers" => sweep_workers = parse_list(&args.next().expect("--workers <csv>")),
            other => {
                panic!("unknown flag {other} (expected --smoke | --guard | --nodes | --workers)")
            }
        }
    }
    let (batches, iters) = if smoke { (7, 10) } else { (25, 40) };

    // Macro: the paper's unit of work — one simulated hour, managed.
    // Skipped in smoke mode (CI measures only the guarded micros).
    let (managed_hour_secs, finished_jobs) = if smoke {
        (0.0, 0)
    } else {
        let mut hour = sim(true);
        let t = Instant::now();
        hour.run_for(SimDuration::from_mins(60));
        (t.elapsed().as_secs_f64(), hour.finished().len())
    };

    // Micro: per-tick cost on warmed (job-saturated) clusters.
    let mut managed = sim(true);
    managed.run_for(SimDuration::from_mins(10));
    let sim_step_managed_us = median_us(batches, iters, || managed.step());

    let mut unmanaged = sim(false);
    unmanaged.run_for(SimDuration::from_mins(10));
    let sim_step_unmanaged_us = median_us(batches, iters, || unmanaged.step());

    // Micro: collector hot paths at the 1024-node scale the roadmap targets.
    let mut collector = Collector::new();
    let mut at = 0u64;
    let collector_ingest_batch_1024_us = median_us(batches, iters, || {
        at += 1;
        collector.ingest_batch(&samples(1024, at));
    });
    let nodes: Vec<NodeId> = (0..1024).map(NodeId).collect();
    let mut total = 0.0;
    let aggregate_power_1024_us = median_us(batches, 10 * iters, || {
        total += collector.aggregate_power(&nodes);
    });

    // Micro: per-tick cost of the hierarchical control plane at the
    // 1024-node scale (8 racks of 128) — the smallest rung of the Figure 5
    // extension, cheap enough to measure (and guard) even in smoke mode.
    let pool0 = Arc::new(WorkerPool::new(8));
    let mut hier = hier_scaling_sim(1024, &pool0);
    hier.run_for(SimDuration::from_secs(30));
    let sim_step_1024_hier_us = median_us(batches, iters, || hier.step());
    drop(hier);

    // Micro: one pool dispatch over a 4096-element slice (above the inline
    // threshold, so this exercises the persistent workers when the machine
    // has more than one core; on a 1-core machine it measures the inline
    // path, which is the pool's sequential fallback).
    let pool = WorkerPool::global();
    let mut cells = vec![0.0f64; 4096];
    let pool_dispatch_4096_us = median_us(batches, iters, || {
        pool.for_each_mut(&mut cells, |i, c| *c += i as f64);
    });
    assert!(total != 0.0 && cells[1] != 0.0, "work must not be elided");

    // Hierarchical scaling sweep — the Figure 5 extension: per-tick cost
    // at 1k/10k/100k nodes under the sharded control plane, at pool
    // widths 1 and 8. Sample counts shrink with scale; a 100k-node tick
    // is milliseconds, so even a handful of batches is minutes-stable.
    let mut scaling_hier = Vec::new();
    if !smoke {
        let mut per_width_us: Vec<(u32, Vec<(u32, f64)>)> = Vec::new();
        for &w in &[1u32, 8] {
            let mut col = Vec::new();
            for &n in &[1024u32, 10_240, 102_400] {
                let pool = Arc::new(WorkerPool::new(w as usize));
                let (warm_secs, sb, si) = if n >= 100_000 {
                    (20, 3, 3)
                } else if n > 4096 {
                    (40, 5, 10)
                } else {
                    (120, 9, 20)
                };
                let mut h = hier_scaling_sim(n, &pool);
                h.run_for(SimDuration::from_secs(warm_secs));
                let hier_us = median_us(sb, si, || h.step());
                let racks = h.hierarchy().expect("hierarchical sim").topology().racks();
                eprintln!("scaling-hier: nodes={n} workers={w} racks={racks} step={hier_us:.2}us");
                scaling_hier.push(serde_json::json!({
                    "nodes": n,
                    "workers": w,
                    "racks": racks,
                    "sim_step_hier_us": hier_us,
                }));
                col.push((n, hier_us));
            }
            per_width_us.push((w, col));
        }
        // The acceptance shape: each 10× node-count rung should cost well
        // under 10× per tick (the issue's bar is ≤ ~3×).
        for (w, col) in &per_width_us {
            for pair in col.windows(2) {
                let (n0, us0) = pair[0];
                let (n1, us1) = pair[1];
                eprintln!(
                    "scaling-hier: width {w}: {n0}->{n1} nodes cost x{:.2} per tick",
                    us1 / us0
                );
            }
        }
    }

    // Scaling sweep: managed and unmanaged per-tick cost across node
    // counts and explicit pool widths. Warmup is shorter at the largest
    // scales; the incremental evaluator's cost tracks the dirty set, not
    // the fleet, so busy steady-state ticks are what matter.
    let mut scaling = Vec::new();
    if !smoke {
        for &n in &sweep_nodes {
            for &w in &sweep_workers {
                let pool = Arc::new(WorkerPool::new(w as usize));
                let (warm_secs, sb, si) = if n > 4096 { (60, 5, 10) } else { (120, 9, 20) };
                let mut m = scaling_sim(n, true, &pool);
                m.run_for(SimDuration::from_secs(warm_secs));
                let managed_us = median_us(sb, si, || m.step());
                let mut u = scaling_sim(n, false, &pool);
                u.run_for(SimDuration::from_secs(warm_secs));
                let unmanaged_us = median_us(sb, si, || u.step());
                eprintln!(
                    "scaling: nodes={n} workers={w} managed={managed_us:.2}us unmanaged={unmanaged_us:.2}us"
                );
                scaling.push(serde_json::json!({
                    "nodes": n,
                    "workers": w,
                    "sim_step_managed_us": managed_us,
                    "sim_step_unmanaged_us": unmanaged_us,
                    "managed_over_unmanaged": managed_us / unmanaged_us,
                }));
            }
        }
    }

    // Health-plane overhead on the managed hierarchical 10240-node tick.
    // The rollup is O(racks) per cycle and the fleet node-power sketch
    // samples every NODE_SKETCH_PERIOD ticks, so the honest figure is a
    // *mean* over a tick count spanning whole sampling periods — a
    // median would hide the amortized sample-tick cost entirely.
    // Overhead is a difference of two means, so noise hits it twice;
    // alternate on/off passes (so background phases touch both sims)
    // and keep the best (minimum) mean per config — interference
    // inflates a mean, it never deflates one.
    let health_ticks = 2 * ppc_obs::NODE_SKETCH_PERIOD;
    let mean_step_us = |sim: &mut ClusterSim, ticks: u64| {
        let t = Instant::now();
        for _ in 0..ticks {
            sim.step();
        }
        t.elapsed().as_secs_f64() * 1e6 / ticks as f64
    };
    let mut health_on = hier_scaling_sim(10_240, &pool0);
    health_on.run_for(SimDuration::from_secs(20));
    let mut health_off = hier_scaling_sim(10_240, &pool0);
    health_off.set_health_enabled(false);
    health_off.run_for(SimDuration::from_secs(20));
    let mut health_on_us = f64::INFINITY;
    let mut health_off_us = f64::INFINITY;
    for _ in 0..4 {
        health_on_us = health_on_us.min(mean_step_us(&mut health_on, health_ticks));
        health_off_us = health_off_us.min(mean_step_us(&mut health_off, health_ticks));
    }
    drop(health_on);
    drop(health_off);
    let health_overhead_frac = (health_on_us - health_off_us) / health_off_us;
    eprintln!(
        "health-overhead: nodes=10240 on={health_on_us:.2}us off={health_off_us:.2}us \
         overhead={:.2}%",
        health_overhead_frac * 100.0
    );

    let mut report = serde_json::json!({
        "workload": {
            "cluster": "tianhe_1a_variant",
            "nodes": 128,
            "simulated_secs": 3600,
            "policy": "mpc",
        },
        "pool_workers": pool.workers(),
        "managed_hour_wall_secs": managed_hour_secs,
        "managed_hour_finished_jobs": finished_jobs,
        "median_us": {
            "sim_step_128_managed": sim_step_managed_us,
            "sim_step_128_unmanaged": sim_step_unmanaged_us,
            "collector_ingest_batch_1024": collector_ingest_batch_1024_us,
            "aggregate_power_1024": aggregate_power_1024_us,
            "pool_dispatch_4096": pool_dispatch_4096_us,
            "sim_step_1024_hier": sim_step_1024_hier_us,
        },
        "scaling": scaling,
        "scaling_hier": scaling_hier,
        "health_overhead": {
            "nodes": 10_240,
            "ticks": health_ticks,
            "mean_on_us": health_on_us,
            "mean_off_us": health_off_us,
            "overhead_frac": health_overhead_frac,
        },
    });
    // Carry the what-if service section (owned by `whatif_serve`) across
    // rewrites so the two emitters can share the one baseline file.
    if let Some(whatif) = std::fs::read_to_string("BENCH_ppc.json")
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|doc| doc.get("whatif").cloned())
    {
        if let serde_json::Value::Object(entries) = &mut report {
            entries.push(("whatif".to_string(), whatif));
        }
    }
    let rendered = serde_json::to_string_pretty(&report).expect("serializable");
    println!("{rendered}");
    if !smoke {
        std::fs::write("BENCH_ppc.json", format!("{rendered}\n")).expect("write BENCH_ppc.json");
        eprintln!("wrote BENCH_ppc.json");
    }

    // Perf-regression guard (CI): the managed 128-node step must stay
    // within 25% of the committed baseline. Guards on the best of three
    // medians — a shared CI box is noisy, and the *minimum* median is the
    // least-interference estimate of the code's actual cost; a real
    // regression moves the floor, background load does not.
    if let Some(path) = guard {
        let committed: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
        )
        .expect("parse guard baseline");
        let baseline = committed["median_us"]["sim_step_128_managed"]
            .as_f64()
            .expect("baseline median_us.sim_step_128_managed");
        let best = sim_step_managed_us
            .min(median_us(batches, iters, || managed.step()))
            .min(median_us(batches, iters, || managed.step()));
        let limit = baseline * 1.25;
        eprintln!(
            "perf guard: sim_step_128_managed best-median {best:.2}us vs committed {baseline:.2}us \
             (limit {limit:.2}us)"
        );
        let mut guard_failed = best > limit;
        // Guard the hierarchical step the same way once the committed
        // baseline records it.
        if let Some(hier_baseline) = committed["median_us"]["sim_step_1024_hier"].as_f64() {
            let mut hier = hier_scaling_sim(1024, &pool0);
            hier.run_for(SimDuration::from_secs(30));
            let hier_best = sim_step_1024_hier_us
                .min(median_us(batches, iters, || hier.step()))
                .min(median_us(batches, iters, || hier.step()));
            let hier_limit = hier_baseline * 1.25;
            eprintln!(
                "perf guard: sim_step_1024_hier best-median {hier_best:.2}us vs committed \
                 {hier_baseline:.2}us (limit {hier_limit:.2}us)"
            );
            if hier_best > hier_limit {
                guard_failed = true;
            }
        }
        // The health plane must stay within its ≤10% overhead budget on
        // the managed 10240-node hierarchical tick (absolute bound, not
        // baseline-relative: the budget is a design acceptance figure).
        eprintln!(
            "perf guard: health overhead {:.2}% on the 10240-node hier tick (limit 10%)",
            health_overhead_frac * 100.0
        );
        if health_overhead_frac > 0.10 {
            eprintln!("perf guard: health plane exceeded its 10% overhead budget");
            guard_failed = true;
        }
        if guard_failed {
            eprintln!("perf guard: FAILED — per-tick step regressed >25% vs {path}");
            std::process::exit(1);
        }
        eprintln!("perf guard: ok");
    }
}
