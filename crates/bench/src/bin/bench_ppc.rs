//! BENCH_ppc.json emitter — the repo's wall-clock regression record.
//!
//! Runs one fixed macro workload (the paper-scale 128-node cluster,
//! 1 simulated hour, MPC-managed) plus the hot-path micro measurements
//! that the criterion suite tracks, and writes the results to
//! `BENCH_ppc.json` in the current directory:
//!
//! ```text
//! cargo run --release -p ppc-bench --bin bench_ppc
//! git diff BENCH_ppc.json   # compare against the committed baseline
//! ```
//!
//! Micro numbers are medians over repeated sample batches (robust to the
//! occasional scheduler hiccup); the macro number is a single wall-clock
//! run, which is what an experiment sweep actually pays.

use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_node::{Level, NodeId, OperatingState};
use ppc_simkit::{SimDuration, SimTime, WorkerPool};
use ppc_telemetry::{Collector, NodeSample};
use std::time::Instant;

/// Median of a sample set, in place.
fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median per-iteration microseconds over `batches` batches of `iters`
/// calls to `f`.
fn median_us(batches: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / iters as f64 * 1e6);
    }
    median(&mut samples)
}

fn sim(managed: bool) -> ClusterSim {
    let spec = ClusterSpec::tianhe_1a_variant();
    if managed {
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).expect("valid config");
        ClusterSim::new(spec).with_manager(manager)
    } else {
        ClusterSim::new(spec)
    }
}

fn samples(n: u32, at: u64) -> Vec<NodeSample> {
    (0..n)
        .map(|i| NodeSample {
            node: NodeId(i),
            at: SimTime::from_secs(at),
            state: OperatingState {
                cpu_util: 0.7,
                mem_used_bytes: 8 << 30,
                nic_bytes: 1_000_000,
            },
            level: Level::new(9),
            power_w: 250.0 + i as f64,
        })
        .collect()
}

fn main() {
    // Macro: the paper's unit of work — one simulated hour, managed.
    let mut hour = sim(true);
    let t = Instant::now();
    hour.run_for(SimDuration::from_mins(60));
    let managed_hour_secs = t.elapsed().as_secs_f64();
    let finished_jobs = hour.finished().len();

    // Micro: per-tick cost on warmed (job-saturated) clusters.
    let mut managed = sim(true);
    managed.run_for(SimDuration::from_mins(10));
    let sim_step_managed_us = median_us(25, 40, || managed.step());

    let mut unmanaged = sim(false);
    unmanaged.run_for(SimDuration::from_mins(10));
    let sim_step_unmanaged_us = median_us(25, 40, || unmanaged.step());

    // Micro: collector hot paths at the 1024-node scale the roadmap targets.
    let mut collector = Collector::new();
    let mut at = 0u64;
    let collector_ingest_batch_1024_us = median_us(25, 40, || {
        at += 1;
        collector.ingest_batch(&samples(1024, at));
    });
    let nodes: Vec<NodeId> = (0..1024).map(NodeId).collect();
    let mut total = 0.0;
    let aggregate_power_1024_us = median_us(25, 400, || {
        total += collector.aggregate_power(&nodes);
    });

    // Micro: one pool dispatch over a 4096-element slice (above the inline
    // threshold, so this exercises the persistent workers when the machine
    // has more than one core; on a 1-core machine it measures the inline
    // path, which is the pool's sequential fallback).
    let pool = WorkerPool::global();
    let mut cells = vec![0.0f64; 4096];
    let pool_dispatch_4096_us = median_us(25, 40, || {
        pool.for_each_mut(&mut cells, |i, c| *c += i as f64);
    });
    assert!(total != 0.0 && cells[1] != 0.0, "work must not be elided");

    let report = serde_json::json!({
        "workload": {
            "cluster": "tianhe_1a_variant",
            "nodes": 128,
            "simulated_secs": 3600,
            "policy": "mpc",
        },
        "pool_workers": pool.workers(),
        "managed_hour_wall_secs": managed_hour_secs,
        "managed_hour_finished_jobs": finished_jobs,
        "median_us": {
            "sim_step_128_managed": sim_step_managed_us,
            "sim_step_128_unmanaged": sim_step_unmanaged_us,
            "collector_ingest_batch_1024": collector_ingest_batch_1024_us,
            "aggregate_power_1024": aggregate_power_1024_us,
            "pool_dispatch_4096": pool_dispatch_4096_us,
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_ppc.json", format!("{rendered}\n")).expect("write BENCH_ppc.json");
    println!("{rendered}");
    println!("\nwrote BENCH_ppc.json");
}
